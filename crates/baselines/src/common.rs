//! Shared interfaces for the baseline mechanisms.

use identxx_netsim::workload::Flow;
use identxx_proto::FiveTuple;

/// The minimal decision interface every mechanism under comparison offers:
/// given what the mechanism can *see* about a flow, would it let it through?
///
/// The baselines see only network-level information (the 5-tuple, plus — for
/// Ethane — the host/user binding of the source address). The ident++
/// controller additionally sees what the end-hosts report. The expressiveness
/// experiment feeds all of them flows with known ground truth and scores the
/// decisions against the administrator's intent.
pub trait FlowClassifier {
    /// Whether the mechanism admits the flow.
    fn allow(&mut self, flow: &FiveTuple) -> bool;

    /// Mechanism name for reporting.
    fn name(&self) -> &str;
}

/// A workload flow together with the administrator's intent, as the
/// expressiveness experiment consumes it.
#[derive(Debug, Clone)]
pub struct GroundTruthFlow {
    /// The flow.
    pub flow: FiveTuple,
    /// The application that really generated it.
    pub app: String,
    /// The user that really initiated it.
    pub user: String,
    /// Whether the administrator intends this flow to be allowed.
    pub intended_allowed: bool,
}

impl From<&Flow> for GroundTruthFlow {
    fn from(f: &Flow) -> Self {
        GroundTruthFlow {
            flow: f.five_tuple,
            app: f.app.name.clone(),
            user: f.user.clone(),
            intended_allowed: f.app.intended_allowed,
        }
    }
}

/// Confusion-matrix style score of a mechanism against intent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntentScore {
    /// Flows correctly allowed.
    pub true_allow: u64,
    /// Flows correctly blocked.
    pub true_block: u64,
    /// Flows allowed that should have been blocked (security failures).
    pub false_allow: u64,
    /// Flows blocked that should have been allowed (collateral damage).
    pub false_block: u64,
}

impl IntentScore {
    /// Records one decision.
    pub fn record(&mut self, intended_allowed: bool, decided_allow: bool) {
        match (intended_allowed, decided_allow) {
            (true, true) => self.true_allow += 1,
            (false, false) => self.true_block += 1,
            (false, true) => self.false_allow += 1,
            (true, false) => self.false_block += 1,
        }
    }

    /// Total flows scored.
    pub fn total(&self) -> u64 {
        self.true_allow + self.true_block + self.false_allow + self.false_block
    }

    /// Fraction of decisions that matched intent.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_allow + self.true_block) as f64 / self.total() as f64
    }

    /// Fraction of should-block flows that leaked through.
    pub fn false_allow_rate(&self) -> f64 {
        let should_block = self.true_block + self.false_allow;
        if should_block == 0 {
            0.0
        } else {
            self.false_allow as f64 / should_block as f64
        }
    }

    /// Fraction of should-allow flows that were wrongly blocked.
    pub fn false_block_rate(&self) -> f64 {
        let should_allow = self.true_allow + self.false_block;
        if should_allow == 0 {
            0.0
        } else {
            self.false_block as f64 / should_allow as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_bookkeeping() {
        let mut s = IntentScore::default();
        s.record(true, true);
        s.record(true, false);
        s.record(false, false);
        s.record(false, true);
        assert_eq!(s.total(), 4);
        assert!((s.accuracy() - 0.5).abs() < 1e-9);
        assert!((s.false_allow_rate() - 0.5).abs() < 1e-9);
        assert!((s.false_block_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_score_is_safe() {
        let s = IntentScore::default();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.false_allow_rate(), 0.0);
        assert_eq!(s.false_block_rate(), 0.0);
    }

    #[test]
    fn ground_truth_from_workload_flow() {
        use identxx_netsim::workload::{WorkloadConfig, WorkloadGenerator};
        let hosts = vec![
            identxx_proto::Ipv4Addr::new(10, 0, 0, 1),
            identxx_proto::Ipv4Addr::new(10, 0, 0, 2),
        ];
        let flows = WorkloadGenerator::new(WorkloadConfig::enterprise(hosts, 10, 1)).generate();
        let gt: Vec<GroundTruthFlow> = flows.iter().map(GroundTruthFlow::from).collect();
        assert_eq!(gt.len(), 10);
        assert_eq!(gt[0].flow, flows[0].five_tuple);
        assert_eq!(gt[0].app, flows[0].app.name);
    }
}
