//! A distributed firewall (Ioannidis et al., CCS 2000).
//!
//! "Distributed firewalls centralize the policy, and distribute enforcement to
//! firewalls implemented on the end-host. … Unfortunately … if enforcement is
//! done only at the receiving end-host in this way, the end-host can become
//! vulnerable to denial of service attacks. Second, a compromised end-host
//! effectively has no protection. The central administrator's policies are
//! completely bypassed" (§6).
//!
//! The model enforces, at the *receiving* host, an application-aware policy
//! (the receiving host does know which local application would accept the
//! flow) — but a compromised receiver simply stops enforcing, which is exactly
//! the property the blast-radius experiment measures.

use std::collections::{BTreeMap, BTreeSet};

use identxx_proto::{FiveTuple, Ipv4Addr};

use crate::common::FlowClassifier;

/// Per-host policy: which destination ports the host accepts, and whether the
/// host's enforcement is still intact.
#[derive(Debug, Clone, Default)]
struct HostPolicy {
    /// Ports this host is willing to accept connections on.
    accepted_ports: BTreeSet<u16>,
    /// Whether the host has been compromised (enforcement disabled).
    compromised: bool,
}

/// The distributed firewall: the central policy is "host H accepts ports P",
/// pushed to each host, enforced at each host.
#[derive(Debug, Clone, Default)]
pub struct DistributedFirewall {
    hosts: BTreeMap<Ipv4Addr, HostPolicy>,
    /// What an unknown (unmanaged) host does with inbound flows.
    unmanaged_allow: bool,
}

impl DistributedFirewall {
    /// Creates a distributed firewall with no managed hosts.
    pub fn new() -> Self {
        DistributedFirewall::default()
    }

    /// Declares a managed host and the ports it accepts (the centrally
    /// administered policy pushed to that host).
    pub fn manage_host(&mut self, addr: Ipv4Addr, accepted_ports: &[u16]) {
        let policy = self.hosts.entry(addr).or_default();
        policy.accepted_ports = accepted_ports.iter().copied().collect();
    }

    /// Compromises (or restores) a host. A compromised host stops enforcing
    /// its policy entirely.
    pub fn set_compromised(&mut self, addr: Ipv4Addr, compromised: bool) {
        self.hosts.entry(addr).or_default().compromised = compromised;
    }

    /// Whether a host is managed.
    pub fn is_managed(&self, addr: Ipv4Addr) -> bool {
        self.hosts.contains_key(&addr)
    }

    /// Sets what happens to flows destined to unmanaged hosts.
    pub fn set_unmanaged_allow(&mut self, allow: bool) {
        self.unmanaged_allow = allow;
    }

    /// Number of managed hosts.
    pub fn managed_count(&self) -> usize {
        self.hosts.len()
    }
}

impl FlowClassifier for DistributedFirewall {
    fn allow(&mut self, flow: &FiveTuple) -> bool {
        match self.hosts.get(&flow.dst_ip) {
            Some(policy) => {
                if policy.compromised {
                    // No protection at all once the enforcing host falls.
                    true
                } else {
                    policy.accepted_ports.contains(&flow.dst_port)
                }
            }
            None => self.unmanaged_allow,
        }
    }

    fn name(&self) -> &str {
        "distributed-firewall"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fw() -> DistributedFirewall {
        let mut fw = DistributedFirewall::new();
        fw.manage_host(Ipv4Addr::new(10, 0, 0, 1), &[80, 443]);
        fw.manage_host(Ipv4Addr::new(10, 0, 0, 2), &[22]);
        fw
    }

    #[test]
    fn enforcement_happens_at_the_receiver() {
        let mut fw = fw();
        let web = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 1], 80);
        let smb = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 1], 445);
        let ssh_to_2 = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 2], 22);
        assert!(fw.allow(&web));
        assert!(!fw.allow(&smb));
        assert!(fw.allow(&ssh_to_2));
        assert_eq!(fw.name(), "distributed-firewall");
        assert_eq!(fw.managed_count(), 2);
        assert!(fw.is_managed(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn compromised_receiver_loses_all_protection() {
        let mut fw = fw();
        let smb = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 1], 445);
        assert!(!fw.allow(&smb));
        fw.set_compromised(Ipv4Addr::new(10, 0, 0, 1), true);
        assert!(fw.allow(&smb));
        // Other hosts keep enforcing.
        let smb_to_2 = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 2], 445);
        assert!(!fw.allow(&smb_to_2));
        // Restoration re-enables enforcement.
        fw.set_compromised(Ipv4Addr::new(10, 0, 0, 1), false);
        assert!(!fw.allow(&smb));
    }

    #[test]
    fn unmanaged_hosts_follow_configured_default() {
        let mut fw = fw();
        let to_unmanaged = FiveTuple::tcp([10, 0, 0, 9], 1, [192, 168, 7, 7], 9999);
        assert!(!fw.allow(&to_unmanaged));
        fw.set_unmanaged_allow(true);
        assert!(fw.allow(&to_unmanaged));
        assert!(!fw.is_managed(Ipv4Addr::new(192, 168, 7, 7)));
    }
}
