//! An Ethane-style controller.
//!
//! Ethane (Casado et al., SIGCOMM 2007) centralizes policy and binds hosts and
//! users to switch ports at join time, so policies can be written over named
//! hosts, users and groups — but "it forces the administrator to make security
//! decisions based on the source and destination's physical switch ports and
//! network primitives, and not on any application-level information" (§6).
//!
//! The model here keeps that essential property: the controller knows, per
//! address, which *host* and *user group* is bound there (registration), and
//! its policy rules range over those bindings and destination ports — but it
//! has no idea which application generated a flow.

use std::collections::BTreeMap;

use identxx_proto::{FiveTuple, Ipv4Addr};

use crate::common::FlowClassifier;

/// A host/user binding registered with the Ethane controller when the host
/// joins the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The host name.
    pub host: String,
    /// The group the bound user belongs to (Ethane policies are typically
    /// written over groups).
    pub group: String,
}

/// One Ethane policy rule: `(src group, dst group, dst port) -> allow/deny`.
/// `None` components are wildcards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthanePolicy {
    /// Source group constraint.
    pub src_group: Option<String>,
    /// Destination group constraint.
    pub dst_group: Option<String>,
    /// Destination port constraint.
    pub dst_port: Option<u16>,
    /// Allow or deny.
    pub allow: bool,
}

/// The Ethane-style controller.
#[derive(Debug, Clone, Default)]
pub struct EthaneController {
    bindings: BTreeMap<Ipv4Addr, Binding>,
    rules: Vec<EthanePolicy>,
    default_allow: bool,
}

impl EthaneController {
    /// Creates a default-deny controller with no bindings.
    pub fn new() -> Self {
        EthaneController::default()
    }

    /// Registers a host binding (host join).
    pub fn bind(&mut self, addr: Ipv4Addr, host: impl Into<String>, group: impl Into<String>) {
        self.bindings.insert(
            addr,
            Binding {
                host: host.into(),
                group: group.into(),
            },
        );
    }

    /// Removes a binding (host leave).
    pub fn unbind(&mut self, addr: Ipv4Addr) -> Option<Binding> {
        self.bindings.remove(&addr)
    }

    /// The binding for an address.
    pub fn binding(&self, addr: Ipv4Addr) -> Option<&Binding> {
        self.bindings.get(&addr)
    }

    /// Appends a policy rule (first match wins).
    pub fn add_rule(&mut self, rule: EthanePolicy) {
        self.rules.push(rule);
    }

    /// Sets the default decision.
    pub fn set_default_allow(&mut self, allow: bool) {
        self.default_allow = allow;
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    fn group_of(&self, addr: Ipv4Addr) -> Option<&str> {
        self.bindings.get(&addr).map(|b| b.group.as_str())
    }

    fn decide(&self, flow: &FiveTuple) -> bool {
        let src_group = self.group_of(flow.src_ip);
        let dst_group = self.group_of(flow.dst_ip);
        // Unregistered hosts are outside Ethane's control: default-deny
        // networks reject their flows outright.
        if src_group.is_none() || dst_group.is_none() {
            return self.default_allow;
        }
        for rule in &self.rules {
            let src_ok = rule
                .src_group
                .as_deref()
                .map(|g| Some(g) == src_group)
                .unwrap_or(true);
            let dst_ok = rule
                .dst_group
                .as_deref()
                .map(|g| Some(g) == dst_group)
                .unwrap_or(true);
            let port_ok = rule.dst_port.map(|p| p == flow.dst_port).unwrap_or(true);
            if src_ok && dst_ok && port_ok {
                return rule.allow;
            }
        }
        self.default_allow
    }
}

impl FlowClassifier for EthaneController {
    fn allow(&mut self, flow: &FiveTuple) -> bool {
        self.decide(flow)
    }

    fn name(&self) -> &str {
        "ethane"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> EthaneController {
        let mut c = EthaneController::new();
        c.bind(Ipv4Addr::new(10, 0, 0, 1), "server-1", "servers");
        c.bind(Ipv4Addr::new(10, 0, 0, 9), "laptop-9", "employees");
        c.bind(Ipv4Addr::new(10, 0, 0, 10), "laptop-10", "guests");
        // Employees may reach servers on 80 and 445; guests only on 80.
        c.add_rule(EthanePolicy {
            src_group: Some("employees".into()),
            dst_group: Some("servers".into()),
            dst_port: None,
            allow: true,
        });
        c.add_rule(EthanePolicy {
            src_group: Some("guests".into()),
            dst_group: Some("servers".into()),
            dst_port: Some(80),
            allow: true,
        });
        c
    }

    #[test]
    fn group_based_rules_apply() {
        let mut c = controller();
        let employee_smb = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 1], 445);
        let guest_web = FiveTuple::tcp([10, 0, 0, 10], 1, [10, 0, 0, 1], 80);
        let guest_smb = FiveTuple::tcp([10, 0, 0, 10], 1, [10, 0, 0, 1], 445);
        assert!(c.allow(&employee_smb));
        assert!(c.allow(&guest_web));
        assert!(!c.allow(&guest_smb));
        assert_eq!(c.name(), "ethane");
        assert_eq!(c.rule_count(), 2);
    }

    #[test]
    fn unregistered_hosts_are_denied_by_default() {
        let mut c = controller();
        let stranger = FiveTuple::tcp([192, 168, 5, 5], 1, [10, 0, 0, 1], 80);
        assert!(!c.allow(&stranger));
        c.set_default_allow(true);
        assert!(c.allow(&stranger));
    }

    #[test]
    fn cannot_distinguish_applications() {
        // An employee running malware toward the server on port 80 is
        // indistinguishable from their browser: Ethane sees only the binding
        // and the port.
        let mut c = controller();
        let browser = FiveTuple::tcp([10, 0, 0, 9], 40000, [10, 0, 0, 1], 80);
        let malware = FiveTuple::tcp([10, 0, 0, 9], 40001, [10, 0, 0, 1], 80);
        assert_eq!(c.allow(&browser), c.allow(&malware));
    }

    #[test]
    fn bindings_can_be_updated() {
        let mut c = controller();
        assert_eq!(
            c.binding(Ipv4Addr::new(10, 0, 0, 9)).unwrap().group,
            "employees"
        );
        assert!(c.unbind(Ipv4Addr::new(10, 0, 0, 9)).is_some());
        assert!(c.binding(Ipv4Addr::new(10, 0, 0, 9)).is_none());
        // After unbinding, the host is unregistered and denied.
        let flow = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 1], 80);
        assert!(!c.allow(&flow));
    }
}
