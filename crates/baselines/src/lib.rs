//! # identxx-baselines — the comparison points
//!
//! The paper positions ident++ against three families of existing mechanisms
//! (§5, §6):
//!
//! * **Vanilla firewalls** — stateful filters over network primitives
//!   (addresses, ports). They cannot tell Skype from a browser when both use
//!   destination port 80 (§1), which is the collateral-damage problem the
//!   expressiveness experiment quantifies.
//! * **Ethane** — centralized control with policies over *hosts and users*
//!   bound at switch ports, "but forces the administrator to make security
//!   decisions based on the source and destination's physical switch ports and
//!   network primitives, and not on any application-level information" (§6).
//! * **Distributed firewalls** — policy centralized but enforcement pushed to
//!   the receiving end-host, which does have application information but
//!   loses all protection when that host is compromised (§6).
//!
//! Each baseline implements [`FlowClassifier`], the minimal "would this flow
//! be allowed?" interface the experiments exercise, and exposes the knobs the
//! security-analysis experiment needs (host compromise for the distributed
//! firewall, etc.).

pub mod common;
pub mod distributed;
pub mod ethane;
pub mod vanilla;

pub use common::{FlowClassifier, GroundTruthFlow};
pub use distributed::DistributedFirewall;
pub use ethane::{EthaneController, EthanePolicy};
pub use vanilla::{PortRule, VanillaFirewall};
