//! A vanilla stateful firewall: ordered rules over network primitives only.
//!
//! This is the mechanism the paper's introduction criticises: "the
//! administrator may wish to deny Skype access to an important webserver but
//! is unable to because Skype and Web traffic both use destination port 80.
//! This information is usually only available at the end-hosts" (§1). The
//! firewall here is deliberately competent — ordered rules, prefixes, port
//! ranges, stateful return traffic — but it can only see the 5-tuple.

use identxx_proto::{FiveTuple, Ipv4Addr};

use crate::common::FlowClassifier;

/// One firewall rule over network primitives.
#[derive(Debug, Clone, PartialEq)]
pub struct PortRule {
    /// Allow (true) or deny (false).
    pub allow: bool,
    /// Source prefix (`None` = any).
    pub src: Option<(Ipv4Addr, u8)>,
    /// Destination prefix (`None` = any).
    pub dst: Option<(Ipv4Addr, u8)>,
    /// Destination port range (`None` = any).
    pub dst_ports: Option<(u16, u16)>,
}

impl PortRule {
    /// An allow rule for a destination port.
    pub fn allow_port(port: u16) -> PortRule {
        PortRule {
            allow: true,
            src: None,
            dst: None,
            dst_ports: Some((port, port)),
        }
    }

    /// A deny rule for a destination prefix and port.
    pub fn deny_to(dst: Ipv4Addr, prefix_len: u8, port: Option<u16>) -> PortRule {
        PortRule {
            allow: false,
            src: None,
            dst: Some((dst, prefix_len)),
            dst_ports: port.map(|p| (p, p)),
        }
    }

    fn matches(&self, flow: &FiveTuple) -> bool {
        if let Some((net, len)) = self.src {
            if !flow.src_ip.in_prefix(net, len) {
                return false;
            }
        }
        if let Some((net, len)) = self.dst {
            if !flow.dst_ip.in_prefix(net, len) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.dst_ports {
            if flow.dst_port < lo || flow.dst_port > hi {
                return false;
            }
        }
        true
    }
}

/// The stateful port-based firewall.
#[derive(Debug, Clone, Default)]
pub struct VanillaFirewall {
    rules: Vec<PortRule>,
    /// Default decision when no rule matches.
    default_allow: bool,
    /// Established flows (canonical 5-tuples) admitted statefully.
    established: std::collections::HashSet<FiveTuple>,
}

impl VanillaFirewall {
    /// Creates a default-deny firewall with no rules.
    pub fn new() -> Self {
        VanillaFirewall::default()
    }

    /// A typical enterprise configuration: allow outbound web (80/443), mail
    /// (25), ssh (22), SMB only inside the LAN, deny the rest. `lan` is the
    /// internal prefix.
    pub fn enterprise_default(lan: Ipv4Addr, lan_prefix: u8) -> Self {
        let mut fw = VanillaFirewall::new();
        fw.add_rule(PortRule::allow_port(80));
        fw.add_rule(PortRule::allow_port(443));
        fw.add_rule(PortRule::allow_port(25));
        fw.add_rule(PortRule::allow_port(22));
        // SMB allowed only when both ends are in the LAN.
        fw.add_rule(PortRule {
            allow: true,
            src: Some((lan, lan_prefix)),
            dst: Some((lan, lan_prefix)),
            dst_ports: Some((445, 445)),
        });
        fw
    }

    /// Appends a rule (first match wins).
    pub fn add_rule(&mut self, rule: PortRule) {
        self.rules.push(rule);
    }

    /// Sets the default decision.
    pub fn set_default_allow(&mut self, allow: bool) {
        self.default_allow = allow;
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    fn decide(&self, flow: &FiveTuple) -> bool {
        if self.established.contains(&flow.canonical()) {
            return true;
        }
        for rule in &self.rules {
            if rule.matches(flow) {
                return rule.allow;
            }
        }
        self.default_allow
    }
}

impl FlowClassifier for VanillaFirewall {
    fn allow(&mut self, flow: &FiveTuple) -> bool {
        let allowed = self.decide(flow);
        if allowed {
            self.established.insert(flow.canonical());
        }
        allowed
    }

    fn name(&self) -> &str {
        "vanilla-firewall"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 0)
    }

    #[test]
    fn first_match_wins_and_default_denies() {
        let mut fw = VanillaFirewall::new();
        fw.add_rule(PortRule::deny_to(Ipv4Addr::new(10, 0, 0, 1), 32, Some(80)));
        fw.add_rule(PortRule::allow_port(80));
        let to_server = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 1], 80);
        let to_other = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 2], 80);
        let ssh = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 2], 22);
        assert!(!fw.allow(&to_server));
        assert!(fw.allow(&to_other));
        assert!(!fw.allow(&ssh));
        assert_eq!(fw.rule_count(), 2);
        assert_eq!(fw.name(), "vanilla-firewall");
    }

    #[test]
    fn stateful_return_traffic_is_admitted() {
        let mut fw = VanillaFirewall::new();
        fw.add_rule(PortRule::allow_port(80));
        let outbound = FiveTuple::tcp([10, 0, 0, 9], 43000, [8, 8, 8, 8], 80);
        assert!(fw.allow(&outbound));
        // The reverse direction matches no allow rule (dst port 43000) but is
        // admitted because of state.
        assert!(fw.allow(&outbound.reversed()));
        // An unrelated inbound flow to a high port is still blocked.
        let unrelated = FiveTuple::tcp([8, 8, 8, 8], 80, [10, 0, 0, 9], 44000);
        assert!(!fw.allow(&unrelated));
    }

    #[test]
    fn cannot_distinguish_applications_on_the_same_port() {
        // The central limitation: skype-to-webserver on port 80 looks exactly
        // like a browser request.
        let mut fw = VanillaFirewall::enterprise_default(lan(), 8);
        let browser = FiveTuple::tcp([10, 0, 0, 9], 43000, [10, 0, 0, 1], 80);
        let skype_same_tuple = FiveTuple::tcp([10, 0, 0, 9], 43001, [10, 0, 0, 1], 80);
        assert!(fw.allow(&browser));
        assert!(fw.allow(&skype_same_tuple)); // false allow, by construction
    }

    #[test]
    fn enterprise_default_scopes_smb_to_lan() {
        let mut fw = VanillaFirewall::enterprise_default(lan(), 8);
        let internal_smb = FiveTuple::tcp([10, 0, 0, 9], 43000, [10, 0, 0, 1], 445);
        let external_smb = FiveTuple::tcp([192, 168, 1, 9], 43000, [10, 0, 0, 1], 445);
        assert!(fw.allow(&internal_smb));
        assert!(!fw.allow(&external_smb));
    }

    #[test]
    fn default_allow_mode() {
        let mut fw = VanillaFirewall::new();
        fw.set_default_allow(true);
        assert!(fw.allow(&FiveTuple::tcp([1, 1, 1, 1], 1, [2, 2, 2, 2], 9999)));
    }
}
