//! Experiment E6 (§5 security analysis): how much of the network an attacker
//! reaches after compromising each component, under ident++ versus the
//! distributed-firewall baseline.
//!
//! The per-scenario blast-radius table is printed by
//! `cargo run --release -p identxx-bench --bin scenarios e6`; this bench
//! only measures the scan.

use criterion::{criterion_group, criterion_main, Criterion};
use identxx_bench::scenarios::{blast_network, identxx_blast_radius};

fn bench_blast_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("compromise_blast_radius");
    group.sample_size(10);
    group.bench_function("scan_20_hosts_identxx", |b| {
        b.iter_batched(
            || blast_network(20),
            |mut net| {
                let attacker = net.host_addrs()[0];
                identxx_blast_radius(&mut net, attacker)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_blast_radius);
criterion_main!(benches);
