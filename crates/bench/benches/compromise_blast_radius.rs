//! Experiment E6 (§5 security analysis): how much of the network an attacker
//! reaches after compromising each component, under ident++ versus the
//! distributed-firewall baseline.
//!
//! The metric is the *blast radius*: out of all (victim, sensitive-port)
//! pairs the policy is supposed to protect, how many can the attacker now
//! reach?

use criterion::{criterion_group, criterion_main, Criterion};
use identxx_baselines::{DistributedFirewall, FlowClassifier};
use identxx_controller::ControllerConfig;
use identxx_core::EnterpriseNetwork;
use identxx_hostmodel::Executable;
use identxx_proto::{FiveTuple, Ipv4Addr};

const SENSITIVE_PORT: u16 = 445;

/// ident++ policy: only the backup application run by the system user may
/// reach the file service.
const POLICY: &str = "\
block all
pass all with eq(@src[userID], system) with eq(@src[name], backupd) with eq(@dst[name], Server) keep state
";

fn build_network(hosts: usize) -> EnterpriseNetwork {
    let mut net = EnterpriseNetwork::star_with_config(
        hosts,
        ControllerConfig::new().with_control_file("00.control", POLICY),
    )
    .unwrap();
    let server_exe = Executable::new(
        "/win/services.exe",
        "Server",
        6,
        "microsoft",
        "file-service",
    );
    for addr in net.host_addrs() {
        net.run_service(addr, "system", server_exe.clone(), SENSITIVE_PORT);
    }
    net
}

/// Counts how many victims the attacker at `attacker` can reach on the
/// sensitive port after the given compromise scenario.
fn identxx_blast_radius(net: &mut EnterpriseNetwork, attacker: Ipv4Addr) -> usize {
    let malware = Executable::new("/tmp/conficker", "conficker", 1, "unknown", "worm");
    let victims: Vec<Ipv4Addr> = net
        .host_addrs()
        .into_iter()
        .filter(|a| *a != attacker)
        .collect();
    let mut reached = 0;
    for (i, victim) in victims.iter().enumerate() {
        let flow = {
            match net.daemon_mut(attacker) {
                Some(daemon) => daemon.host_mut().open_connection(
                    "mallory",
                    malware.clone(),
                    48000 + i as u16,
                    *victim,
                    SENSITIVE_PORT,
                ),
                None => FiveTuple::tcp(attacker, 48000 + i as u16, *victim, SENSITIVE_PORT),
            }
        };
        if net.decide(&flow).is_pass() {
            reached += 1;
        }
    }
    reached
}

fn print_blast_radius_table() {
    let host_count = 20;
    let total_victims = host_count - 1;
    println!("\n# E6: blast radius after compromise (victims reachable on port {SENSITIVE_PORT}, out of {total_victims})");
    println!(
        "{:<42} {:>10} {:>14}",
        "scenario", "ident++", "distributed-fw"
    );

    // Distributed firewall baseline: every host enforces "only port 22 from
    // anywhere" (i.e. the sensitive port is closed); a compromised receiver
    // stops enforcing.
    let build_dfw = |compromised: &[Ipv4Addr]| {
        let mut dfw = DistributedFirewall::new();
        let net = build_network(host_count);
        for addr in net.host_addrs() {
            dfw.manage_host(addr, &[22]);
        }
        for addr in compromised {
            dfw.set_compromised(*addr, true);
        }
        dfw
    };
    let dfw_radius = |dfw: &mut DistributedFirewall, attacker: Ipv4Addr, hosts: &[Ipv4Addr]| {
        hosts
            .iter()
            .filter(|v| **v != attacker)
            .filter(|v| dfw.allow(&FiveTuple::tcp(attacker, 48000, **v, SENSITIVE_PORT)))
            .count()
    };

    // Scenario 1: no compromise.
    let mut net = build_network(host_count);
    let hosts = net.host_addrs();
    let attacker = hosts[0];
    let mut dfw = build_dfw(&[]);
    println!(
        "{:<42} {:>10} {:>14}",
        "baseline (no compromise)",
        identxx_blast_radius(&mut net, attacker),
        dfw_radius(&mut dfw, attacker, &hosts)
    );

    // Scenario 2: one end-host compromised (attacker's own machine, daemon
    // forges responses claiming to be the backup service).
    let mut net = build_network(host_count);
    net.daemon_mut(attacker)
        .unwrap()
        .set_forged_response(Some(vec![
            ("userID".to_string(), "system".to_string()),
            ("name".to_string(), "backupd".to_string()),
        ]));
    let mut dfw = build_dfw(&[attacker]);
    println!(
        "{:<42} {:>10} {:>14}",
        "attacker's end-host compromised",
        identxx_blast_radius(&mut net, attacker),
        dfw_radius(&mut dfw, attacker, &hosts)
    );

    // Scenario 3: one *other* end-host (a victim) compromised. Under the
    // distributed firewall that victim is now wide open; under ident++ the
    // network still blocks the attacker's flows to everyone.
    let victim = hosts[1];
    let mut net = build_network(host_count);
    net.daemon_mut(victim)
        .unwrap()
        .set_forged_response(Some(vec![("name".to_string(), "Server".to_string())]));
    let mut dfw = build_dfw(&[victim]);
    println!(
        "{:<42} {:>10} {:>14}",
        "one victim end-host compromised",
        identxx_blast_radius(&mut net, attacker),
        dfw_radius(&mut dfw, attacker, &hosts)
    );

    // Scenario 4: a switch is compromised (ident++/OpenFlow): the single
    // switch in the star stops enforcing — everything behind it is reachable,
    // matching §5.2's "compromising a single ident++-enabled switch can
    // disable the protection it affords".
    let mut net = build_network(host_count);
    let switch_ids: Vec<_> = net.switches().keys().copied().collect();
    for id in switch_ids {
        net.switch_mut(id).unwrap().set_compromised(true);
    }
    let data_plane_reached = {
        let hosts = net.host_addrs();
        let malware = Executable::new("/tmp/conficker", "conficker", 1, "unknown", "worm");
        let mut reached = 0;
        for (i, victim) in hosts.iter().skip(1).enumerate() {
            let flow = net
                .daemon_mut(attacker)
                .unwrap()
                .host_mut()
                .open_connection(
                    "mallory",
                    malware.clone(),
                    52000 + i as u16,
                    *victim,
                    SENSITIVE_PORT,
                );
            if net.deliver_first_packet(&flow, 0).delivered {
                reached += 1;
            }
        }
        reached
    };
    let mut dfw = build_dfw(&[]); // distributed firewalls do not depend on switches
    println!(
        "{:<42} {:>10} {:>14}",
        "switch compromised (data plane)",
        data_plane_reached,
        dfw_radius(&mut dfw, attacker, &hosts)
    );

    // Scenario 5: the controller itself is compromised — total loss, as §5.1
    // concedes.
    let mut net = build_network(host_count);
    net.controller_mut().set_compromised(true);
    let mut dfw = build_dfw(&[]);
    println!(
        "{:<42} {:>10} {:>14}",
        "controller compromised",
        identxx_blast_radius(&mut net, attacker),
        dfw_radius(&mut dfw, attacker, &hosts)
    );
}

fn bench_blast_radius(c: &mut Criterion) {
    print_blast_radius_table();
    let mut group = c.benchmark_group("compromise_blast_radius");
    group.sample_size(10);
    group.bench_function("scan_20_hosts_identxx", |b| {
        b.iter_batched(
            || build_network(20),
            |mut net| {
                let attacker = net.host_addrs()[0];
                identxx_blast_radius(&mut net, attacker)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_blast_radius);
criterion_main!(benches);
