//! Experiment E8c: the cost of authenticated delegation — hashing executables,
//! signing requirement bundles, and verifying them inside `verify()`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use identxx_crypto::{sha256, sign_bundle, verify_bundle, KeyPair};
use identxx_pf::{parse_ruleset, EvalContext};
use identxx_proto::{FiveTuple, Response, Section};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 64 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(criterion::Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| sha256(&data));
        });
    }
    group.finish();

    let keypair = KeyPair::from_seed(b"research");
    let bundle = [
        "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08",
        "research-app",
        "block all\npass all with eq(@src[name], research-app) with eq(@dst[name], research-app)",
    ];
    let signature = sign_bundle(&keypair, &bundle);

    let mut group = c.benchmark_group("delegation_signatures");
    group.bench_function("sign_bundle", |b| b.iter(|| sign_bundle(&keypair, &bundle)));
    group.bench_function("verify_bundle", |b| {
        b.iter(|| verify_bundle(&signature, &keypair.public(), &bundle))
    });
    group.finish();

    // The end-to-end cost of a policy decision that includes verify() +
    // allowed(), compared to a plain eq() decision.
    let flow = FiveTuple::tcp([10, 0, 0, 1], 45000, [10, 0, 0, 2], 7000);
    let requirements = "block all\npass from any to any port 7000";
    let sig =
        identxx_crypto::sign_bundle_hex(&keypair, &["cafebabe", "research-app", requirements]);
    let mut dst = Response::new(flow);
    let mut s = Section::new();
    s.push("exe-hash", "cafebabe");
    s.push("app-name", "research-app");
    s.push("name", "research-app");
    s.push("requirements", requirements);
    s.push("req-sig", sig.as_str());
    dst.push_section(s);
    let src = Response::new(flow);

    let plain = parse_ruleset("block all\npass all with eq(@dst[name], research-app)\n").unwrap();
    let delegated = parse_ruleset(&format!(
        "dict <pubkeys> {{ research : {} }}\nblock all\npass all with allowed(@dst[requirements]) with verify(@dst[req-sig], @pubkeys[research], @dst[exe-hash], @dst[app-name], @dst[requirements])\n",
        keypair.public().to_hex()
    ))
    .unwrap();

    let mut group = c.benchmark_group("decision_with_delegation");
    group.bench_function("plain_eq_rule", |b| {
        let ctx = EvalContext::new(&plain).with_responses(&src, &dst);
        b.iter(|| ctx.evaluate(&flow));
    });
    group.bench_function("allowed_plus_verify_rule", |b| {
        let ctx = EvalContext::new(&delegated).with_responses(&src, &dst);
        b.iter(|| ctx.evaluate(&flow));
    });
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
