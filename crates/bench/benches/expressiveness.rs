//! Experiment E7: expressiveness / collateral damage.
//!
//! The paper's motivating claim (§1) is that port-based policies are too
//! coarse: "the administrator may wish to deny Skype access to an important
//! webserver but is unable to because Skype and Web traffic both use
//! destination port 80". This bench runs the same annotated workload through
//! the ident++ controller, a vanilla port firewall, and an Ethane-style
//! controller, and scores each against the administrator's intent.

use criterion::{criterion_group, criterion_main, Criterion};
use identxx_baselines::common::IntentScore;
use identxx_baselines::{EthaneController, EthanePolicy, FlowClassifier, VanillaFirewall};
use identxx_controller::ControllerConfig;
use identxx_core::EnterpriseNetwork;
use identxx_hostmodel::Executable;
use identxx_netsim::workload::{WorkloadConfig, WorkloadGenerator};
use identxx_proto::Ipv4Addr;

/// The administrator's intent, expressed in ident++ terms: allow known-good
/// applications (current skype, browsers, mail, ssh, Server, research-app),
/// block old skype and unknown applications.
const IDENTXX_POLICY: &str = "\
block all
pass all with eq(@src[name], firefox) keep state
pass all with eq(@src[name], skype) with gte(@src[version], 200) keep state
pass all with eq(@src[name], thunderbird) keep state
pass all with eq(@src[name], ssh) keep state
pass all with eq(@src[name], Server) keep state
pass all with eq(@src[name], research-app) keep state
";

fn run_comparison(flow_count: usize, seed: u64) -> Vec<(String, IntentScore)> {
    let mut net = EnterpriseNetwork::star_with_config(
        20,
        ControllerConfig::new().with_control_file("00.control", IDENTXX_POLICY),
    )
    .unwrap();
    let hosts = net.host_addrs();
    let workload =
        WorkloadGenerator::new(WorkloadConfig::enterprise(hosts.clone(), flow_count, seed))
            .generate();

    // Baselines: the port firewall allows the ports the good applications
    // need; Ethane binds every host to the "employees" group and allows
    // employee traffic on those same ports.
    let mut vanilla = VanillaFirewall::enterprise_default(Ipv4Addr::new(10, 0, 0, 0), 16);
    vanilla.add_rule(identxx_baselines::PortRule::allow_port(7000)); // research app port
    let mut ethane = EthaneController::new();
    for addr in &hosts {
        ethane.bind(*addr, format!("host-{addr}"), "employees");
    }
    for port in [80u16, 443, 25, 22, 445, 7000] {
        ethane.add_rule(EthanePolicy {
            src_group: Some("employees".into()),
            dst_group: Some("employees".into()),
            dst_port: Some(port),
            allow: true,
        });
    }

    let mut identxx_score = IntentScore::default();
    let mut vanilla_score = IntentScore::default();
    let mut ethane_score = IntentScore::default();

    for flow in &workload {
        // Stage the real application on the source host so the daemon reports
        // the truth.
        let exe = Executable::new(
            format!("/usr/bin/{}", flow.app.name),
            flow.app.name.replace("-old", ""),
            flow.app.version,
            "vendor",
            &flow.app.app_type,
        );
        {
            let daemon = net.daemon_mut(flow.five_tuple.src_ip).unwrap();
            let pid = daemon.host_mut().spawn(&flow.user, exe);
            daemon.host_mut().connect_flow(pid, flow.five_tuple);
        }
        let decision = net.decide(&flow.five_tuple).verdict.decision.is_pass();
        identxx_score.record(flow.app.intended_allowed, decision);
        vanilla_score.record(flow.app.intended_allowed, vanilla.allow(&flow.five_tuple));
        ethane_score.record(flow.app.intended_allowed, ethane.allow(&flow.five_tuple));
    }

    vec![
        ("ident++".to_string(), identxx_score),
        ("vanilla-firewall".to_string(), vanilla_score),
        ("ethane".to_string(), ethane_score),
    ]
}

fn bench_expressiveness(c: &mut Criterion) {
    println!("\n# E7: decisions vs administrator intent (1000 flows, enterprise mix)");
    println!(
        "{:<18} {:>10} {:>14} {:>14}",
        "mechanism", "accuracy", "false-allow", "false-block"
    );
    for (name, score) in run_comparison(1_000, 7) {
        println!(
            "{:<18} {:>9.1}% {:>13.1}% {:>13.1}%",
            name,
            score.accuracy() * 100.0,
            score.false_allow_rate() * 100.0,
            score.false_block_rate() * 100.0
        );
    }

    let mut group = c.benchmark_group("expressiveness");
    group.sample_size(10);
    group.bench_function("identxx_vs_baselines_200_flows", |b| {
        b.iter(|| run_comparison(200, 11));
    });
    group.finish();
}

criterion_group!(benches, bench_expressiveness);
criterion_main!(benches);
