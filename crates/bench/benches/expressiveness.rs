//! Experiment E7: expressiveness / collateral damage.
//!
//! The paper's motivating claim (§1) is that port-based policies are too
//! coarse. The intent-vs-decision scenario table is printed by
//! `cargo run --release -p identxx-bench --bin scenarios e7`; this bench
//! only measures the comparison loop.

use criterion::{criterion_group, criterion_main, Criterion};
use identxx_bench::scenarios::run_expressiveness_comparison;

fn bench_expressiveness(c: &mut Criterion) {
    let mut group = c.benchmark_group("expressiveness");
    group.sample_size(10);
    group.bench_function("identxx_vs_baselines_200_flows", |b| {
        b.iter(|| run_expressiveness_comparison(200, 11));
    });
    group.finish();
}

criterion_group!(benches, bench_expressiveness);
criterion_main!(benches);
