//! Experiment E1 (Fig. 1): flow-setup cost as a function of path length, the
//! rule-cache ablation, and the controller-side compiled-vs-interpreted
//! evaluation comparison.
//!
//! The simulated-latency scenario table is printed by
//! `cargo run --release -p identxx-bench --bin scenarios e1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use identxx_bench::scenarios::{flow_setup_network, flow_setup_policy, scaling_policy};
use identxx_controller::{ControllerConfig, IdentxxController};
use identxx_core::EnterpriseNetwork;
use identxx_proto::{FiveTuple, Ipv4Addr, Response, Section};

fn bench_flow_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_setup_decision");
    for switches in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("first_packet", switches),
            &switches,
            |b, &switches| {
                b.iter_batched(
                    || flow_setup_network(switches),
                    |(mut net, flow)| net.deliver_first_packet(&flow, 0),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();

    // Rule-cache ablation: repeated decisions with and without the state
    // table.
    let mut group = c.benchmark_group("rule_cache_ablation");
    group.bench_function("with_state_table", |b| {
        let (mut net, flow) = flow_setup_network(4);
        net.decide(&flow);
        b.iter(|| net.decide(&flow));
    });
    group.bench_function("without_state_table", |b| {
        let mut net =
            EnterpriseNetwork::chain(4, flow_setup_policy().without_state_table()).unwrap();
        let flow = net.start_app(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            80,
            "alice",
            identxx_core::firefox_app(),
        );
        net.decide(&flow);
        b.iter(|| net.decide(&flow));
    });
    group.finish();

    // The policy-evaluation step of the flow-setup pipeline in isolation:
    // the controller's compiled fast path against the reference interpreter,
    // at growing policy sizes.
    let mut group = c.benchmark_group("controller_evaluation");
    let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
    let mut src = Response::new(flow);
    let mut section = Section::new();
    section.push("name", "firefox");
    src.push_section(section);
    let dst = Response::new(flow);
    for n in [10usize, 100, 1_000] {
        let controller = IdentxxController::new(
            ControllerConfig::new().with_control_file("00.control", scaling_policy(n, false)),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| controller.evaluate_only(&flow, Some(&src), Some(&dst)));
        });
        group.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| controller.evaluate_interpreted(&flow, Some(&src), Some(&dst)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow_setup);
criterion_main!(benches);
