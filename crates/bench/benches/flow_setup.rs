//! Experiment E1 (Fig. 1): flow-setup cost as a function of path length, and
//! the rule-cache ablation.
//!
//! For each path length the bench measures the wall-clock cost of the
//! controller's decision cycle, and also prints the *simulated* setup latency
//! (queries + evaluation + installation) versus the cached data-path latency,
//! which is the series the paper's Fig. 1 design implies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use identxx_controller::ControllerConfig;
use identxx_core::{firefox_app, EnterpriseNetwork};
use identxx_proto::Ipv4Addr;

fn policy() -> ControllerConfig {
    ControllerConfig::new().with_control_file(
        "00.control",
        "block all\npass all with eq(@src[name], firefox) keep state\n",
    )
}

fn setup_network(switches: usize) -> (EnterpriseNetwork, identxx_proto::FiveTuple) {
    let mut net = EnterpriseNetwork::chain(switches, policy()).unwrap();
    let client = Ipv4Addr::new(10, 0, 0, 1);
    let server = Ipv4Addr::new(10, 0, 1, 1);
    let flow = net.start_app(client, server, 80, "alice", firefox_app());
    (net, flow)
}

fn bench_flow_setup(c: &mut Criterion) {
    println!("\n# E1: simulated flow-setup latency vs path length (Fig. 1 sequence)");
    println!(
        "{:>8} {:>16} {:>16} {:>10} {:>8} {:>8}",
        "switches", "setup_us(sim)", "cached_us(sim)", "overhead", "ident", "openflow"
    );
    for switches in [1usize, 2, 4, 8, 16] {
        let (mut net, flow) = setup_network(switches);
        let report = net.simulate_flow_setup(&flow).unwrap();
        println!(
            "{:>8} {:>16} {:>16} {:>10.1} {:>8} {:>8}",
            switches,
            report.setup_latency_us,
            report.cached_latency_us,
            report.setup_overhead(),
            report.ident_exchanges,
            report.openflow_messages
        );
    }

    let mut group = c.benchmark_group("flow_setup_decision");
    for switches in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("first_packet", switches),
            &switches,
            |b, &switches| {
                b.iter_batched(
                    || setup_network(switches),
                    |(mut net, flow)| net.deliver_first_packet(&flow, 0),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();

    // Rule-cache ablation: repeated decisions with and without the state
    // table.
    let mut group = c.benchmark_group("rule_cache_ablation");
    group.bench_function("with_state_table", |b| {
        let (mut net, flow) = setup_network(4);
        net.decide(&flow);
        b.iter(|| net.decide(&flow));
    });
    group.bench_function("without_state_table", |b| {
        let mut net = EnterpriseNetwork::chain(4, policy().without_state_table()).unwrap();
        let flow = net.start_app(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            80,
            "alice",
            firefox_app(),
        );
        net.decide(&flow);
        b.iter(|| net.decide(&flow));
    });
    group.finish();
}

criterion_group!(benches, bench_flow_setup);
criterion_main!(benches);
