//! Experiment E8a: controller decision cost versus policy size — the
//! interpreter (last-match and `quick`) against the compiled evaluator.
//!
//! The scenario table (rules examined per decision) is printed by
//! `cargo run --release -p identxx-bench --bin scenarios e8a`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use identxx_bench::scenarios::{scaling_policy, scaling_responses};
use identxx_pf::{parse_ruleset, CompiledPolicy, EvalContext, PolicyCompiler};
use identxx_proto::FiveTuple;

fn bench_policy_scaling(c: &mut Criterion) {
    let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
    let (src, dst) = scaling_responses(flow);

    // Interpreted vs compiled, side by side, at each policy size. The
    // `compiled` series is the field-indexed matcher tree (the acceptance
    // series: flat through 100 000 rules); `compiled_linear` is the ordered
    // scan over the same lowered rules, isolating what the tree buys over
    // plain compilation.
    let mut group = c.benchmark_group("policy_evaluation");
    for n in [10usize, 100, 1_000, 10_000, 100_000] {
        let ruleset = parse_ruleset(&scaling_policy(n, false)).unwrap();
        group.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            let ctx = EvalContext::new(&ruleset).with_responses(&src, &dst);
            b.iter(|| ctx.evaluate(&flow));
        });
        group.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            let compiled = CompiledPolicy::compile(&ruleset);
            b.iter(|| compiled.evaluate(&flow, Some(&src), Some(&dst)));
        });
        group.bench_with_input(BenchmarkId::new("compiled_linear", n), &n, |b, _| {
            let compiled = CompiledPolicy::compile(&ruleset);
            b.iter(|| compiled.evaluate_linear(&flow, Some(&src), Some(&dst)));
        });
        let quick_ruleset = parse_ruleset(&scaling_policy(n, true)).unwrap();
        group.bench_with_input(BenchmarkId::new("interpreted_quick", n), &n, |b, _| {
            let ctx = EvalContext::new(&quick_ruleset).with_responses(&src, &dst);
            b.iter(|| ctx.evaluate(&flow));
        });
        group.bench_with_input(BenchmarkId::new("compiled_quick", n), &n, |b, _| {
            let compiled = CompiledPolicy::compile(&quick_ruleset);
            b.iter(|| compiled.evaluate(&flow, Some(&src), Some(&dst)));
        });
    }
    group.finish();

    // The cost of compilation itself (amortized over a policy's lifetime; the
    // controller recompiles only when a `.control` file changes).
    let mut group = c.benchmark_group("policy_compilation");
    group.sample_size(20);
    for n in [100usize, 1_000] {
        let ruleset = parse_ruleset(&scaling_policy(n, false)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| PolicyCompiler::new().compile(&ruleset));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("policy_parsing");
    group.sample_size(20);
    for n in [100usize, 1_000] {
        let text = scaling_policy(n, false);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| parse_ruleset(&text).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy_scaling);
criterion_main!(benches);
