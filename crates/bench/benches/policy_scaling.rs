//! Experiment E8a: controller decision cost versus policy size, and the
//! `quick` short-circuit ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use identxx_pf::{parse_ruleset, Decision, EvalContext};
use identxx_proto::{FiveTuple, Response, Section};

/// Builds a policy with `n` non-matching application rules followed by one
/// matching rule. With `quick` the matching rule ends evaluation early when it
/// is placed first instead.
fn build_policy(n: usize, quick_first: bool) -> String {
    let mut policy = String::from("block all\n");
    if quick_first {
        policy.push_str("pass quick all with eq(@src[name], firefox)\n");
    }
    for i in 0..n {
        policy.push_str(&format!("pass all with eq(@src[name], app-{i})\n"));
    }
    if !quick_first {
        policy.push_str("pass all with eq(@src[name], firefox)\n");
    }
    policy
}

fn responses(flow: FiveTuple) -> (Response, Response) {
    let mut src = Response::new(flow);
    let mut s = Section::new();
    s.push("name", "firefox");
    s.push("userID", "alice");
    src.push_section(s);
    (src, Response::new(flow))
}

fn bench_policy_scaling(c: &mut Criterion) {
    let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
    let (src, dst) = responses(flow);

    println!("\n# E8a: rules evaluated per decision vs policy size (last-match vs quick)");
    println!(
        "{:>8} {:>18} {:>18}",
        "rules", "evaluated(last)", "evaluated(quick)"
    );
    for n in [10usize, 100, 1_000, 10_000] {
        let last = parse_ruleset(&build_policy(n, false)).unwrap();
        let quick = parse_ruleset(&build_policy(n, true)).unwrap();
        let v_last = EvalContext::new(&last)
            .with_responses(&src, &dst)
            .evaluate(&flow);
        let v_quick = EvalContext::new(&quick)
            .with_responses(&src, &dst)
            .evaluate(&flow);
        assert_eq!(v_last.decision, Decision::Pass);
        assert_eq!(v_quick.decision, Decision::Pass);
        println!(
            "{:>8} {:>18} {:>18}",
            n, v_last.rules_evaluated, v_quick.rules_evaluated
        );
    }

    let mut group = c.benchmark_group("policy_evaluation");
    for n in [10usize, 100, 1_000, 10_000] {
        let ruleset = parse_ruleset(&build_policy(n, false)).unwrap();
        group.bench_with_input(BenchmarkId::new("last_match", n), &n, |b, _| {
            let ctx = EvalContext::new(&ruleset).with_responses(&src, &dst);
            b.iter(|| ctx.evaluate(&flow));
        });
        let quick_ruleset = parse_ruleset(&build_policy(n, true)).unwrap();
        group.bench_with_input(BenchmarkId::new("quick", n), &n, |b, _| {
            let ctx = EvalContext::new(&quick_ruleset).with_responses(&src, &dst);
            b.iter(|| ctx.evaluate(&flow));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("policy_parsing");
    group.sample_size(20);
    for n in [100usize, 1_000] {
        let text = build_policy(n, false);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| parse_ruleset(&text).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy_scaling);
criterion_main!(benches);
