//! Supporting microbenchmark: encoding/decoding the ident++ wire protocol and
//! OpenFlow flow-table lookups — the per-packet costs underlying every other
//! experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use identxx_openflow::{FlowEntry, FlowMatch, FlowTable, OfAction, PacketHeader};
use identxx_proto::{codec, FiveTuple, Query, Response, Section};

fn sample_response(pairs: usize) -> Response {
    let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
    let mut r = Response::new(flow);
    let mut s = Section::new();
    s.push("userID", "alice");
    s.push("groupID", "users research");
    s.push("name", "research-app");
    s.push("exe-hash", "9f86d081884c7d659a2feaa0c55ad015");
    for i in 0..pairs.saturating_sub(4) {
        s.push(format!("extra-{i}"), "value");
    }
    r.push_section(s);
    r
}

fn bench_codec(c: &mut Criterion) {
    let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);

    let mut group = c.benchmark_group("proto_codec");
    let query = Query::for_all_well_known(flow);
    group.bench_function("encode_query", |b| b.iter(|| codec::encode_query(&query)));
    let query_text = codec::encode_query(&query);
    group.bench_function("decode_query", |b| {
        b.iter(|| codec::decode_query(&query_text, flow.addresses()).unwrap())
    });
    for pairs in [8usize, 32, 128] {
        let response = sample_response(pairs);
        let text = codec::encode_response(&response);
        group.bench_with_input(
            BenchmarkId::new("encode_response", pairs),
            &pairs,
            |b, _| b.iter(|| codec::encode_response(&response)),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_response", pairs),
            &pairs,
            |b, _| b.iter(|| codec::decode_response(&text, flow.addresses()).unwrap()),
        );
    }
    group.finish();

    // OpenFlow flow-table lookup cost with increasing table occupancy.
    let mut group = c.benchmark_group("flow_table_lookup");
    for entries in [10usize, 100, 1_000] {
        let mut table = FlowTable::new();
        for i in 0..entries {
            let f = FiveTuple::tcp(
                [10, (i >> 8) as u8, i as u8, 1],
                1000 + i as u16,
                [10, 0, 0, 2],
                80,
            );
            table.install(
                FlowEntry::new(FlowMatch::exact_five_tuple(&f), 100, OfAction::Output(1)),
                0,
            );
        }
        let header = PacketHeader::from_flow(&flow, 1);
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| table.peek(&header))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
