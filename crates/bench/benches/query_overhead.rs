//! Experiment E8b: ident++ query overhead per new flow, and the effect of
//! workload locality on the controller's rule cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use identxx_controller::ControllerConfig;
use identxx_core::EnterpriseNetwork;
use identxx_hostmodel::Executable;
use identxx_netsim::workload::{WorkloadConfig, WorkloadGenerator};

const POLICY: &str = "\
block all
pass all with eq(@src[name], firefox) keep state
pass all with eq(@src[name], skype) with gte(@src[version], 200) keep state
pass all with eq(@src[name], thunderbird) keep state
pass all with eq(@src[name], ssh) keep state
pass all with eq(@src[name], Server) keep state
pass all with eq(@src[name], research-app) keep state
";

fn run_workload(flow_count: usize, locality: f64, seed: u64) -> (f64, u64, usize) {
    let mut net = EnterpriseNetwork::star_with_config(
        20,
        ControllerConfig::new().with_control_file("00.control", POLICY),
    )
    .unwrap();
    let hosts = net.host_addrs();
    let mut config = WorkloadConfig::enterprise(hosts, flow_count, seed);
    config.locality = locality;
    let flows = WorkloadGenerator::new(config).generate();
    for flow in &flows {
        let exe = Executable::new(
            format!("/usr/bin/{}", flow.app.name),
            flow.app.name.replace("-old", ""),
            flow.app.version,
            "vendor",
            &flow.app.app_type,
        );
        let daemon = net.daemon_mut(flow.five_tuple.src_ip).unwrap();
        let pid = daemon.host_mut().spawn(&flow.user, exe);
        daemon.host_mut().connect_flow(pid, flow.five_tuple);
        net.decide(&flow.five_tuple);
    }
    let audit = net.controller().audit();
    (audit.cache_hit_ratio(), audit.total_queries(), flows.len())
}

fn bench_query_overhead(c: &mut Criterion) {
    println!("\n# E8b: ident++ queries per flow vs workload locality (2000 flows)");
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "locality", "cache-hit-ratio", "total queries", "queries/flow"
    );
    for locality in [0.0f64, 0.25, 0.5, 0.75, 0.9] {
        let (hit_ratio, queries, flows) = run_workload(2_000, locality, 13);
        println!(
            "{:>10.2} {:>15.1}% {:>16} {:>16.2}",
            locality,
            hit_ratio * 100.0,
            queries,
            queries as f64 / flows as f64
        );
    }

    let mut group = c.benchmark_group("query_overhead");
    group.sample_size(10);
    for locality in [0.0f64, 0.9] {
        group.bench_with_input(
            BenchmarkId::new("workload_500_flows", format!("locality_{locality}")),
            &locality,
            |b, &locality| {
                b.iter(|| run_workload(500, locality, 29));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_overhead);
criterion_main!(benches);
