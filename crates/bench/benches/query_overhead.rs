//! Experiment E8b: ident++ query overhead per new flow — the effect of
//! workload locality on the controller's rule cache, and the wall-clock cost
//! of querying both flow ends over real TCP.
//!
//! The locality-sweep scenario table is printed by
//! `cargo run --release -p identxx-bench --bin scenarios e8b`; this bench
//! measures the workload loop and the network query plane. The
//! `dual_end/*` group is the acceptance measurement for the concurrent
//! query plane: with the same per-daemon artificial latency, the concurrent
//! backend must finish in ≈ max of the two round trips where the serial
//! reference pays their sum.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use identxx_bench::scenarios::run_query_workload;
use identxx_controller::backend::{NetworkBackend, QueryBackend};
use identxx_controller::intercept::QueryTarget;
use identxx_daemon::Daemon;
use identxx_hostmodel::{Executable, Host};
use identxx_net::{DaemonServer, QueryClient};
use identxx_proto::{FiveTuple, Ipv4Addr, Query};

fn bench_query_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_overhead");
    group.sample_size(10);
    for locality in [0.0f64, 0.9] {
        group.bench_with_input(
            BenchmarkId::new("workload_500_flows", format!("locality_{locality}")),
            &locality,
            |b, &locality| {
                b.iter(|| run_query_workload(500, locality, 29));
            },
        );
    }
    group.finish();
}

/// Starts a daemon server on its own thread (leaked for the bench's
/// lifetime) and returns the socket address it listens on.
fn spawn_server(daemon: Daemon) -> SocketAddr {
    #[tokio::main(flavor = "multi_thread")]
    async fn serve(daemon: Daemon, tx: mpsc::Sender<SocketAddr>) {
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .expect("bind bench daemon server");
        tx.send(server.local_addr()).expect("report bench address");
        std::future::pending::<()>().await
    }
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || serve(daemon, tx));
    rx.recv().expect("bench daemon server failed to start")
}

/// Per-daemon artificial latency: large enough that the max-vs-sum
/// difference dominates loopback noise, small enough to keep the bench fast.
const DAEMON_DELAY: Duration = Duration::from_millis(2);

fn staged_flow() -> (Daemon, Daemon, FiveTuple) {
    let src_ip = Ipv4Addr::new(10, 0, 0, 1);
    let dst_ip = Ipv4Addr::new(10, 0, 0, 2);
    let mut src = Daemon::bare(Host::new("bench-src", src_ip));
    src.set_response_delay_micros(DAEMON_DELAY.as_micros() as u64);
    let exe = Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser");
    let flow = src
        .host_mut()
        .open_connection("alice", exe, 40123, dst_ip, 80);
    let mut dst = Daemon::bare(Host::new("bench-dst", dst_ip));
    dst.set_response_delay_micros(DAEMON_DELAY.as_micros() as u64);
    let httpd = Executable::new("/usr/sbin/httpd", "httpd", 2, "apache", "web-server");
    let pid = dst.host_mut().spawn("www", httpd);
    dst.host_mut()
        .listen(pid, identxx_proto::IpProtocol::Tcp, 80);
    (src, dst, flow)
}

fn bench_dual_end_network(c: &mut Criterion) {
    let (src_daemon, dst_daemon, flow) = staged_flow();
    let src_addr = spawn_server(src_daemon);
    let dst_addr = spawn_server(dst_daemon);

    let mut group = c.benchmark_group("dual_end");
    group.sample_size(10);

    // The concurrent query plane: both ends resolved by one backend call
    // against a shared deadline — wall time ≈ max(rtt_src, rtt_dst).
    let mut backend = NetworkBackend::new()
        .with_budget(Duration::from_secs(2))
        .with_endpoint(flow.src_ip, src_addr)
        .with_endpoint(flow.dst_ip, dst_addr);
    group.bench_function("concurrent_backend", |b| {
        b.iter(|| {
            let responses = backend.query_flow(
                &flow,
                &[QueryTarget::Source, QueryTarget::Destination],
                &["userID", "name"],
            );
            assert!(responses.src.is_some() && responses.dst.is_some());
        });
    });

    // The serial reference: the same two round trips, one after the other,
    // on the same pooled-client transport — wall time ≈ rtt_src + rtt_dst.
    let mut src_client = QueryClient::new(src_addr);
    let mut dst_client = QueryClient::new(dst_addr);
    group.bench_function("serial_reference", |b| {
        b.iter(|| {
            let query = Query::new(flow).with_key("userID").with_key("name");
            let src = src_client.query(&query, Duration::from_secs(2)).unwrap();
            let dst = dst_client.query(&query, Duration::from_secs(2)).unwrap();
            assert!(src.is_some() && dst.is_some());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_query_overhead, bench_dual_end_network);
criterion_main!(benches);
