//! Experiment E8b: ident++ query overhead per new flow, and the effect of
//! workload locality on the controller's rule cache.
//!
//! The locality-sweep scenario table is printed by
//! `cargo run --release -p identxx-bench --bin scenarios e8b`; this bench
//! only measures the workload loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use identxx_bench::scenarios::run_query_workload;

fn bench_query_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_overhead");
    group.sample_size(10);
    for locality in [0.0f64, 0.9] {
        group.bench_with_input(
            BenchmarkId::new("workload_500_flows", format!("locality_{locality}")),
            &locality,
            |b, &locality| {
                b.iter(|| run_query_workload(500, locality, 29));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_overhead);
criterion_main!(benches);
