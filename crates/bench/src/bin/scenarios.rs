//! Prints the experiment scenario tables (E1, E6, E7, E8a, E8b, E9) that
//! used to be side effects of `cargo bench`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p identxx-bench --bin scenarios            # all tables
//! cargo run --release -p identxx-bench --bin scenarios e6 e8a    # a subset
//! IDENTXX_SHARDS=4 cargo run --release -p identxx-bench --bin scenarios e9
//! ```
//!
//! `IDENTXX_SHARDS=N` focuses the E9 sharding sweep on shard counts {1, N}
//! (CI's second smoke configuration); without it E9 sweeps 1/2/4/8. Every
//! E9 cell asserts its decision stream is identical to the
//! single-controller path, so the smoke run fails if sharding ever changes
//! a decision.

use identxx_bench::scenarios;

/// Flows per E9 sweep cell. Modest on purpose: the slowest cell decides one
/// flow per ~3 ms daemon round trip (≈ 2.3 s for the batch-1 single-shard
/// cell), and the table has up to 12 cells.
const E9_SMOKE_FLOWS: usize = 768;

fn e9_shard_counts() -> Vec<usize> {
    match std::env::var("IDENTXX_SHARDS") {
        Ok(value) => {
            let shards: usize = value.parse().ok().filter(|n| *n >= 1).unwrap_or_else(|| {
                panic!("IDENTXX_SHARDS must be a positive integer, got {value:?}")
            });
            if shards == 1 {
                vec![1]
            } else {
                vec![1, shards]
            }
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec!["e1", "e6", "e7", "e8a", "e8b", "e9"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for experiment in selected {
        match experiment {
            "e1" => scenarios::print_e1(),
            "e6" => scenarios::print_e6(),
            "e7" => scenarios::print_e7(),
            "e8a" => scenarios::print_e8a(),
            "e8b" => scenarios::print_e8b(),
            "e9" => scenarios::print_e9(&e9_shard_counts(), E9_SMOKE_FLOWS),
            other => {
                eprintln!(
                    "unknown experiment {other:?}; expected e1, e6, e7, e8a, e8b, e9, or all"
                );
                std::process::exit(2);
            }
        }
    }
}
