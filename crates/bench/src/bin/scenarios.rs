//! Prints the experiment scenario tables (E1, E6, E7, E8a, E8b, E9, E10,
//! E11, E12, E13) that used to be side effects of `cargo bench`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p identxx-bench --bin scenarios             # all tables
//! cargo run --release -p identxx-bench --bin scenarios e6 e8a     # a subset
//! cargo run --release -p identxx-bench --bin scenarios --json e9  # + BENCH_E9.json
//! IDENTXX_SHARDS=4 cargo run --release -p identxx-bench --bin scenarios e8b e9
//! IDENTXX_E10_SMOKE=1 cargo run --release -p identxx-bench --bin scenarios e10
//! IDENTXX_E11_SMOKE=1 cargo run --release -p identxx-bench --bin scenarios e11
//! IDENTXX_E12_SMOKE=1 cargo run --release -p identxx-bench --bin scenarios e12
//! IDENTXX_E13_SMOKE=1 cargo run --release -p identxx-bench --bin scenarios e13
//! ```
//!
//! `IDENTXX_SHARDS=N` focuses the E9 sharding sweep on shard counts {1, N}
//! and runs the E8b table over an N-shard tier sharing one daemon directory
//! (CI's second smoke configuration); without it E9 sweeps 1/2/4/8 and E8b
//! runs unsharded. Every E9 cell (and the sharded E8b run) asserts it is
//! decision-identical to the single-controller path, so the smoke run fails
//! if sharding ever changes a decision. E10 compares the reactor runtime
//! against the `IDENTXX_RUNTIME=threaded` baseline; `IDENTXX_E10_SMOKE=1`
//! shrinks its sweep to CI size. E12 is the failure-drill matrix (partition,
//! brownout, shard loss, reshard-under-load — DESIGN.md §9): every cell
//! asserts bounded round latency, fail-closed denies for unobtainable
//! answers, and post-recovery decision identity; `IDENTXX_E12_SMOKE=1`
//! shrinks it for CI. E13 sweeps the amortized `verify()` plane — bundle
//! locality × bundle lifetime × batch size against an unsigned-rule
//! baseline — asserting forged bundles never pass, expired bundles stop
//! passing, and the headline amortization claim; `IDENTXX_E13_SMOKE=1`
//! shrinks it for CI. E11 is the open-loop sustained-load harness (a
//! configured arrival rate over thousands of daemons with population
//! churn, p50/p99/p999 decision latency — DESIGN.md §10);
//! `IDENTXX_E11_SMOKE=1` shrinks its minutes-long cells to seconds.
//!
//! `--json` additionally writes each quantitative experiment's cells to
//! `BENCH_<EXP>.json` in the working directory (E8a, E8b, E9, E10, E11,
//! E12, E13) — each with a trailing environment row recording cores and the
//! `IDENTXX_*` knobs — so CI can upload them as artifacts and track the
//! perf trajectory across PRs.

use identxx_bench::report::{write_bench_json, BenchRow};
use identxx_bench::{e11, scenarios};

/// Flows per E9 sweep cell. Modest on purpose: the slowest cell decides one
/// flow per ~3 ms daemon round trip (≈ 2.3 s for the batch-1 single-shard
/// cell), and the table has up to 12 cells.
const E9_SMOKE_FLOWS: usize = 768;

fn e9_shard_counts() -> Vec<usize> {
    match scenarios::env_shards() {
        Some(1) => vec![1],
        Some(shards) => vec![1, shards],
        None => vec![1, 2, 4, 8],
    }
}

fn main() {
    let mut json = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--json" {
                json = true;
                false
            } else {
                true
            }
        })
        .collect();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "e1", "e6", "e7", "e8a", "e8b", "e9", "e10", "e11", "e12", "e13",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let e10_smoke = std::env::var_os("IDENTXX_E10_SMOKE").is_some();
    let e11_smoke = std::env::var_os("IDENTXX_E11_SMOKE").is_some();
    let e12_smoke = std::env::var_os("IDENTXX_E12_SMOKE").is_some();
    let e13_smoke = std::env::var_os("IDENTXX_E13_SMOKE").is_some();
    for experiment in selected {
        let rows: Vec<BenchRow> = match experiment {
            "e1" => {
                scenarios::print_e1();
                Vec::new()
            }
            "e6" => {
                scenarios::print_e6();
                Vec::new()
            }
            "e7" => {
                scenarios::print_e7();
                Vec::new()
            }
            "e8a" => scenarios::print_e8a(),
            "e8b" => scenarios::print_e8b(),
            "e9" => scenarios::print_e9(&e9_shard_counts(), E9_SMOKE_FLOWS),
            "e10" => scenarios::print_e10(e10_smoke),
            "e11" => e11::print_e11(e11_smoke),
            "e12" => scenarios::print_e12(e12_smoke),
            "e13" => scenarios::print_e13(e13_smoke),
            other => {
                eprintln!(
                    "unknown experiment {other:?}; expected e1, e6, e7, e8a, e8b, e9, e10, e11, e12, e13, or all"
                );
                std::process::exit(2);
            }
        };
        if json && !rows.is_empty() {
            match write_bench_json(experiment, &rows) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(err) => {
                    eprintln!("failed to write BENCH json for {experiment}: {err}");
                    std::process::exit(1);
                }
            }
        }
    }
}
