//! Prints the experiment scenario tables (E1, E6, E7, E8a, E8b) that used to
//! be side effects of `cargo bench`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p identxx-bench --bin scenarios            # all tables
//! cargo run --release -p identxx-bench --bin scenarios e6 e8a    # a subset
//! ```

use identxx_bench::scenarios;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec!["e1", "e6", "e7", "e8a", "e8b"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for experiment in selected {
        match experiment {
            "e1" => scenarios::print_e1(),
            "e6" => scenarios::print_e6(),
            "e7" => scenarios::print_e7(),
            "e8a" => scenarios::print_e8a(),
            "e8b" => scenarios::print_e8b(),
            other => {
                eprintln!("unknown experiment {other:?}; expected e1, e6, e7, e8a, e8b, or all");
                std::process::exit(2);
            }
        }
    }
}
