//! E11: open-loop sustained load over the sharded tier, with population
//! churn.
//!
//! E9/E10 are **closed-loop**: the driver decides a round, waits, decides
//! the next, so the offered load adjusts itself to whatever the tier can
//! absorb and the reported latency can never show queueing. E11 is
//! **open-loop**: flow arrivals are scheduled on a wall clock at a
//! configured rate — flow `i` arrives at `i / rate` seconds, whether or not
//! the tier has finished earlier work — and each decision's latency is
//! measured from its *scheduled arrival* to its completion. A tier that
//! falls behind accumulates queue delay that lands in the tail percentiles
//! instead of silently stretching the run (the coordinated-omission trap;
//! DESIGN.md §10 has the full rationale).
//!
//! The population is thousands of in-process daemons behind one shared
//! directory ([`SharedDirectoryBackend`]) queried by every shard, each
//! daemon presenting a per-host signed delegation bundle so the decision
//! path exercises the full E13 verify plane (policy: `pass` only what
//! `verify()` authenticates; a slice of hosts present forged bundles and
//! must never pass). Sources are drawn with hot-set locality, destinations
//! uniformly. A [`ChurnPlan`] arrives/departs daemons mid-run through the
//! tier's churn hooks; a small share of traffic keeps naming recently
//! departed hosts, which the fail-closed configuration must deny.
//!
//! Latency goes into the mergeable [`LogHistogram`]; the cell reports
//! p50/p99/p999, queries/flow, verify-cache hit rate, fail-closed denies,
//! churn volume, and peak RSS/threads, emitted as `BENCH_E11.json` rows by
//! the scenarios binary.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::hist::LogHistogram;
use crate::report::BenchRow;
use crate::scenarios::process_threads;
use identxx_controller::{ControllerConfig, ShardedController, SharedDirectoryBackend};
use identxx_crypto::{sign_bundle_windowed, KeyPair};
use identxx_daemon::{ChurnPlan, ChurnSchedule, Daemon};
use identxx_hostmodel::Host;
use identxx_pf::CacheGranularity;
use identxx_proto::{FiveTuple, Ipv4Addr};

/// The requirements every E11 bundle signs over (the delegated policy).
const E11_REQS: &str = "block all\npass all with eq(@src[name], research-app)";

/// The controller policy: nothing passes without an authentic delegation.
/// `keep state` caches passing host pairs (HostPairDstPort keys), so
/// repeated hot pairs skip the query round entirely — the warming curve E8b
/// measures, here under sustained load.
const E11_POLICY: &str = "block all\npass all with verify(@src[req-sig], Secur, \
                          @src[exe-hash], @src[name], @src[requirements]) keep state\n";

/// Every 16th daemon presents a bundle signed over a different name than it
/// claims — a forged delegation the verify plane must block at any scale.
const IMPOSTER_EVERY: usize = 16;

/// Hot sources: this many live hosts receive `locality` of the source
/// picks.
const HOT_SOURCES: usize = 64;

/// Verify-cache capacity: holds the hot sources' bundles comfortably, far
/// fewer than the whole population, so cold traffic and churn arrivals
/// keep paying (and amortizing) fresh verifies.
const E11_VERIFY_CAPACITY: usize = 256;

/// Max flows dispatched per `decide_batch` round.
const E11_MAX_BATCH: usize = 128;

/// One in this many destination picks names a recently departed host
/// (peers keep connecting to hosts that left — the fail-closed path).
const DEPARTED_DST_EVERY: u64 = 32;

/// First address of the E11 population; daemon `i` is `base + i`.
const E11_BASE_ADDR: Ipv4Addr = Ipv4Addr::new(10, 32, 0, 0);

/// One sustained-load cell.
#[derive(Debug, Clone)]
pub struct E11Config {
    /// Initial daemon population.
    pub daemons: usize,
    /// Controller shards over the shared directory.
    pub shards: usize,
    /// Offered arrival rate, flows per second.
    pub rate_per_sec: f64,
    /// Steady-state window length.
    pub duration: Duration,
    /// Probability a source pick comes from the hot set.
    pub locality: f64,
    /// Population churn, when enabled.
    pub churn: Option<ChurnPlan>,
    /// Workload seed (source/destination picks).
    pub seed: u64,
}

/// What one cell measured.
pub struct E11Cell {
    /// Per-decision latency (scheduled arrival → completion), microseconds.
    pub latency: LogHistogram,
    /// Flows offered (and decided — the run asserts none were dropped).
    pub flows: usize,
    /// Wall-clock length of the run.
    pub elapsed: Duration,
    /// Decisions per second actually completed.
    pub achieved_rate: f64,
    /// Pass / deny split.
    pub passes: usize,
    /// Denies (forged bundles, fail-closed, default blocks).
    pub blocks: usize,
    /// Daemon queries per flow (state-table hits drive this below 2).
    pub queries_per_flow: f64,
    /// State-table hit ratio.
    pub cache_hit_ratio: f64,
    /// Verify-cache hit rate over verify() evaluations.
    pub verify_hit_rate: f64,
    /// Forged bundles rejected by the verify plane.
    pub forged_rejections: u64,
    /// Fail-closed denies (unanswerable flows).
    pub fail_closed: usize,
    /// Daemons that joined mid-run.
    pub arrivals: usize,
    /// Daemons that left mid-run.
    pub departures: usize,
    /// Peak resident set of the process, kB (`VmHWM`; process-wide).
    pub peak_rss_kb: u64,
    /// Peak thread count sampled during the run.
    pub peak_threads: usize,
}

/// Peak resident set size of this process in kB, from `/proc/self/status`
/// (`VmHWM`); 0 when unreadable (non-Linux).
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")
                    .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Mints daemon `index`: a per-host signed bundle under the `Secur` key,
/// forged (name mismatch) for every [`IMPOSTER_EVERY`]-th host. Returns the
/// daemon, its address, and whether it is an imposter.
fn mint_daemon(signer: &KeyPair, index: usize) -> (Daemon, Ipv4Addr, bool) {
    let addr = Ipv4Addr(E11_BASE_ADDR.0 + index as u32);
    let exe_hash = format!("e11-exe-{index:06}");
    let bundle = sign_bundle_windowed(
        signer,
        "Secur",
        0,
        u64::MAX,
        &[exe_hash.as_str(), "research-app", E11_REQS],
    );
    let imposter = index % IMPOSTER_EVERY == IMPOSTER_EVERY - 1;
    let name = if imposter {
        "imposter-app"
    } else {
        "research-app"
    };
    let mut daemon = Daemon::bare(Host::new(format!("h{addr}"), addr));
    daemon.set_forged_response(Some(vec![
        ("name".to_string(), name.to_string()),
        ("exe-hash".to_string(), exe_hash),
        ("requirements".to_string(), E11_REQS.to_string()),
        ("req-sig".to_string(), bundle.to_hex()),
    ]));
    (daemon, addr, imposter)
}

/// Builds the tier: `shards` controllers over one shared daemon directory,
/// fail-closed on unanswerable flows, host-pair+port cache keys, the E11
/// verify policy.
fn e11_tier(signer: &KeyPair, config: &E11Config) -> (ShardedController, Vec<(Ipv4Addr, bool)>) {
    let (directory, first) = SharedDirectoryBackend::fresh();
    let mut live = Vec::with_capacity(config.daemons);
    {
        let mut directory = directory.lock().expect("fresh directory");
        for index in 0..config.daemons {
            let (daemon, addr, imposter) = mint_daemon(signer, index);
            live.push((addr, imposter));
            directory.register(daemon);
        }
    }
    let controller_config = ControllerConfig::new()
        .with_control_file("00.control", E11_POLICY)
        .with_trusted_key("Secur", signer.public())
        .with_verify_cache_capacity(E11_VERIFY_CAPACITY)
        .with_cache_granularity(CacheGranularity::HostPairDstPort)
        .with_fail_closed_on_unanswered();
    let mut first = Some(first);
    let tier = ShardedController::new(controller_config, config.shards)
        .expect("compile E11 policy")
        .with_backends(|_| match first.take() {
            Some(backend) => Box::new(backend),
            None => Box::new(SharedDirectoryBackend::new(Arc::clone(&directory))),
        });
    (tier, live)
}

/// Applies one churn tick through the tier's churn hooks: departures leave
/// the shared directory (picked deterministically from the live set),
/// arrivals are freshly minted hosts with fresh bundles.
#[allow(clippy::too_many_arguments)]
fn apply_churn_tick(
    tier: &mut ShardedController,
    schedule: &mut ChurnSchedule,
    signer: &KeyPair,
    live: &mut Vec<(Ipv4Addr, bool)>,
    departed: &mut Vec<Ipv4Addr>,
    next_index: &mut usize,
    arrivals: usize,
    departures: usize,
) -> (usize, usize) {
    let mut left = 0;
    for _ in 0..departures {
        // Keep the population comfortably above the hot set so locality
        // keeps meaning something even under a departure-heavy plan.
        if live.len() <= HOT_SOURCES * 2 {
            break;
        }
        let victim = schedule.pick(live.len());
        let (addr, _) = live.swap_remove(victim);
        assert!(
            tier.unregister_daemon(addr),
            "E11 churn: departing daemon {addr} was not registered"
        );
        departed.push(addr);
        left += 1;
    }
    if departed.len() > DEPARTED_DST_EVERY as usize {
        let excess = departed.len() - DEPARTED_DST_EVERY as usize;
        departed.drain(..excess);
    }
    let mut joined = 0;
    for _ in 0..arrivals {
        let (daemon, addr, imposter) = mint_daemon(signer, *next_index);
        *next_index += 1;
        live.push((addr, imposter));
        tier.register_daemon(daemon);
        joined += 1;
    }
    (joined, left)
}

/// Runs one open-loop cell. Panics when a harness invariant breaks (a
/// forged bundle passes, a flow is dropped, the tier cannot hold ≥ half the
/// offered rate).
pub fn run_cell(config: &E11Config) -> E11Cell {
    assert!(config.rate_per_sec > 0.0 && config.shards > 0 && config.daemons > HOT_SOURCES);
    let signer = KeyPair::from_seed(b"Secur");
    let (mut tier, mut live) = e11_tier(&signer, config);
    let mut schedule = config.churn.as_ref().map(ChurnPlan::schedule);

    let total = (config.rate_per_sec * config.duration.as_secs_f64()).round() as usize;
    let ns_per_arrival = (1e9 / config.rate_per_sec) as u64;
    let scheduled_at = |i: usize| Duration::from_nanos(i as u64 * ns_per_arrival);

    // Peak-thread sampler: decide_batch's scoped shard threads only exist
    // while a batch is in flight, so the peak is observed from outside.
    let stop = Arc::new(AtomicBool::new(false));
    let peak_threads = Arc::new(AtomicUsize::new(process_threads()));
    let sampler = {
        let stop = Arc::clone(&stop);
        let peak = Arc::clone(&peak_threads);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                peak.fetch_max(process_threads(), Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let mut rng = config.seed | 1;
    let mut next_rand = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let mut latency = LogHistogram::new();
    let mut departed: Vec<Ipv4Addr> = Vec::new();
    let mut next_index = config.daemons;
    let mut arrivals = 0usize;
    let mut departures = 0usize;
    let mut passes = 0usize;
    let mut blocks = 0usize;
    let mut decided = 0usize;
    let mut chunk: Vec<FiveTuple> = Vec::with_capacity(E11_MAX_BATCH);
    let mut chunk_meta: Vec<(usize, bool)> = Vec::with_capacity(E11_MAX_BATCH);

    let started = Instant::now();
    let mut next = 0usize;
    while next < total {
        let now = started.elapsed();
        let now_micros = now.as_micros() as u64;
        if let Some(schedule) = schedule.as_mut() {
            for tick in schedule.ticks_until(now_micros) {
                let (joined, left) = apply_churn_tick(
                    &mut tier,
                    schedule,
                    &signer,
                    &mut live,
                    &mut departed,
                    &mut next_index,
                    tick.arrivals,
                    tick.departures,
                );
                arrivals += joined;
                departures += left;
            }
        }

        // Every flow whose scheduled arrival has passed is due, up to the
        // dispatch cap; each is generated against the population as of its
        // arrival.
        chunk.clear();
        chunk_meta.clear();
        while next < total && chunk.len() < E11_MAX_BATCH && scheduled_at(next) <= now {
            let hot = HOT_SOURCES.min(live.len());
            let (src, imposter) = if (next_rand() % 1_000) as f64 / 1_000.0 < config.locality {
                live[(next_rand() as usize) % hot]
            } else {
                live[(next_rand() as usize) % live.len()]
            };
            let dst = if !departed.is_empty() && next_rand() % DEPARTED_DST_EVERY == 0 {
                departed[(next_rand() as usize) % departed.len()]
            } else {
                let mut dst = live[(next_rand() as usize) % live.len()].0;
                if dst == src {
                    dst = live[(next_rand() as usize) % live.len()].0;
                }
                dst
            };
            let dst_port = if next_rand() % 2 == 0 { 80 } else { 443 };
            chunk.push(FiveTuple::tcp(
                src,
                40_000 + (next % 20_000) as u16,
                dst,
                dst_port,
            ));
            chunk_meta.push((next, imposter));
            next += 1;
        }

        if chunk.is_empty() {
            // Ahead of schedule: sleep toward the next arrival (bounded so
            // churn ticks stay timely).
            let until_next = scheduled_at(next).saturating_sub(started.elapsed());
            if !until_next.is_zero() {
                std::thread::sleep(until_next.min(Duration::from_millis(1)));
            }
            continue;
        }

        let decisions = tier.decide_batch(&chunk, now_micros);
        let completed = started.elapsed();
        assert_eq!(decisions.len(), chunk.len(), "E11: decisions dropped");
        for ((index, imposter), decision) in chunk_meta.iter().zip(&decisions) {
            latency.record(completed.saturating_sub(scheduled_at(*index)).as_micros() as u64);
            if decision.is_pass() {
                assert!(
                    !imposter,
                    "E11: forged bundle passed under load (flow {index})"
                );
                passes += 1;
            } else {
                blocks += 1;
            }
            decided += 1;
        }
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("thread sampler");

    assert_eq!(
        decided, total,
        "E11: offered {total} flows, decided {decided}"
    );
    let achieved_rate = total as f64 / elapsed.as_secs_f64();
    assert!(
        achieved_rate >= config.rate_per_sec * 0.5,
        "E11: tier did not sustain the offered rate \
         ({achieved_rate:.0}/s achieved vs {:.0}/s offered)",
        config.rate_per_sec
    );

    let verify = tier.verify_stats();
    let verify_hit_rate = verify.hits as f64 / (verify.hits + verify.misses).max(1) as f64;
    let fail_closed = tier
        .shards()
        .iter()
        .map(|shard| {
            shard
                .audit()
                .policy_notes()
                .iter()
                .filter(|note| note.category == "fail-closed")
                .count()
        })
        .sum();

    E11Cell {
        flows: total,
        elapsed,
        achieved_rate,
        passes,
        blocks,
        queries_per_flow: tier.total_queries() as f64 / total as f64,
        cache_hit_ratio: tier.cache_hit_ratio(),
        verify_hit_rate,
        forged_rejections: verify.forged,
        fail_closed,
        arrivals,
        departures,
        peak_rss_kb: peak_rss_kb(),
        peak_threads: peak_threads.load(Ordering::Relaxed),
        latency,
    }
}

/// Prints the E11 table — the same configuration with churn off and on —
/// and returns the bench rows for `BENCH_E11.json`.
///
/// Every cell asserts: no forged bundle passes, no flow is dropped, and the
/// achieved rate stays within 2× of the offered rate (open-loop lag bound,
/// generous for a loaded 1-vCPU CI box). The churn cell additionally
/// asserts daemons actually joined and left and that flows naming departed
/// hosts were denied fail-closed; the steady cell asserts zero fail-closed
/// denies. `smoke` shrinks the run from minutes to seconds for CI.
pub fn print_e11(smoke: bool) -> Vec<BenchRow> {
    // Rates are sized for the 1-vCPU CI container (verify-heavy decisions
    // cost ~0.5 ms there): 1000/s keeps smoke utilization near one-half so
    // the tail percentiles measure the tier, not a saturated core. The full
    // cells run the ROADMAP's minutes-long steady-state windows.
    let (daemons, rate, seconds, churn_interval_ms, churn_count) = if smoke {
        (1_024, 1_000.0, 4, 250, 4)
    } else {
        (2_048, 1_500.0, 150, 1_000, 8)
    };
    let base = E11Config {
        daemons,
        shards: 4,
        rate_per_sec: rate,
        duration: Duration::from_secs(seconds),
        locality: 0.8,
        churn: None,
        seed: 0xE11_5EED,
    };
    println!(
        "\n# E11: open-loop sustained load ({daemons} daemons, {} shards, {rate:.0} flows/s x {seconds}s per cell, hot set {HOT_SOURCES})",
        base.shards
    );
    println!(
        "{:>7} {:>8} {:>10} {:>8} {:>8} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9} {:>8}",
        "churn",
        "flows",
        "rate/s",
        "p50_us",
        "p99_us",
        "p999_us",
        "q/flow",
        "vhit",
        "failc",
        "arr",
        "dep",
        "rss_mb",
        "threads"
    );

    let mut rows = Vec::new();
    for churn_on in [false, true] {
        let mut config = base.clone();
        if churn_on {
            config.churn = Some(ChurnPlan::steady(
                churn_interval_ms * 1_000,
                churn_count,
                churn_count,
            ));
        }
        let cell = run_cell(&config);
        let label = if churn_on { "on" } else { "off" };
        if churn_on {
            assert!(cell.arrivals > 0, "E11 churn cell: no daemon ever arrived");
            assert!(cell.departures > 0, "E11 churn cell: no daemon ever left");
            assert!(
                cell.fail_closed > 0,
                "E11 churn cell: flows to departed hosts were never denied fail-closed"
            );
        } else {
            assert_eq!(
                cell.fail_closed, 0,
                "E11 steady cell: fail-closed denies without churn"
            );
            assert_eq!(cell.arrivals + cell.departures, 0);
        }
        assert!(cell.passes > 0 && cell.blocks > 0, "E11: degenerate mix");
        assert!(
            cell.forged_rejections > 0,
            "E11: forged bundles were never checked"
        );

        let (p50, p99, p999) = cell.latency.percentiles();
        println!(
            "{label:>7} {:>8} {:>10.0} {p50:>8} {p99:>8} {p999:>9} {:>6.2} {:>6.2} {:>6} {:>6} {:>6} {:>9.1} {:>8}",
            cell.flows,
            cell.achieved_rate,
            cell.queries_per_flow,
            cell.verify_hit_rate,
            cell.fail_closed,
            cell.arrivals,
            cell.departures,
            cell.peak_rss_kb as f64 / 1024.0,
            cell.peak_threads
        );
        rows.push(
            BenchRow::new()
                .with("experiment", "e11")
                .with("churn", label)
                .with("daemons", daemons)
                .with("shards", base.shards)
                .with("offered_rate_per_sec", rate)
                .with("duration_s", seconds)
                .with("flows", cell.flows)
                .with("achieved_rate_per_sec", cell.achieved_rate)
                .with("latency_p50_us", p50)
                .with("latency_p99_us", p99)
                .with("latency_p999_us", p999)
                .with("latency_max_us", cell.latency.max())
                .with("latency_mean_us", cell.latency.mean())
                .with("queries_per_flow", cell.queries_per_flow)
                .with("cache_hit_ratio", cell.cache_hit_ratio)
                .with("verify_hit_rate", cell.verify_hit_rate)
                .with("forged_rejections", cell.forged_rejections)
                .with("fail_closed", cell.fail_closed)
                .with("passes", cell.passes)
                .with("blocks", cell.blocks)
                .with("churn_arrivals", cell.arrivals)
                .with("churn_departures", cell.departures)
                .with("peak_rss_kb", cell.peak_rss_kb)
                .with("peak_threads", cell.peak_threads),
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature open-loop cell with aggressive churn: the invariants the
    /// full run asserts (nothing dropped, forged never passes, departures
    /// fail closed, histogram consistent) hold at test scale too.
    #[test]
    fn tiny_cell_upholds_run_invariants() {
        // The rate is modest on purpose: the test also runs in debug builds,
        // where a fresh ed25519 verify costs milliseconds, and the point here
        // is the invariants, not throughput (the scenarios binary measures
        // that in release).
        let config = E11Config {
            daemons: 192,
            shards: 2,
            rate_per_sec: 250.0,
            duration: Duration::from_millis(1_200),
            locality: 0.8,
            churn: Some(ChurnPlan::steady(100_000, 3, 3)),
            seed: 7,
        };
        let cell = run_cell(&config);
        assert_eq!(cell.flows, 300);
        assert_eq!(cell.latency.count(), 300);
        assert_eq!(cell.passes + cell.blocks, 300);
        assert!(cell.arrivals > 0 && cell.departures > 0);
        assert!(cell.fail_closed > 0, "departed hosts must fail closed");
        assert!(cell.forged_rejections > 0);
        let (p50, p99, p999) = cell.latency.percentiles();
        assert!(p50 <= p99 && p99 <= p999 && p999 <= cell.latency.max());
    }
}
