//! Mergeable log-bucketed latency histogram for the sustained-load harness.
//!
//! E11 records one latency sample per decision over minutes-long runs, so
//! the recorder must be O(1) per sample, fixed-size in memory, and mergeable
//! across load-generator segments (per-cell histograms sum into a run-wide
//! one). The classic answer is a log-linear layout (HdrHistogram's): values
//! below [`LINEAR_BUCKETS`] get exact unit buckets; above that, each
//! power-of-two octave is split into [`LINEAR_BUCKETS`] linear sub-buckets,
//! so every bucket's width is at most `1/LINEAR_BUCKETS` of its lower bound
//! and any reported quantile is within ~3.1% of the true sample.
//!
//! The histogram is unit-agnostic (it stores `u64`s); E11 records
//! microseconds. Merging is element-wise count addition, which makes it
//! insensitive to recording order — `tests/hist_props.rs` pins that, the
//! quantile error bound, and the empty/single-sample edges.

/// Sub-buckets per octave (and the size of the exact linear prefix). The
/// relative quantile error is bounded by `1/LINEAR_BUCKETS` ≈ 3.1%.
pub const LINEAR_BUCKETS: u64 = 32;

/// log2(LINEAR_BUCKETS): values below `1 << SUB_BITS` are bucketed exactly.
const SUB_BITS: u32 = LINEAR_BUCKETS.trailing_zeros();

/// Octaves above the linear prefix needed to cover the full `u64` domain:
/// the most significant bit ranges over `SUB_BITS..=63`.
const OCTAVES: usize = (64 - SUB_BITS as usize) + 1;

/// Total bucket count (linear prefix is octave 0).
const BUCKETS: usize = OCTAVES * LINEAR_BUCKETS as usize;

/// A fixed-geometry log-linear histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

/// The bucket index for `value`. Octave 0 is the exact prefix `[0,
/// LINEAR_BUCKETS)`; octave `o ≥ 1` covers `[2^(SUB_BITS+o-1),
/// 2^(SUB_BITS+o))` in `LINEAR_BUCKETS` equal slices.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = (value >> (octave - 1)) - LINEAR_BUCKETS;
    octave * LINEAR_BUCKETS as usize + sub as usize
}

/// The inclusive value range `[low, high]` a bucket covers.
fn bucket_bounds(index: usize) -> (u64, u64) {
    let octave = index as u64 / LINEAR_BUCKETS;
    let sub = index as u64 % LINEAR_BUCKETS;
    if octave == 0 {
        return (sub, sub);
    }
    let width = 1u64 << (octave - 1);
    let low = (LINEAR_BUCKETS + sub) << (octave - 1);
    (low, low + (width - 1))
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram in (element-wise count addition). The result
    /// is identical to having recorded both sample streams into one
    /// histogram, in any order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (exact); 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (exact); 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `[low, high]` bounds of the bucket holding the `q`-quantile
    /// sample (rank `ceil(q·count)`, clamped to `[1, count]`), tightened by
    /// the exact min/max. The true quantile lies inside the returned range,
    /// whose width is at most `low / LINEAR_BUCKETS`.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (low, high) = bucket_bounds(index);
                return (low.max(self.min), high.min(self.max));
            }
        }
        (self.max, self.max)
    }

    /// The `q`-quantile, reported as the upper bound of its bucket
    /// (conservative for tail percentiles); 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// Shorthand trio for reports: (p50, p99, p999).
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.value_at_quantile(0.50),
            self.value_at_quantile(0.99),
            self.value_at_quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_prefix_is_exact() {
        for v in 0..LINEAR_BUCKETS {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert_eq!((low, high), (v, v));
        }
    }

    #[test]
    fn buckets_partition_the_domain() {
        // Consecutive buckets tile the value domain with no gap or overlap,
        // and every probed value falls inside its own bucket's bounds.
        let mut expected_low = 0u64;
        for index in 0..BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(low, expected_low, "gap/overlap at bucket {index}");
            assert!(high >= low);
            if high == u64::MAX {
                break;
            }
            expected_low = high + 1;
        }
        for probe in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            1_000,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let (low, high) = bucket_bounds(bucket_index(probe));
            assert!(low <= probe && probe <= high, "{probe} outside its bucket");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for index in 0..BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert!(
                high - low <= low / LINEAR_BUCKETS,
                "bucket {index} wider than the error bound: [{low}, {high}]"
            );
        }
    }

    #[test]
    fn quantiles_on_a_known_stream() {
        let mut h = LogHistogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1_000);
        let p50 = h.value_at_quantile(0.50);
        // True p50 is 500; the estimate must sit within one bucket width.
        assert!((484..=516).contains(&p50), "p50 {p50}");
        assert_eq!(h.value_at_quantile(1.0), 1_000);
        assert_eq!(h.quantile_bounds(0.0).0, 1);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut combined = LogHistogram::new();
        for v in [3u64, 77, 900, 40_000, 1 << 40] {
            a.record(v);
            combined.record(v);
        }
        for v in [0u64, 5, 5, 123_456] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.counts, combined.counts);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        assert_eq!(a.mean(), combined.mean());
    }
}
