//! Benchmark crate: `benches/` holds the criterion measurements (pure
//! timing, no scenario tables); [`scenarios`] holds the shared fixtures and
//! the printable experiment tables consumed by the `scenarios` binary
//! (`cargo run --release -p identxx-bench --bin scenarios`). See
//! EXPERIMENTS.md for the experiment index.

pub mod e11;
pub mod hist;
pub mod report;
pub mod scenarios;
