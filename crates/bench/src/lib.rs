//! Benchmark-only crate: all content lives in `benches/`. See EXPERIMENTS.md for the experiment index.
