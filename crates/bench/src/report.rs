//! Machine-readable experiment output: `BENCH_<EXP>.json` files.
//!
//! The scenario binary's tables are human-readable and ephemeral; CI needs
//! the same numbers as artifacts so the perf trajectory is comparable
//! across PRs. Each experiment that opts in collects its cells as
//! [`BenchRow`]s and, when the binary runs with `--json`, writes them as a
//! JSON array of flat objects to `BENCH_<EXP>.json` in the working
//! directory. The encoder is deliberately tiny (string/number fields only,
//! no nesting) so the workspace stays free of a serde dependency.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// One field of a bench row.
#[derive(Debug, Clone)]
pub enum Value {
    /// A finite number (non-finite values are serialized as `null`).
    Num(f64),
    /// A string (escaped minimally: backslash, quote, control characters).
    Str(String),
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Num(v as f64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

/// One experiment cell: ordered `(key, value)` pairs.
#[derive(Debug, Clone, Default)]
pub struct BenchRow {
    fields: Vec<(&'static str, Value)>,
}

impl BenchRow {
    /// An empty row.
    pub fn new() -> BenchRow {
        BenchRow::default()
    }

    /// Appends a field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> BenchRow {
        self.fields.push((key, value.into()));
        self
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes rows as a JSON array of flat objects.
pub fn to_json(rows: &[BenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        for (j, (key, value)) in row.fields.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            escape(key, &mut out);
            out.push_str(": ");
            match value {
                Value::Num(n) if n.is_finite() => {
                    // Integral values print without a fraction so the files
                    // diff cleanly across runs.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                }
                Value::Num(_) => out.push_str("null"),
                Value::Str(s) => escape(s, &mut out),
            }
        }
        out.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    out.push_str("]\n");
    out
}

/// Writes `BENCH_<EXP>.json` (experiment name upper-cased) in the current
/// directory and returns its path.
pub fn write_bench_json(experiment: &str, rows: &[BenchRow]) -> io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{}.json", experiment.to_uppercase()));
    std::fs::write(&path, to_json(rows))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize_flat_and_escaped() {
        let rows = vec![
            BenchRow::new()
                .with("experiment", "e9")
                .with("shards", 4usize)
                .with("decisions_per_sec", 15396.25),
            BenchRow::new().with("note", "quote\" and\\ctrl\u{1}"),
        ];
        let json = to_json(&rows);
        assert!(json.contains("\"experiment\": \"e9\""));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"decisions_per_sec\": 15396.25"));
        assert!(json.contains("\\\" and\\\\ctrl\\u0001"));
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        // Exactly one comma between the two objects.
        assert_eq!(json.matches("},").count(), 1);
    }
}
