//! Machine-readable experiment output: `BENCH_<EXP>.json` files.
//!
//! The scenario binary's tables are human-readable and ephemeral; CI needs
//! the same numbers as artifacts so the perf trajectory is comparable
//! across PRs. Each experiment that opts in collects its cells as
//! [`BenchRow`]s and, when the binary runs with `--json`, writes them as a
//! JSON array of flat objects to `BENCH_<EXP>.json` in the working
//! directory. The encoder is deliberately tiny (string/number fields only,
//! no nesting) so the workspace stays free of a serde dependency.
//!
//! Every written file carries a trailing **environment row** (marked
//! `"row": "environment"`) recording the machine the numbers came from —
//! available cores, the effective `IDENTXX_WORKERS`/`IDENTXX_SHARDS`/
//! `IDENTXX_RUNTIME` knobs — so when the CI container ever grows past one
//! vCPU, the long-awaited multi-core E9/E10 rows are attributable without
//! archaeology. Artifact consumers should filter on the marker.
//!
//! [`parse_json`] is the matching decoder: [`write_bench_json`] re-reads
//! and re-encodes what it wrote and fails loudly unless the bytes round-trip
//! exactly, so a schema regression in *any* emitted report breaks the CI
//! smoke step that produced it.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// One field of a bench row.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A finite number (non-finite values are serialized as `null`).
    Num(f64),
    /// A string (escaped minimally: backslash, quote, control characters).
    Str(String),
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Num(v as f64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

/// One experiment cell: ordered `(key, value)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchRow {
    fields: Vec<(String, Value)>,
}

impl BenchRow {
    /// An empty row.
    pub fn new() -> BenchRow {
        BenchRow::default()
    }

    /// Appends a field (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> BenchRow {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// The row's fields, in serialization order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// The value of the first field named `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// The environment row every written report ends with: which machine and
/// knob configuration produced these numbers.
pub fn environment_row() -> BenchRow {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Mirrors the runtime's worker-count rule (IDENTXX_WORKERS, else
    // max(2, parallelism)) so the recorded value is the effective one.
    let workers = std::env::var("IDENTXX_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n >= 1)
        .unwrap_or_else(|| cores.max(2));
    let shards = std::env::var("IDENTXX_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let runtime = std::env::var("IDENTXX_RUNTIME").unwrap_or_else(|_| "reactor".to_string());
    BenchRow::new()
        .with("row", "environment")
        .with("available_cores", cores)
        .with("identxx_workers", workers)
        .with("identxx_shards", shards)
        .with("identxx_runtime", runtime.as_str())
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes rows as a JSON array of flat objects.
pub fn to_json(rows: &[BenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        for (j, (key, value)) in row.fields.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            escape(key, &mut out);
            out.push_str(": ");
            match value {
                Value::Num(n) if n.is_finite() => {
                    // Integral values print without a fraction so the files
                    // diff cleanly across runs.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                }
                Value::Num(_) => out.push_str("null"),
                Value::Str(s) => escape(s, &mut out),
            }
        }
        out.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    out.push_str("]\n");
    out
}

/// Parses what [`to_json`] writes: a JSON array of flat objects whose
/// values are strings, numbers, or `null` (decoded as a non-finite
/// [`Value::Num`], which re-encodes as `null`). Exists so the emitted
/// artifacts have an in-tree consumer that pins the schema; it is not a
/// general JSON parser (no nesting, no booleans).
pub fn parse_json(text: &str) -> Result<Vec<BenchRow>, String> {
    let mut chars = text.char_indices().peekable();
    let mut rows = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
    }
    fn expect(
        chars: &mut std::iter::Peekable<std::str::CharIndices>,
        want: char,
    ) -> Result<(), String> {
        skip_ws(chars);
        match chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((at, c)) => Err(format!("expected {want:?} at byte {at}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of input")),
        }
    }
    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices>,
    ) -> Result<String, String> {
        expect(chars, '"')?;
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (at, c) = chars.next().ok_or("truncated \\u escape".to_string())?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or(format!("bad hex digit {c:?} at byte {at}"))?;
                        }
                        out.push(char::from_u32(code).ok_or(format!("bad codepoint {code:#x}"))?);
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    expect(&mut chars, '[')?;
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, ']'))) {
        chars.next();
        return Ok(rows);
    }
    loop {
        expect(&mut chars, '{')?;
        let mut row = BenchRow::new();
        skip_ws(&mut chars);
        if matches!(chars.peek(), Some((_, '}'))) {
            chars.next();
        } else {
            loop {
                skip_ws(&mut chars);
                let key = parse_string(&mut chars)?;
                expect(&mut chars, ':')?;
                skip_ws(&mut chars);
                let value = match chars.peek() {
                    Some((_, '"')) => Value::Str(parse_string(&mut chars)?),
                    Some((_, 'n')) => {
                        for want in "null".chars() {
                            match chars.next() {
                                Some((_, c)) if c == want => {}
                                other => return Err(format!("bad literal near {other:?}")),
                            }
                        }
                        Value::Num(f64::NAN)
                    }
                    Some((at, _)) => {
                        let start = *at;
                        let mut end = start;
                        while matches!(
                            chars.peek(),
                            Some((_, c)) if c.is_ascii_digit()
                                || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                        ) {
                            end = chars.next().map(|(at, c)| at + c.len_utf8()).unwrap_or(end);
                        }
                        let raw = &text[start..end];
                        Value::Num(
                            raw.parse::<f64>()
                                .map_err(|_| format!("bad number {raw:?} at byte {start}"))?,
                        )
                    }
                    None => return Err("truncated value".to_string()),
                };
                row.fields.push((key, value));
                skip_ws(&mut chars);
                match chars.next() {
                    Some((_, ',')) => continue,
                    Some((_, '}')) => break,
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        rows.push(row);
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, ']')) => break,
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
    Ok(rows)
}

/// Writes `BENCH_<EXP>.json` (experiment name upper-cased, environment row
/// appended) in the current directory and returns its path.
///
/// The written bytes are parsed back and re-encoded before returning; a
/// mismatch — any value the schema cannot round-trip — is an
/// `InvalidData` error, so every report CI uploads has survived the
/// decoder it will be read with.
pub fn write_bench_json(experiment: &str, rows: &[BenchRow]) -> io::Result<PathBuf> {
    let mut rows = rows.to_vec();
    rows.push(environment_row());
    let path = PathBuf::from(format!("BENCH_{}.json", experiment.to_uppercase()));
    let encoded = to_json(&rows);
    std::fs::write(&path, &encoded)?;
    let reread = std::fs::read_to_string(&path)?;
    let decoded =
        parse_json(&reread).map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
    if to_json(&decoded) != encoded {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} does not round-trip through parse_json", path.display()),
        ));
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize_flat_and_escaped() {
        let rows = vec![
            BenchRow::new()
                .with("experiment", "e9")
                .with("shards", 4usize)
                .with("decisions_per_sec", 15396.25),
            BenchRow::new().with("note", "quote\" and\\ctrl\u{1}"),
        ];
        let json = to_json(&rows);
        assert!(json.contains("\"experiment\": \"e9\""));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"decisions_per_sec\": 15396.25"));
        assert!(json.contains("\\\" and\\\\ctrl\\u0001"));
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        // Exactly one comma between the two objects.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn environment_row_records_the_knobs() {
        let row = environment_row();
        assert_eq!(row.get("row"), Some(&Value::Str("environment".into())));
        for key in ["available_cores", "identxx_workers", "identxx_shards"] {
            match row.get(key) {
                Some(Value::Num(n)) => assert!(n.is_finite() && *n >= 0.0, "{key}"),
                other => panic!("{key} missing or non-numeric: {other:?}"),
            }
        }
        assert!(matches!(row.get("identxx_runtime"), Some(Value::Str(_))));
    }

    /// One representative row per experiment schema the binary emits,
    /// round-tripped through the parser: encode → decode → encode must be a
    /// fixed point, and the decoded rows must equal the originals.
    #[test]
    fn every_report_schema_round_trips() {
        let samples = vec![
            BenchRow::new()
                .with("experiment", "e8b")
                .with("shards", 4usize)
                .with("locality", 0.9)
                .with("cache_hit_ratio", 0.7231)
                .with("queries_per_flow", 0.42),
            BenchRow::new()
                .with("experiment", "e9")
                .with("shards", 8usize)
                .with("batch", 32usize)
                .with("decisions_per_sec", 22412.7),
            BenchRow::new()
                .with("experiment", "e10")
                .with("runtime", "reactor")
                .with("lanes", 4usize)
                .with("daemons", 64usize)
                .with("peak_threads", 9usize),
            BenchRow::new()
                .with("experiment", "e12")
                .with("drill", "partition")
                .with("fail_closed", 37usize)
                .with("round_p99_ms", 12.75),
            BenchRow::new()
                .with("experiment", "e13")
                .with("lifetime", "long")
                .with("hit_rate", 0.94)
                .with("cost_ratio", 1.31),
            BenchRow::new()
                .with("experiment", "e11")
                .with("churn", "on")
                .with("latency_p999_us", 4_200u64)
                .with("achieved_rate_per_sec", 1999.2)
                .with("not_a_number", f64::NAN),
            environment_row(),
        ];
        let encoded = to_json(&samples);
        let decoded = parse_json(&encoded).expect("parse what we wrote");
        assert_eq!(to_json(&decoded), encoded, "encode→decode→encode moved");
        // NaN decodes as NaN (both encode as null) — compare everything
        // else structurally.
        for (row, parsed) in samples.iter().zip(&decoded) {
            assert_eq!(row.fields().len(), parsed.fields().len());
            for ((k1, v1), (k2, v2)) in row.fields().iter().zip(parsed.fields()) {
                assert_eq!(k1, k2);
                match (v1, v2) {
                    (Value::Num(a), Value::Num(b)) if !a.is_finite() => {
                        assert!(!b.is_finite())
                    }
                    _ => assert_eq!(v1, v2),
                }
            }
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "[",
            "[{]",
            "[{\"k\": }]",
            "[{\"k\": 1} {\"k\": 2}]",
            "[{\"k\": tru}]",
            "[{\"k\": \"unterminated}]",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(parse_json("[]").unwrap(), Vec::<BenchRow>::new());
    }
}
