//! Scenario fixtures and printable experiment tables.
//!
//! The criterion benches under `benches/` used to print the E1/E6/E7/E8a/E8b
//! scenario tables as a side effect, which made `cargo bench` part
//! measurement, part report. The fixtures now live here, shared by two
//! consumers:
//!
//! * the `scenarios` binary (`cargo run --release -p identxx-bench --bin
//!   scenarios [e1|e6|e7|e8a|e8b|e9|e10|all]`, `--json` for
//!   `BENCH_<exp>.json` rows) prints the tables,
//! * the benches reuse the same fixtures for pure measurement.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::report::BenchRow;
use identxx_baselines::common::IntentScore;
use identxx_baselines::{
    DistributedFirewall, EthaneController, EthanePolicy, FlowClassifier, VanillaFirewall,
};
use identxx_controller::{
    BreakerConfig, ControllerConfig, IdentxxController, NetworkBackend, QueryBackend,
    RecordingBackend, ShardedController,
};
use identxx_core::{firefox_app, EnterpriseNetwork};
use identxx_crypto::{sign_bundle_windowed, KeyPair};
use identxx_daemon::{Daemon, FaultInjector, FaultPlan, Window};
use identxx_hostmodel::{Executable, Host};
use identxx_net::DaemonServer;
use identxx_netsim::workload::{WorkloadConfig, WorkloadGenerator};
use identxx_pf::{parse_ruleset, CacheGranularity, CompiledPolicy, Decision, EvalContext};
use identxx_proto::{FiveTuple, Ipv4Addr, Response, Section};

// ---------------------------------------------------------------------------
// E1: flow-setup latency vs path length
// ---------------------------------------------------------------------------

/// The default single-rule policy used by the flow-setup experiment.
pub fn flow_setup_policy() -> ControllerConfig {
    ControllerConfig::new().with_control_file(
        "00.control",
        "block all\npass all with eq(@src[name], firefox) keep state\n",
    )
}

/// A chain network of `switches` switches with one firefox flow staged.
pub fn flow_setup_network(switches: usize) -> (EnterpriseNetwork, FiveTuple) {
    let mut net = EnterpriseNetwork::chain(switches, flow_setup_policy()).unwrap();
    let client = Ipv4Addr::new(10, 0, 0, 1);
    let server = Ipv4Addr::new(10, 0, 1, 1);
    let flow = net.start_app(client, server, 80, "alice", firefox_app());
    (net, flow)
}

/// Prints the E1 table: simulated flow-setup latency vs path length (the
/// Fig. 1 sequence).
pub fn print_e1() {
    println!("\n# E1: simulated flow-setup latency vs path length (Fig. 1 sequence)");
    println!(
        "{:>8} {:>16} {:>16} {:>10} {:>8} {:>8}",
        "switches", "setup_us(sim)", "cached_us(sim)", "overhead", "ident", "openflow"
    );
    for switches in [1usize, 2, 4, 8, 16] {
        let (mut net, flow) = flow_setup_network(switches);
        let report = net.simulate_flow_setup(&flow).unwrap();
        println!(
            "{:>8} {:>16} {:>16} {:>10.1} {:>8} {:>8}",
            switches,
            report.setup_latency_us,
            report.cached_latency_us,
            report.setup_overhead(),
            report.ident_exchanges,
            report.openflow_messages
        );
    }
}

// ---------------------------------------------------------------------------
// E6: compromise blast radius
// ---------------------------------------------------------------------------

const SENSITIVE_PORT: u16 = 445;

/// ident++ policy for E6: only the backup application run by the system user
/// may reach the file service.
const BLAST_POLICY: &str = "\
block all
pass all with eq(@src[userID], system) with eq(@src[name], backupd) with eq(@dst[name], Server) keep state
";

/// Builds the E6 star network with the file service on every host.
pub fn blast_network(hosts: usize) -> EnterpriseNetwork {
    let mut net = EnterpriseNetwork::star_with_config(
        hosts,
        ControllerConfig::new().with_control_file("00.control", BLAST_POLICY),
    )
    .unwrap();
    let server_exe = Executable::new(
        "/win/services.exe",
        "Server",
        6,
        "microsoft",
        "file-service",
    );
    for addr in net.host_addrs() {
        net.run_service(addr, "system", server_exe.clone(), SENSITIVE_PORT);
    }
    net
}

/// Counts how many victims the attacker at `attacker` can reach on the
/// sensitive port.
pub fn identxx_blast_radius(net: &mut EnterpriseNetwork, attacker: Ipv4Addr) -> usize {
    let malware = Executable::new("/tmp/conficker", "conficker", 1, "unknown", "worm");
    let victims: Vec<Ipv4Addr> = net
        .host_addrs()
        .into_iter()
        .filter(|a| *a != attacker)
        .collect();
    let mut reached = 0;
    for (i, victim) in victims.iter().enumerate() {
        let flow = {
            match net.daemon_mut(attacker) {
                Some(mut daemon) => daemon.host_mut().open_connection(
                    "mallory",
                    malware.clone(),
                    48000 + i as u16,
                    *victim,
                    SENSITIVE_PORT,
                ),
                None => FiveTuple::tcp(attacker, 48000 + i as u16, *victim, SENSITIVE_PORT),
            }
        };
        if net.decide(&flow).is_pass() {
            reached += 1;
        }
    }
    reached
}

/// Prints the E6 table: blast radius per compromise scenario, ident++ vs the
/// distributed-firewall baseline.
pub fn print_e6() {
    let host_count = 20;
    let total_victims = host_count - 1;
    println!("\n# E6: blast radius after compromise (victims reachable on port {SENSITIVE_PORT}, out of {total_victims})");
    println!(
        "{:<42} {:>10} {:>14}",
        "scenario", "ident++", "distributed-fw"
    );

    // Distributed firewall baseline: every host enforces "only port 22 from
    // anywhere" (i.e. the sensitive port is closed); a compromised receiver
    // stops enforcing.
    let build_dfw = |compromised: &[Ipv4Addr]| {
        let mut dfw = DistributedFirewall::new();
        let net = blast_network(host_count);
        for addr in net.host_addrs() {
            dfw.manage_host(addr, &[22]);
        }
        for addr in compromised {
            dfw.set_compromised(*addr, true);
        }
        dfw
    };
    let dfw_radius = |dfw: &mut DistributedFirewall, attacker: Ipv4Addr, hosts: &[Ipv4Addr]| {
        hosts
            .iter()
            .filter(|v| **v != attacker)
            .filter(|v| dfw.allow(&FiveTuple::tcp(attacker, 48000, **v, SENSITIVE_PORT)))
            .count()
    };

    // Scenario 1: no compromise.
    let mut net = blast_network(host_count);
    let hosts = net.host_addrs();
    let attacker = hosts[0];
    let mut dfw = build_dfw(&[]);
    println!(
        "{:<42} {:>10} {:>14}",
        "baseline (no compromise)",
        identxx_blast_radius(&mut net, attacker),
        dfw_radius(&mut dfw, attacker, &hosts)
    );

    // Scenario 2: one end-host compromised (attacker's own machine, daemon
    // forges responses claiming to be the backup service).
    let mut net = blast_network(host_count);
    net.daemon_mut(attacker)
        .unwrap()
        .set_forged_response(Some(vec![
            ("userID".to_string(), "system".to_string()),
            ("name".to_string(), "backupd".to_string()),
        ]));
    let mut dfw = build_dfw(&[attacker]);
    println!(
        "{:<42} {:>10} {:>14}",
        "attacker's end-host compromised",
        identxx_blast_radius(&mut net, attacker),
        dfw_radius(&mut dfw, attacker, &hosts)
    );

    // Scenario 3: one *other* end-host (a victim) compromised. Under the
    // distributed firewall that victim is now wide open; under ident++ the
    // network still blocks the attacker's flows to everyone.
    let victim = hosts[1];
    let mut net = blast_network(host_count);
    net.daemon_mut(victim)
        .unwrap()
        .set_forged_response(Some(vec![("name".to_string(), "Server".to_string())]));
    let mut dfw = build_dfw(&[victim]);
    println!(
        "{:<42} {:>10} {:>14}",
        "one victim end-host compromised",
        identxx_blast_radius(&mut net, attacker),
        dfw_radius(&mut dfw, attacker, &hosts)
    );

    // Scenario 4: a switch is compromised (ident++/OpenFlow): the single
    // switch in the star stops enforcing — everything behind it is reachable,
    // matching §5.2's "compromising a single ident++-enabled switch can
    // disable the protection it affords".
    let mut net = blast_network(host_count);
    let switch_ids: Vec<_> = net.switches().keys().copied().collect();
    for id in switch_ids {
        net.switch_mut(id).unwrap().set_compromised(true);
    }
    let data_plane_reached = {
        let hosts = net.host_addrs();
        let malware = Executable::new("/tmp/conficker", "conficker", 1, "unknown", "worm");
        let mut reached = 0;
        for (i, victim) in hosts.iter().skip(1).enumerate() {
            let flow = net
                .daemon_mut(attacker)
                .unwrap()
                .host_mut()
                .open_connection(
                    "mallory",
                    malware.clone(),
                    52000 + i as u16,
                    *victim,
                    SENSITIVE_PORT,
                );
            if net.deliver_first_packet(&flow, 0).delivered {
                reached += 1;
            }
        }
        reached
    };
    let mut dfw = build_dfw(&[]); // distributed firewalls do not depend on switches
    println!(
        "{:<42} {:>10} {:>14}",
        "switch compromised (data plane)",
        data_plane_reached,
        dfw_radius(&mut dfw, attacker, &hosts)
    );

    // Scenario 5: the controller itself is compromised — total loss, as §5.1
    // concedes.
    let mut net = blast_network(host_count);
    net.controller_mut().set_compromised(true);
    let mut dfw = build_dfw(&[]);
    println!(
        "{:<42} {:>10} {:>14}",
        "controller compromised",
        identxx_blast_radius(&mut net, attacker),
        dfw_radius(&mut dfw, attacker, &hosts)
    );
}

// ---------------------------------------------------------------------------
// E7: expressiveness / collateral damage
// ---------------------------------------------------------------------------

/// The administrator's intent, expressed in ident++ terms: allow known-good
/// applications (current skype, browsers, mail, ssh, Server, research-app),
/// block old skype and unknown applications. Shared by the E7
/// (expressiveness) and E8b (query overhead) experiments, which run the same
/// enterprise workload against the same policy.
const ALLOW_KNOWN_APPS_POLICY: &str = "\
block all
pass all with eq(@src[name], firefox) keep state
pass all with eq(@src[name], skype) with gte(@src[version], 200) keep state
pass all with eq(@src[name], thunderbird) keep state
pass all with eq(@src[name], ssh) keep state
pass all with eq(@src[name], Server) keep state
pass all with eq(@src[name], research-app) keep state
";

/// Runs the annotated workload through ident++, a vanilla port firewall, and
/// an Ethane-style controller, scoring each against the administrator's
/// intent.
pub fn run_expressiveness_comparison(flow_count: usize, seed: u64) -> Vec<(String, IntentScore)> {
    let mut net = EnterpriseNetwork::star_with_config(
        20,
        ControllerConfig::new().with_control_file("00.control", ALLOW_KNOWN_APPS_POLICY),
    )
    .unwrap();
    let hosts = net.host_addrs();
    let workload =
        WorkloadGenerator::new(WorkloadConfig::enterprise(hosts.clone(), flow_count, seed))
            .generate();

    // Baselines: the port firewall allows the ports the good applications
    // need; Ethane binds every host to the "employees" group and allows
    // employee traffic on those same ports.
    let mut vanilla = VanillaFirewall::enterprise_default(Ipv4Addr::new(10, 0, 0, 0), 16);
    vanilla.add_rule(identxx_baselines::PortRule::allow_port(7000)); // research app port
    let mut ethane = EthaneController::new();
    for addr in &hosts {
        ethane.bind(*addr, format!("host-{addr}"), "employees");
    }
    for port in [80u16, 443, 25, 22, 445, 7000] {
        ethane.add_rule(EthanePolicy {
            src_group: Some("employees".into()),
            dst_group: Some("employees".into()),
            dst_port: Some(port),
            allow: true,
        });
    }

    let mut identxx_score = IntentScore::default();
    let mut vanilla_score = IntentScore::default();
    let mut ethane_score = IntentScore::default();

    for flow in &workload {
        // Stage the real application on the source host so the daemon reports
        // the truth.
        let exe = Executable::new(
            format!("/usr/bin/{}", flow.app.name),
            flow.app.name.replace("-old", ""),
            flow.app.version,
            "vendor",
            &flow.app.app_type,
        );
        {
            let mut daemon = net.daemon_mut(flow.five_tuple.src_ip).unwrap();
            let pid = daemon.host_mut().spawn(&flow.user, exe);
            daemon.host_mut().connect_flow(pid, flow.five_tuple);
        }
        let decision = net.decide(&flow.five_tuple).verdict.decision.is_pass();
        identxx_score.record(flow.app.intended_allowed, decision);
        vanilla_score.record(flow.app.intended_allowed, vanilla.allow(&flow.five_tuple));
        ethane_score.record(flow.app.intended_allowed, ethane.allow(&flow.five_tuple));
    }

    vec![
        ("ident++".to_string(), identxx_score),
        ("vanilla-firewall".to_string(), vanilla_score),
        ("ethane".to_string(), ethane_score),
    ]
}

/// Prints the E7 table: decisions vs administrator intent.
pub fn print_e7() {
    println!("\n# E7: decisions vs administrator intent (1000 flows, enterprise mix)");
    println!(
        "{:<18} {:>10} {:>14} {:>14}",
        "mechanism", "accuracy", "false-allow", "false-block"
    );
    for (name, score) in run_expressiveness_comparison(1_000, 7) {
        println!(
            "{:<18} {:>9.1}% {:>13.1}% {:>13.1}%",
            name,
            score.accuracy() * 100.0,
            score.false_allow_rate() * 100.0,
            score.false_block_rate() * 100.0
        );
    }
}

// ---------------------------------------------------------------------------
// E8a: policy scaling
// ---------------------------------------------------------------------------

/// Builds a policy with `n` non-matching application rules followed by one
/// matching rule. With `quick` the matching rule ends evaluation early when
/// it is placed first instead.
pub fn scaling_policy(n: usize, quick_first: bool) -> String {
    let mut policy = String::from("block all\n");
    if quick_first {
        policy.push_str("pass quick all with eq(@src[name], firefox)\n");
    }
    for i in 0..n {
        policy.push_str(&format!("pass all with eq(@src[name], app-{i})\n"));
    }
    if !quick_first {
        policy.push_str("pass all with eq(@src[name], firefox)\n");
    }
    policy
}

/// The firefox src response (and an empty dst response) the scaling
/// experiment evaluates against.
pub fn scaling_responses(flow: FiveTuple) -> (Response, Response) {
    let mut src = Response::new(flow);
    let mut s = Section::new();
    s.push("name", "firefox");
    s.push("userID", "alice");
    src.push_section(s);
    (src, Response::new(flow))
}

/// Times `f` per call in microseconds: doubles the batch size until one
/// batch takes at least 10 ms, then reports the best of three batches at
/// that size (the minimum is robust against scheduler noise — identical
/// work measures identically).
fn time_per_call_us(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(10) {
            let mut best = elapsed.as_secs_f64() / iters as f64;
            for _ in 0..2 {
                let start = Instant::now();
                for _ in 0..iters {
                    f();
                }
                best = best.min(start.elapsed().as_secs_f64() / iters as f64);
            }
            return best * 1e6;
        }
        iters *= 2;
    }
}

/// Prints the E8a table — rules examined and decision cost vs policy size,
/// for the interpreter (last-match and `quick`), the linear compiled scan,
/// and the field-indexed matcher tree — and returns the cells as
/// [`BenchRow`]s for `BENCH_E8A.json`.
///
/// Asserts the tree's flat-cost claim: the per-decision tree cost at the
/// largest policy must stay within 2× of the 1 000-rule cost (the response-
/// literal hash dispatch hands the merge ~2 candidate rules no matter how
/// many `eq(@src[name], app-i)` rules the policy holds), while the linear
/// paths grow with the rule count.
pub fn print_e8a() -> Vec<BenchRow> {
    let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
    let (src, dst) = scaling_responses(flow);
    println!("\n# E8a: decision cost vs policy size (interpreter vs linear vs matcher tree)");
    println!(
        "{:>8} {:>11} {:>12} {:>11} {:>14} {:>11} {:>9} {:>12}",
        "rules",
        "eval(last)",
        "eval(quick)",
        "eval(tree)",
        "interpreted-us",
        "linear-us",
        "tree-us",
        "compile-us"
    );
    let mut rows = Vec::new();
    let mut tree_us_at_1k = None;
    for n in [10usize, 100, 1_000, 10_000, 100_000] {
        let last = parse_ruleset(&scaling_policy(n, false)).unwrap();
        let quick = parse_ruleset(&scaling_policy(n, true)).unwrap();
        let compile_start = Instant::now();
        let compiled = CompiledPolicy::compile(&last);
        let compile_us = compile_start.elapsed().as_secs_f64() * 1e6;
        let ctx_last = EvalContext::new(&last).with_responses(&src, &dst);
        let ctx_quick = EvalContext::new(&quick).with_responses(&src, &dst);
        let v_last = ctx_last.evaluate(&flow);
        let v_quick = ctx_quick.evaluate(&flow);
        let v_linear = compiled.evaluate_linear(&flow, Some(&src), Some(&dst));
        let v_tree = compiled.evaluate(&flow, Some(&src), Some(&dst));
        assert_eq!(v_last.decision, Decision::Pass);
        assert_eq!(v_quick.decision, Decision::Pass);
        assert_eq!(v_linear.decision, Decision::Pass);
        assert_eq!(v_tree.decision, Decision::Pass);
        let interpreted_us = time_per_call_us(|| {
            std::hint::black_box(ctx_last.evaluate(&flow));
        });
        let linear_us = time_per_call_us(|| {
            std::hint::black_box(compiled.evaluate_linear(&flow, Some(&src), Some(&dst)));
        });
        let tree_us = time_per_call_us(|| {
            std::hint::black_box(compiled.evaluate(&flow, Some(&src), Some(&dst)));
        });
        println!(
            "{:>8} {:>11} {:>12} {:>11} {:>14.3} {:>11.3} {:>9.3} {:>12.0}",
            n,
            v_last.rules_evaluated,
            v_quick.rules_evaluated,
            v_tree.rules_evaluated,
            interpreted_us,
            linear_us,
            tree_us,
            compile_us
        );
        if n == 1_000 {
            tree_us_at_1k = Some((tree_us, v_tree.rules_evaluated));
        }
        if let Some((base_us, base_rules)) = tree_us_at_1k {
            // The structural invariant first (exact, noise-free), then the
            // headline cost curve with the 2× acceptance margin.
            assert_eq!(
                v_tree.rules_evaluated, base_rules,
                "tree candidate count must not grow with policy size"
            );
            assert!(
                tree_us <= base_us * 2.0,
                "tree decision cost must stay flat: {tree_us:.3}us at {n} rules \
                 vs {base_us:.3}us at 1000 rules"
            );
        }
        rows.push(
            BenchRow::new()
                .with("rules", n)
                .with("evaluated_interpreted", v_last.rules_evaluated)
                .with("evaluated_quick", v_quick.rules_evaluated)
                .with("evaluated_linear", v_linear.rules_evaluated)
                .with("evaluated_tree", v_tree.rules_evaluated)
                .with("interpreted_us", interpreted_us)
                .with("linear_us", linear_us)
                .with("tree_us", tree_us)
                .with("compile_us", compile_us),
        );
    }
    rows
}

// ---------------------------------------------------------------------------
// E8b: query overhead vs workload locality
// ---------------------------------------------------------------------------

/// Runs `flow_count` flows at a given locality and returns
/// `(cache_hit_ratio, total_queries, flows)`.
///
/// The controller caches decisions at host-pair + service-port granularity
/// here: the enterprise workload opens every flow from a fresh ephemeral
/// source port, so an exact-5-tuple rule cache never hits (2.00
/// queries/flow at every locality — the failure mode this experiment used
/// to exhibit). With host-pair keys, locality warms the cache exactly as
/// the paper's "the controller may cache the rules and apply them to
/// future flows" (§3.4) intends.
pub fn run_query_workload(flow_count: usize, locality: f64, seed: u64) -> (f64, u64, usize) {
    run_query_workload_sharded(flow_count, locality, seed, 1)
}

/// [`run_query_workload`] over a decision tier of `shards` shards sharing
/// one daemon directory ([`identxx_controller::SharedDirectoryBackend`]):
/// the scenario-table shape of the sharded simulator path, selected by
/// `IDENTXX_SHARDS` in [`print_e8b`].
pub fn run_query_workload_sharded(
    flow_count: usize,
    locality: f64,
    seed: u64,
    shards: usize,
) -> (f64, u64, usize) {
    let mut net = EnterpriseNetwork::star_with_config_sharded(
        20,
        ControllerConfig::new()
            .with_control_file("00.control", ALLOW_KNOWN_APPS_POLICY)
            .with_cache_granularity(CacheGranularity::HostPairDstPort),
        shards,
    )
    .unwrap();
    let hosts = net.host_addrs();
    let mut config = WorkloadConfig::enterprise(hosts, flow_count, seed);
    config.locality = locality;
    let flows = WorkloadGenerator::new(config).generate();
    for flow in &flows {
        let exe = Executable::new(
            format!("/usr/bin/{}", flow.app.name),
            flow.app.name.replace("-old", ""),
            flow.app.version,
            "vendor",
            &flow.app.app_type,
        );
        {
            let mut daemon = net.daemon_mut(flow.five_tuple.src_ip).unwrap();
            let pid = daemon.host_mut().spawn(&flow.user, exe);
            daemon.host_mut().connect_flow(pid, flow.five_tuple);
        }
        net.decide(&flow.five_tuple);
    }
    (net.cache_hit_ratio(), net.total_queries(), flows.len())
}

/// Prints the E8b table: ident++ queries per flow vs workload locality.
/// With `IDENTXX_SHARDS=N` the same table runs over an N-shard decision
/// tier sharing one daemon directory — the scenario-table proof that the
/// simulator path shards (DESIGN.md §7). Returns the cells as bench rows.
pub fn print_e8b() -> Vec<BenchRow> {
    let shards = env_shards().unwrap_or(1);
    println!(
        "\n# E8b: ident++ queries per flow vs workload locality (2000 flows, {shards} shard{})",
        if shards == 1 { "" } else { "s" }
    );
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "locality", "cache-hit-ratio", "total queries", "queries/flow"
    );
    let mut rows = Vec::new();
    for locality in [0.0f64, 0.25, 0.5, 0.75, 0.9] {
        let (hit_ratio, queries, flows) = run_query_workload_sharded(2_000, locality, 13, shards);
        if shards > 1 {
            // The sharded tier must reproduce the single tier's aggregate
            // behaviour exactly: same audited queries, same hit ratio.
            let (single_hit, single_queries, _) = run_query_workload(2_000, locality, 13);
            assert_eq!(
                queries, single_queries,
                "sharded E8b diverged from the single-controller path at locality {locality}"
            );
            assert!((hit_ratio - single_hit).abs() < 1e-9);
        }
        println!(
            "{:>10.2} {:>15.1}% {:>16} {:>16.2}",
            locality,
            hit_ratio * 100.0,
            queries,
            queries as f64 / flows as f64
        );
        rows.push(
            BenchRow::new()
                .with("experiment", "e8b")
                .with("shards", shards)
                .with("locality", locality)
                .with("cache_hit_ratio", hit_ratio)
                .with("total_queries", queries)
                .with("queries_per_flow", queries as f64 / flows as f64),
        );
    }
    rows
}

/// The `IDENTXX_SHARDS` override, when set and valid.
///
/// # Panics
///
/// Panics when the variable is set but not a positive integer — a silent
/// fallback would quietly un-shard a CI smoke configuration.
pub fn env_shards() -> Option<usize> {
    std::env::var("IDENTXX_SHARDS").ok().map(|value| {
        value
            .parse::<usize>()
            .ok()
            .filter(|n| *n >= 1)
            .unwrap_or_else(|| panic!("IDENTXX_SHARDS must be a positive integer, got {value:?}"))
    })
}

// ---------------------------------------------------------------------------
// E9: sharded controller, batched query rounds
// ---------------------------------------------------------------------------

/// Hosts in the E9 enterprise: small enough that one batched round reaches
/// most daemons (exercising the per-host coalescing), large enough that the
/// host-pair router spreads work over 8 shards.
const E9_HOSTS: u8 = 16;

/// Artificial per-round-trip daemon processing delay (microseconds). The
/// sweep is deliberately **latency-bound**: a controller tier's time goes to
/// waiting on end-hosts, and the overlap that batching (one round trip per
/// host per round) and sharding (independent decision loops) buy is exactly
/// what the sweep should surface. A CPU-bound variant would measure the
/// container's core count instead.
const E9_DAEMON_DELAY_MICROS: u64 = 3_000;

fn e9_hosts() -> Vec<Ipv4Addr> {
    (1..=E9_HOSTS).map(|i| Ipv4Addr::new(10, 0, 0, i)).collect()
}

/// The E9 workload: `flow_count` enterprise flows over the E9 hosts, at
/// locality 0 (uniform host pairs). A hot host pair is pinned to one shard
/// by design — the router *must* colocate everything that can share a cache
/// entry — so a skewed workload measures the skew, not the tier; E8b is the
/// locality experiment.
pub fn sharding_workload(flow_count: usize, seed: u64) -> Vec<FiveTuple> {
    let mut config = WorkloadConfig::enterprise(e9_hosts(), flow_count, seed);
    config.locality = 0.0;
    WorkloadGenerator::new(config)
        .generate()
        .into_iter()
        .map(|flow| flow.five_tuple)
        .collect()
}

/// Starts one real TCP daemon per E9 host. Odd-numbered hosts forge a
/// firefox identity (their flows pass the allow-known-apps policy), even
/// ones forge an unknown application (blocked) — so the sweep's decision
/// stream is a genuine pass/block mix and the decision-identity assertion
/// in [`print_e9`] has teeth. Every daemon charges `delay_micros` of
/// processing per round trip.
pub fn start_e9_daemons(delay_micros: u64) -> Vec<(Ipv4Addr, DaemonServer)> {
    e9_hosts()
        .into_iter()
        .map(|addr| {
            let mut daemon = Daemon::bare(Host::new(format!("h{addr}"), addr));
            let app = if addr.0 % 2 == 1 {
                "firefox"
            } else {
                "unknownd"
            };
            daemon.set_forged_response(Some(vec![
                ("name".to_string(), app.to_string()),
                ("userID".to_string(), "alice".to_string()),
            ]));
            daemon.set_response_delay_micros(delay_micros);
            // The vendored runtime's `block_on` drives the (brief) async
            // bind; with real tokio this becomes `Runtime::block_on`.
            let server = tokio::runtime::block_on(DaemonServer::start(
                daemon,
                "127.0.0.1:0".parse().unwrap(),
            ))
            .expect("bind loopback daemon");
            (addr, server)
        })
        .collect()
}

/// Builds the sweep's controller tier: `shards` shards over the
/// allow-known-apps policy with host-pair+service-port cache keys, each
/// shard owning its own [`NetworkBackend`] (and thus its own connection
/// pool) over the same daemon endpoints.
pub fn sharded_controller_over(
    endpoints: &[(Ipv4Addr, SocketAddr)],
    shards: usize,
) -> ShardedController {
    let config = ControllerConfig::new()
        .with_control_file("00.control", ALLOW_KNOWN_APPS_POLICY)
        .with_cache_granularity(CacheGranularity::HostPairDstPort);
    ShardedController::new(config, shards)
        .expect("compile E9 policy")
        .with_backends(|_| {
            let mut backend = NetworkBackend::new();
            for (addr, endpoint) in endpoints {
                backend.register_endpoint(*addr, *endpoint);
            }
            Box::new(backend)
        })
}

/// Runs one sweep cell — `flows` decided in rounds of `batch` over
/// `shards` — returning (decisions/sec, queries/flow, decision stream).
pub fn run_sharding_cell(
    endpoints: &[(Ipv4Addr, SocketAddr)],
    shards: usize,
    batch: usize,
    flows: &[FiveTuple],
) -> (f64, f64, Vec<Decision>) {
    let mut controller = sharded_controller_over(endpoints, shards);
    let started = Instant::now();
    let decisions = controller.decide_stream(flows, batch, 0);
    let elapsed = started.elapsed().as_secs_f64();
    let decisions_per_sec = flows.len() as f64 / elapsed;
    let queries_per_flow = controller.total_queries() as f64 / flows.len() as f64;
    (
        decisions_per_sec,
        queries_per_flow,
        decisions.iter().map(|d| d.verdict.decision).collect(),
    )
}

/// Prints the E9 table: decisions/sec and queries/flow for shards ×
/// batch-size over real loopback TCP daemons, asserting along the way that
/// every sharded/batched configuration reproduces the single-controller
/// decision stream exactly. Returns the cells as bench rows.
pub fn print_e9(shard_counts: &[usize], flow_count: usize) -> Vec<BenchRow> {
    let flows = sharding_workload(flow_count, 11);
    let servers = start_e9_daemons(E9_DAEMON_DELAY_MICROS);
    let endpoints: Vec<(Ipv4Addr, SocketAddr)> = servers
        .iter()
        .map(|(addr, server)| (*addr, server.local_addr()))
        .collect();

    // The reference stream: one unsharded controller, one flow per round —
    // the exact pre-sharding decision path.
    let (_, _, baseline) = run_sharding_cell(&endpoints, 1, 1, &flows);

    println!(
        "\n# E9: sharded controller over TCP ({flow_count} flows, {E9_HOSTS} hosts, {E9_DAEMON_DELAY_MICROS} us/daemon round trip)"
    );
    println!(
        "{:>8} {:>8} {:>16} {:>14}",
        "shards", "batch", "decisions/sec", "queries/flow"
    );
    let mut rows = Vec::new();
    for &shards in shard_counts {
        for &batch in &[1usize, 8, 32] {
            let (dps, qpf, decisions) = run_sharding_cell(&endpoints, shards, batch, &flows);
            assert_eq!(
                decisions, baseline,
                "sharded ({shards}x batch {batch}) decisions diverge from the single-controller path"
            );
            println!("{shards:>8} {batch:>8} {dps:>16.0} {qpf:>14.2}");
            rows.push(
                BenchRow::new()
                    .with("experiment", "e9")
                    .with("shards", shards)
                    .with("batch", batch)
                    .with("flows", flow_count)
                    .with("decisions_per_sec", dps)
                    .with("queries_per_flow", qpf),
            );
        }
    }
    for (_, server) in servers {
        server.shutdown();
    }
    rows
}

// ---------------------------------------------------------------------------
// E10: reactor vs threaded runtime under connection fan-out
// ---------------------------------------------------------------------------

/// Artificial daemon processing delay for E10 (microseconds). Small on
/// purpose: E9 measures the latency-bound overlap story; E10 measures the
/// *runtime* — scheduling, wakeups, and per-connection cost — so the delay
/// only needs to be large enough that rounds genuinely interleave.
const E10_DAEMON_DELAY_MICROS: u64 = 300;

/// Query-round size for every E10 cell: the E9 ceiling row (batch 32) is
/// exactly the configuration the reactor is meant to multiply.
const E10_BATCH: usize = 32;

/// Current thread count of this process (from `/proc/self/status`); 0 when
/// unreadable (non-Linux), which disables the thread columns' meaning but
/// not the sweep.
pub fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("Threads:")
                    .and_then(|v| v.trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Starts `count` loopback daemons for the E10 sweep (same forged-identity
/// mix as E9 so the decision stream is a pass/block mix).
fn start_e10_daemons(count: usize) -> Vec<(Ipv4Addr, DaemonServer)> {
    (1..=count)
        .map(|i| {
            let addr = Ipv4Addr::new(10, 1, (i / 250) as u8, (i % 250) as u8 + 1);
            let mut daemon = Daemon::bare(Host::new(format!("h{addr}"), addr));
            let app = if i % 2 == 1 { "firefox" } else { "unknownd" };
            daemon.set_forged_response(Some(vec![
                ("name".to_string(), app.to_string()),
                ("userID".to_string(), "alice".to_string()),
            ]));
            daemon.set_response_delay_micros(E10_DAEMON_DELAY_MICROS);
            let server = tokio::runtime::block_on(DaemonServer::start(
                daemon,
                "127.0.0.1:0".parse().unwrap(),
            ))
            .expect("bind loopback daemon");
            (addr, server)
        })
        .collect()
}

/// One E10 cell: `lanes` independent controllers (each with its own
/// `NetworkBackend` connection pool over every daemon) decide their slice
/// of the workload in rounds of 32 (the E9 ceiling batch), concurrently. Returns
/// `(decisions/sec, queries/flow, peak process threads seen mid-run)`.
pub fn run_e10_cell(
    endpoints: &[(Ipv4Addr, SocketAddr)],
    lanes: usize,
    flows: &[FiveTuple],
) -> (f64, f64, usize) {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let config = ControllerConfig::new()
        .with_control_file("00.control", ALLOW_KNOWN_APPS_POLICY)
        .with_cache_granularity(CacheGranularity::HostPairDstPort);
    let mut controllers: Vec<_> = (0..lanes)
        .map(|_| {
            let mut backend = NetworkBackend::new();
            for (addr, endpoint) in endpoints {
                backend.register_endpoint(*addr, *endpoint);
            }
            identxx_controller::IdentxxController::new(config.clone())
                .expect("compile E10 policy")
                .with_backend(Box::new(backend))
        })
        .collect();

    let slice = flows.len().div_ceil(lanes);
    let done = AtomicBool::new(false);
    let peak_threads = AtomicUsize::new(process_threads());
    let started = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = controllers
            .iter_mut()
            .enumerate()
            .map(|(lane, controller)| {
                let work =
                    &flows[(lane * slice).min(flows.len())..((lane + 1) * slice).min(flows.len())];
                scope.spawn(move || {
                    for round in work.chunks(E10_BATCH) {
                        controller.decide_batch(round, 0);
                    }
                })
            })
            .collect();
        // Sampler: record the peak thread count while lanes are in flight;
        // stopped (and then joined by the scope) once every lane finished.
        let done = &done;
        let peak = &peak_threads;
        scope.spawn(move || {
            while !done.load(Ordering::Acquire) {
                peak.fetch_max(process_threads(), Ordering::AcqRel);
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        for handle in handles {
            handle.join().expect("E10 lane panicked");
        }
        done.store(true, Ordering::Release);
    });
    let elapsed = started.elapsed().as_secs_f64();
    let decisions_per_sec = flows.len() as f64 / elapsed;
    let total_queries: u64 = controllers.iter().map(|c| c.audit().total_queries()).sum();
    (
        decisions_per_sec,
        total_queries as f64 / flows.len() as f64,
        peak_threads.load(Ordering::Acquire),
    )
}

/// Prints the E10 table: the reactor runtime vs the thread-per-task
/// baseline (`IDENTXX_RUNTIME=threaded`) across daemon count × concurrent
/// lanes, all at the E9 ceiling round size (batch 32). The separation the
/// table exists to show: decisions/sec on the high-fan-out rows, and the
/// process thread count — O(workers) on the reactor, O(connections) on the
/// baseline. Returns the cells as bench rows.
///
/// `smoke` shrinks the sweep for CI (fewer daemons, fewer flows).
pub fn print_e10(smoke: bool) -> Vec<BenchRow> {
    let (daemon_counts, lane_counts, flow_count): (&[usize], &[usize], usize) = if smoke {
        (&[4, 32], &[1, 4], 512)
    } else {
        (&[4, 32, 128], &[1, 4], 1024)
    };
    println!(
        "\n# E10: reactor vs thread-per-task runtime (batch {E10_BATCH}, {E10_DAEMON_DELAY_MICROS} us/daemon, {flow_count} flows/cell)"
    );
    println!(
        "{:>10} {:>8} {:>6} {:>16} {:>14} {:>13}",
        "runtime", "daemons", "lanes", "decisions/sec", "queries/flow", "peak-threads"
    );
    let mut rows = Vec::new();
    let mut reactor_dps: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    let mut ratios: Vec<(usize, usize, f64)> = Vec::new();
    for mode in ["reactor", "threaded"] {
        if mode == "threaded" {
            std::env::set_var("IDENTXX_RUNTIME", "threaded");
        } else {
            std::env::remove_var("IDENTXX_RUNTIME");
        }
        for &daemons in daemon_counts {
            let servers = start_e10_daemons(daemons);
            let endpoints: Vec<(Ipv4Addr, SocketAddr)> = servers
                .iter()
                .map(|(addr, server)| (*addr, server.local_addr()))
                .collect();
            let hosts: Vec<Ipv4Addr> = endpoints.iter().map(|(a, _)| *a).collect();
            let mut config = WorkloadConfig::enterprise(hosts, flow_count, 17);
            config.locality = 0.0;
            let flows: Vec<FiveTuple> = WorkloadGenerator::new(config)
                .generate()
                .into_iter()
                .map(|flow| flow.five_tuple)
                .collect();
            for &lanes in lane_counts {
                let (dps, qpf, threads) = run_e10_cell(&endpoints, lanes, &flows);
                println!(
                    "{mode:>10} {daemons:>8} {lanes:>6} {dps:>16.0} {qpf:>14.2} {threads:>13}"
                );
                if mode == "reactor" {
                    reactor_dps.insert((daemons, lanes), dps);
                } else if let Some(reactor) = reactor_dps.get(&(daemons, lanes)) {
                    ratios.push((daemons, lanes, reactor / dps));
                }
                rows.push(
                    BenchRow::new()
                        .with("experiment", "e10")
                        .with("runtime", mode)
                        .with("daemons", daemons)
                        .with("lanes", lanes)
                        .with("batch", E10_BATCH)
                        .with("flows", flow_count)
                        .with("decisions_per_sec", dps)
                        .with("queries_per_flow", qpf)
                        .with("peak_threads", threads),
                );
            }
            for (_, server) in servers {
                server.shutdown();
            }
        }
    }
    std::env::remove_var("IDENTXX_RUNTIME");
    println!(
        "{:>10} {:>8} {:>6} {:>16}",
        "", "daemons", "lanes", "reactor/threaded"
    );
    for (daemons, lanes, ratio) in ratios {
        println!("{:>10} {daemons:>8} {lanes:>6} {ratio:>15.2}x", "ratio");
    }
    rows
}

// ---------------------------------------------------------------------------
// E12: failure drills — fail-closed decisions under injected faults
// ---------------------------------------------------------------------------

/// Per-round-trip daemon processing delay for E12 (microseconds). Small:
/// the drills measure *fault* latency (deadline misses, breaker fast-fails),
/// not healthy-path throughput — E9 owns that table.
const E12_DAEMON_DELAY_MICROS: u64 = 300;

/// Query-round size for every drill cell (the E9 ceiling batch).
const E12_BATCH: usize = 32;

/// The controller tier's per-round query budget. Short relative to a
/// brownout on purpose: a browned-out daemon (5 s extra) must blow it so the
/// drill exercises deadline-miss → breaker-open → fast-fail, and a faulted
/// round's cost is bounded by it instead of by the fault. But generous
/// relative to the healthy path (~ms on loopback): on a shared 1-vCPU CI
/// runner a scheduler stall must not fake a deadline miss in the cells that
/// assert *zero* fail-closed denies.
const E12_BUDGET: Duration = Duration::from_secs(2);

/// Extra processing delay a brownout inflicts (microseconds); ≫ the budget.
const E12_BROWNOUT_EXTRA_MICROS: u64 = 5_000_000;

/// Logical microseconds between drill rounds: the injector clock and the
/// controller's `now` advance by this much per batch, so fault windows are
/// expressed in whole rounds.
const E12_ROUND_MICROS: u64 = 1_000_000;

/// Shards in the drilled tier.
const E12_SHARDS: usize = 4;

/// Rounds allowed between a fault clearing and the tier provably matching
/// the unfaulted baseline again: enough for the breaker cooldown
/// (`E12_BREAKER.cooldown_rounds`) plus its half-open probe.
const E12_RECOVERY_SLACK_ROUNDS: usize = 5;

const E12_BREAKER: BreakerConfig = BreakerConfig {
    failure_threshold: 2,
    cooldown_rounds: 2,
};

/// Hard per-round wall-clock ceiling (milliseconds). Deliberately generous —
/// shared 1-vCPU CI runners stall — while still distinguishing "bounded by
/// the query budget" from "hung on a dead host": an unbounded wait would be
/// the 500 ms connect/read timeout times the flow count, orders of magnitude
/// past this.
const E12_ROUND_CEILING_MS: f64 = 10_000.0;

/// Starts the E9 daemon population with a drill [`FaultInjector`] attached,
/// so scripted silences, brownouts, and frame faults reach every daemon and
/// server choke point.
pub fn start_drill_daemons(injector: &Arc<FaultInjector>) -> Vec<(Ipv4Addr, DaemonServer)> {
    e9_hosts()
        .into_iter()
        .map(|addr| {
            let mut daemon = Daemon::bare(Host::new(format!("h{addr}"), addr));
            let app = if addr.0 % 2 == 1 {
                "firefox"
            } else {
                "unknownd"
            };
            daemon.set_forged_response(Some(vec![
                ("name".to_string(), app.to_string()),
                ("userID".to_string(), "alice".to_string()),
            ]));
            daemon.set_response_delay_micros(E12_DAEMON_DELAY_MICROS);
            daemon.set_fault_injector(Some(injector.clone()));
            let server = tokio::runtime::block_on(DaemonServer::start(
                daemon,
                "127.0.0.1:0".parse().unwrap(),
            ))
            .expect("bind loopback daemon");
            (addr, server)
        })
        .collect()
}

/// One drilled query backend: short budget, circuit breaker, and the cell's
/// injector (partitions are enforced controller-side).
fn drill_backend(
    endpoints: &[(Ipv4Addr, SocketAddr)],
    injector: &Arc<FaultInjector>,
) -> Box<dyn QueryBackend> {
    let mut backend = NetworkBackend::new()
        .with_budget(E12_BUDGET)
        .with_breaker(E12_BREAKER)
        .with_fault_injector(injector.clone());
    for (addr, endpoint) in endpoints {
        backend.register_endpoint(*addr, *endpoint);
    }
    Box::new(backend)
}

/// The drilled controller tier: fail-closed decisions over the E9 policy,
/// every shard wired to a drilled backend (short budget, breaker, injector).
pub fn drill_tier(
    endpoints: &[(Ipv4Addr, SocketAddr)],
    shards: usize,
    injector: &Arc<FaultInjector>,
) -> ShardedController {
    let config = ControllerConfig::new()
        .with_control_file("00.control", ALLOW_KNOWN_APPS_POLICY)
        .with_cache_granularity(CacheGranularity::HostPairDstPort)
        .with_fail_closed_on_unanswered();
    ShardedController::new(config, shards)
        .expect("compile E12 policy")
        .with_backends(|_| drill_backend(endpoints, injector))
}

/// What one drill run produced: the verdict stream, per-round wall-clock,
/// and the tier's final audit/state shape.
pub struct DrillRun {
    /// One verdict per flow, in decision order.
    pub verdicts: Vec<Decision>,
    /// Whether each decision came from a shard's state table (a cached
    /// answer is obtainable by definition, so fault assertions exempt it).
    pub from_cache: Vec<bool>,
    /// Wall-clock milliseconds per round.
    pub round_millis: Vec<f64>,
    /// `fail-closed` policy notes accumulated across all shards.
    pub fail_closed_notes: usize,
    /// State-table entries summed across all shards at the end of the run.
    pub state_entries: usize,
}

/// Drives `flows` through `tier` in rounds of `E12_BATCH`, advancing the
/// injector's logical clock in lock-step and calling `on_round` before each
/// round (where drills reshard mid-run).
pub fn run_drill(
    tier: &mut ShardedController,
    injector: &Arc<FaultInjector>,
    flows: &[FiveTuple],
    mut on_round: impl FnMut(usize, &mut ShardedController),
) -> DrillRun {
    let mut verdicts = Vec::with_capacity(flows.len());
    let mut from_cache = Vec::with_capacity(flows.len());
    let mut round_millis = Vec::new();
    for (round, chunk) in flows.chunks(E12_BATCH).enumerate() {
        on_round(round, tier);
        let now = round as u64 * E12_ROUND_MICROS;
        injector.advance_to(now);
        let started = Instant::now();
        let decisions = tier.decide_batch(chunk, now);
        round_millis.push(started.elapsed().as_secs_f64() * 1e3);
        verdicts.extend(decisions.iter().map(|d| d.verdict.decision));
        from_cache.extend(decisions.iter().map(|d| d.from_cache));
    }
    let fail_closed_notes = tier
        .shards()
        .iter()
        .map(|shard| {
            shard
                .audit()
                .policy_notes()
                .iter()
                .filter(|note| note.category == "fail-closed")
                .count()
        })
        .sum();
    let state_entries = tier
        .shards()
        .iter()
        .map(|shard| shard.state_table().len())
        .sum();
    DrillRun {
        verdicts,
        from_cache,
        round_millis,
        fail_closed_notes,
        state_entries,
    }
}

fn percentile_ms(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[((sorted.len() as f64 - 1.0) * p).round() as usize]
}

/// Asserts the drill-wide latency contract: no round — faulted or not — ever
/// blocks past the (generous) ceiling. The query budget bounds each faulted
/// round; the breaker bounds how many rounds pay it.
fn assert_rounds_bounded(cell: &str, run: &DrillRun) {
    let max = run.round_millis.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max <= E12_ROUND_CEILING_MS,
        "E12 {cell}: a round took {max:.0} ms — decisions must never block unboundedly"
    );
}

/// Asserts that every surviving shard holds exactly the state the router
/// names it owner of — the "no lost or duplicated entries" half of the
/// reshard contract (counts are checked against the baseline separately).
fn assert_state_owned(cell: &str, tier: &ShardedController) {
    for (slot, shard) in tier.shards().iter().enumerate() {
        if tier.is_drained(slot) {
            assert_eq!(
                shard.state_table().len(),
                0,
                "E12 {cell}: drained shard {slot} must hold no state"
            );
            continue;
        }
        for (key, _) in shard.state_table().entries() {
            assert_eq!(
                tier.shard_for(key),
                slot,
                "E12 {cell}: shard {slot} holds state the router assigns elsewhere"
            );
        }
    }
}

/// Prints the E12 failure-drill table: four drill cells (host partition,
/// daemon brownout, shard loss, reshard-under-load) over real loopback TCP
/// daemons, each asserting the fail-closed contract (DESIGN.md §9):
///
/// * no decision ever blocks past the ceiling (the budget + breaker bound
///   every faulted round),
/// * flows whose answers are unobtainable are denied with a `fail-closed`
///   audit note — and those denies are never cached,
/// * once the fault clears (plus breaker cooldown), the verdict stream is
///   identical to an unfaulted single-controller baseline,
/// * membership changes preserve decision identity end-to-end and migrate
///   state without loss or duplication.
///
/// `smoke` shrinks the run for CI. Returns the cells as bench rows.
pub fn print_e12(smoke: bool) -> Vec<BenchRow> {
    let flow_count = if smoke { 512 } else { 1024 };
    let flows = sharding_workload(flow_count, 23);
    let rounds = flows.len().div_ceil(E12_BATCH);
    // Fault window in rounds: [rounds/4, 3*rounds/8). Recovery is asserted
    // from the window's end plus the breaker slack to the end of the run.
    let fault_from = rounds / 4;
    let fault_until = rounds * 3 / 8;
    let recovered_from = fault_until + E12_RECOVERY_SLACK_ROUNDS;
    assert!(
        recovered_from + 2 < rounds,
        "drill must have a post-recovery tail to assert identity over"
    );
    let window = Window::between(
        fault_from as u64 * E12_ROUND_MICROS,
        fault_until as u64 * E12_ROUND_MICROS,
    );
    let flow_round = |i: usize| i / E12_BATCH;
    let in_window = |i: usize| (fault_from..fault_until).contains(&flow_round(i));
    let recovered = |i: usize| flow_round(i) >= recovered_from;

    println!(
        "\n# E12: failure drills ({flow_count} flows, {E12_SHARDS} shards, {} ms budget, window rounds {fault_from}..{fault_until} of {rounds})",
        E12_BUDGET.as_millis()
    );
    println!(
        "{:>18} {:>9} {:>9} {:>9} {:>12} {:>10}",
        "cell", "p50 ms", "p99 ms", "max ms", "fail-closed", "recovered"
    );

    // The unfaulted baseline: a single-controller tier over healthy daemons,
    // same flows, same logical clock. Every cell's recovery (and the
    // membership cells' entire run) is compared against its verdict stream.
    let baseline = {
        let injector = FaultInjector::none();
        let servers = start_drill_daemons(&injector);
        let endpoints: Vec<(Ipv4Addr, SocketAddr)> = servers
            .iter()
            .map(|(addr, server)| (*addr, server.local_addr()))
            .collect();
        let mut tier = drill_tier(&endpoints, 1, &injector);
        let run = run_drill(&mut tier, &injector, &flows, |_, _| {});
        for (_, server) in servers {
            server.shutdown();
        }
        assert_eq!(run.fail_closed_notes, 0, "the baseline must be healthy");
        run
    };

    let mut rows = Vec::new();
    let mut row = |cell: &'static str, run: &DrillRun| {
        let p50 = percentile_ms(&run.round_millis, 0.50);
        let p99 = percentile_ms(&run.round_millis, 0.99);
        let max = run.round_millis.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{cell:>18} {p50:>9.1} {p99:>9.1} {max:>9.1} {:>12} {:>10}",
            run.fail_closed_notes, "yes"
        );
        rows.push(
            BenchRow::new()
                .with("experiment", "e12")
                .with("cell", cell)
                .with("flows", flows.len())
                .with("rounds", rounds)
                .with("shards", E12_SHARDS)
                .with("p50_ms", p50)
                .with("p99_ms", p99)
                .with("max_ms", max)
                .with("fail_closed_notes", run.fail_closed_notes),
        );
    };

    // --- Cell 1: partition — a third of the hosts unreachable mid-run. ----
    {
        let partitioned: Vec<Ipv4Addr> = e9_hosts().into_iter().take(4).collect();
        let mut plan = FaultPlan::new(23);
        for &host in &partitioned {
            plan = plan.partition(host, window);
        }
        let injector = plan.injector();
        let servers = start_drill_daemons(&injector);
        let endpoints: Vec<(Ipv4Addr, SocketAddr)> = servers
            .iter()
            .map(|(addr, server)| (*addr, server.local_addr()))
            .collect();
        let mut tier = drill_tier(&endpoints, E12_SHARDS, &injector);
        let run = run_drill(&mut tier, &injector, &flows, |_, _| {});
        for (_, server) in servers {
            server.shutdown();
        }
        assert_rounds_bounded("partition", &run);
        assert!(
            run.fail_closed_notes > 0,
            "E12 partition: unreachable hosts must produce fail-closed denies"
        );
        for (i, flow) in flows.iter().enumerate() {
            let touches = partitioned.contains(&flow.src_ip) || partitioned.contains(&flow.dst_ip);
            if in_window(i) && touches && !run.from_cache[i] {
                // A cached answer is obtainable, so only freshly queried
                // flows are required to fail closed.
                assert_eq!(
                    run.verdicts[i],
                    Decision::Block,
                    "E12 partition: flow {flow} crossed the partition yet was not denied"
                );
            }
            if recovered(i) {
                assert_eq!(
                    run.verdicts[i], baseline.verdicts[i],
                    "E12 partition: verdicts must match the baseline after recovery (flow {flow})"
                );
            }
        }
        row("partition", &run);
    }

    // --- Cell 2: brownout — one host slower than the budget mid-run. ------
    {
        let browned = Ipv4Addr::new(10, 0, 0, 1);
        let injector = FaultPlan::new(23)
            .brownout(browned, E12_BROWNOUT_EXTRA_MICROS, window)
            .injector();
        let servers = start_drill_daemons(&injector);
        let endpoints: Vec<(Ipv4Addr, SocketAddr)> = servers
            .iter()
            .map(|(addr, server)| (*addr, server.local_addr()))
            .collect();
        let mut tier = drill_tier(&endpoints, E12_SHARDS, &injector);
        let run = run_drill(&mut tier, &injector, &flows, |_, _| {});
        for (_, server) in servers {
            server.shutdown();
        }
        assert_rounds_bounded("brownout", &run);
        assert!(
            run.fail_closed_notes > 0,
            "E12 brownout: deadline misses and breaker-open rounds must fail closed"
        );
        for (i, flow) in flows.iter().enumerate() {
            if recovered(i) {
                assert_eq!(
                    run.verdicts[i], baseline.verdicts[i],
                    "E12 brownout: verdicts must match the baseline after recovery (flow {flow})"
                );
            }
        }
        row("brownout", &run);
    }

    // --- Cell 3: shard loss — a shard removed (state evacuated) mid-run. --
    {
        let injector = FaultInjector::none();
        let servers = start_drill_daemons(&injector);
        let endpoints: Vec<(Ipv4Addr, SocketAddr)> = servers
            .iter()
            .map(|(addr, server)| (*addr, server.local_addr()))
            .collect();
        let mut tier = drill_tier(&endpoints, E12_SHARDS, &injector);
        let run = run_drill(&mut tier, &injector, &flows, |round, tier| {
            if round == fault_from {
                tier.remove_shard(1);
            }
        });
        assert_rounds_bounded("shard-loss", &run);
        assert_eq!(
            run.verdicts, baseline.verdicts,
            "E12 shard-loss: evacuating a shard must not change any decision"
        );
        assert_eq!(
            run.fail_closed_notes, 0,
            "E12 shard-loss: losing a controller shard loses no answers"
        );
        assert_eq!(
            run.state_entries, baseline.state_entries,
            "E12 shard-loss: state entries lost or duplicated in the handoff"
        );
        assert_state_owned("shard-loss", &tier);
        for (_, server) in servers {
            server.shutdown();
        }
        row("shard-loss", &run);
    }

    // --- Cell 4: reshard under load — grow, drain, and retire mid-run. ----
    {
        let injector = FaultInjector::none();
        let servers = start_drill_daemons(&injector);
        let endpoints: Vec<(Ipv4Addr, SocketAddr)> = servers
            .iter()
            .map(|(addr, server)| (*addr, server.local_addr()))
            .collect();
        let mut tier = drill_tier(&endpoints, E12_SHARDS, &injector);
        let grow_at = fault_from;
        let drain_at = fault_until;
        let retire_at = recovered_from;
        let run = run_drill(&mut tier, &injector, &flows, |round, tier| {
            if round == grow_at {
                tier.add_shard(drill_backend(&endpoints, &injector))
                    .expect("add shard mid-run");
            } else if round == drain_at {
                tier.drain_shard(0);
            } else if round == retire_at {
                tier.remove_shard(0);
            }
        });
        assert_rounds_bounded("reshard", &run);
        assert_eq!(
            run.verdicts, baseline.verdicts,
            "E12 reshard: live membership changes must not change any decision"
        );
        assert_eq!(run.fail_closed_notes, 0, "E12 reshard: no fault injected");
        assert_eq!(
            run.state_entries, baseline.state_entries,
            "E12 reshard: state entries lost or duplicated across handoffs"
        );
        assert_eq!(tier.epoch(), 3, "add + drain + remove = three epochs");
        assert_state_owned("reshard", &tier);
        for (_, server) in servers {
            server.shutdown();
        }
        row("reshard", &run);
    }

    rows
}

// ---------------------------------------------------------------------------
// E13: amortized delegation verification — hit rate × lifetime × batch
// ---------------------------------------------------------------------------

/// Hot delegation bundles (the working set the verify cache should retain).
const E13_HOT_APPS: usize = 4;
/// Cold bundles — more than the deliberately small verify cache holds, so
/// low-locality traffic churns it.
const E13_COLD_APPS: usize = 64;
/// Verify-cache capacity for the sweep: big enough for the hot set, far
/// smaller than the whole bundle population.
const E13_VERIFY_CAPACITY: usize = 32;
/// Logical microseconds per decision round.
const E13_ROUND_MICROS: u64 = 1_000;
/// The delegated requirements every E13 bundle signs over.
const E13_REQS: &str = "block all\npass all with eq(@src[name], research-app)";

/// One delegated application: a source address plus the response its daemon
/// gives (including the signed bundle).
struct E13App {
    addr: Ipv4Addr,
    pairs: Vec<(String, String)>,
}

/// Builds the E13 bundle population: `E13_HOT_APPS + E13_COLD_APPS` apps,
/// each with its own exe-hash (hence its own bundle), windowed
/// `[0, not_after)` under the `Secur` key. The last cold app's response
/// claims a different name than its bundle signs over — a forged delegation
/// every cell must reject.
fn e13_apps(signer: &KeyPair, not_after: u64) -> Vec<E13App> {
    let total = E13_HOT_APPS + E13_COLD_APPS;
    (0..total)
        .map(|i| {
            let exe_hash = format!("e13-exe-{i:03}");
            let bundle = sign_bundle_windowed(
                signer,
                "Secur",
                0,
                not_after,
                &[exe_hash.as_str(), "research-app", E13_REQS],
            );
            let forged = i == total - 1;
            let name = if forged {
                "imposter-app"
            } else {
                "research-app"
            };
            E13App {
                addr: Ipv4Addr::new(10, 0, (i / 200) as u8, (i % 200) as u8 + 1),
                pairs: vec![
                    ("name".to_string(), name.to_string()),
                    ("exe-hash".to_string(), exe_hash),
                    ("requirements".to_string(), E13_REQS.to_string()),
                    ("req-sig".to_string(), bundle.to_hex()),
                ],
            }
        })
        .collect()
}

/// The app index each flow presents: the first pass enumerates every app
/// once (so every bundle — the forged one included — is exercised in every
/// cell), then a deterministic xorshift stream picks hot apps with
/// probability `locality` and cold ones uniformly otherwise.
fn e13_app_sequence(flow_count: usize, locality: f64, seed: u64) -> Vec<usize> {
    let total = E13_HOT_APPS + E13_COLD_APPS;
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..flow_count)
        .map(|k| {
            if k < total {
                k
            } else if (next() % 1_000) as f64 / 1_000.0 < locality {
                (next() as usize) % E13_HOT_APPS
            } else {
                E13_HOT_APPS + (next() as usize) % E13_COLD_APPS
            }
        })
        .collect()
}

/// Drives the flow stream through one controller in rounds of `batch`,
/// advancing the logical clock one round per batch. Returns per-decision
/// wall-clock microseconds and the pass verdicts.
fn e13_run(
    controller: &mut IdentxxController,
    flows: &[FiveTuple],
    batch: usize,
) -> (f64, Vec<bool>) {
    let mut passes = Vec::with_capacity(flows.len());
    let started = Instant::now();
    for (round, chunk) in flows.chunks(batch).enumerate() {
        let now = round as u64 * E13_ROUND_MICROS;
        for decision in controller.decide_batch(chunk, now) {
            passes.push(decision.is_pass());
        }
    }
    let per_decision_us = started.elapsed().as_secs_f64() * 1e6 / flows.len() as f64;
    (per_decision_us, passes)
}

/// Builds the E13 controller (signed or unsigned policy) over a recording
/// backend scripted with every app's response. The state table is disabled
/// so every decision re-evaluates — the experiment measures the verify
/// plane, not the flow cache.
fn e13_controller(
    signer: &KeyPair,
    apps: &[E13App],
    server: Ipv4Addr,
    signed: bool,
) -> IdentxxController {
    let policy = if signed {
        "block all\npass all with verify(@src[req-sig], Secur, @src[exe-hash], \
         @src[name], @src[requirements])\n"
    } else {
        "block all\npass all with eq(@src[name], research-app)\n"
    };
    let mut backend = RecordingBackend::new()
        .with_answer(server, vec![("name".to_string(), "httpd".to_string())]);
    for app in apps {
        backend = backend.with_answer(app.addr, app.pairs.clone());
    }
    IdentxxController::new(
        ControllerConfig::new()
            .with_control_file("00.control", policy)
            .with_trusted_key("Secur", signer.public())
            .with_verify_cache_capacity(E13_VERIFY_CAPACITY)
            .without_state_table(),
    )
    .expect("compile E13 policy")
    .with_backend(Box::new(backend))
}

/// Prints the E13 table: amortized authenticated-delegation cost across
/// bundle locality {0.5, 0.9} × bundle lifetime {short, long} × batch size
/// {1, 32}, against an unsigned-rule baseline over the same flows and
/// backend.
///
/// Every cell asserts the security invariants (the forged bundle never
/// passes; short-lived bundles stop passing at expiry; long-lived cells see
/// no expiry), and the headline cells (0.9 locality, long lifetime) assert
/// the amortization claim: hot-set hit rate and a per-decision cost within
/// ~2× of the unsigned rule. `smoke` shrinks the flow count for CI.
pub fn print_e13(smoke: bool) -> Vec<BenchRow> {
    let flow_count = if smoke { 1_024 } else { 8_192 };
    let signer = KeyPair::from_seed(b"Secur");
    let server = Ipv4Addr::new(10, 0, 200, 1);
    let total_apps = E13_HOT_APPS + E13_COLD_APPS;
    assert!(
        flow_count > 2 * total_apps,
        "enumeration prefix must not dominate"
    );

    println!(
        "\n# E13: amortized delegation verification ({flow_count} flows, {total_apps} bundles, cache {E13_VERIFY_CAPACITY})"
    );
    println!(
        "{:>9} {:>9} {:>6} {:>9} {:>8} {:>9} {:>8} {:>11} {:>13} {:>7}",
        "locality",
        "lifetime",
        "batch",
        "hit_rate",
        "misses",
        "expired",
        "forged",
        "signed_us",
        "unsigned_us",
        "ratio"
    );

    let mut rows = Vec::new();
    for &locality in &[0.5f64, 0.9] {
        for &(lifetime, short) in &[("short", true), ("long", false)] {
            for &batch in &[1usize, 32] {
                let rounds = flow_count.div_ceil(batch);
                let run_micros = rounds as u64 * E13_ROUND_MICROS;
                // Short-lived bundles expire at the run's midpoint; long
                // ones outlive the run.
                let not_after = if short {
                    run_micros / 2
                } else {
                    run_micros + 1
                };
                let apps = e13_apps(&signer, not_after);
                let sequence = e13_app_sequence(flow_count, locality, 0xe13_5eed);
                let flows: Vec<FiveTuple> = sequence
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| {
                        FiveTuple::tcp(apps[i].addr, 40_000 + (k % 20_000) as u16, server, 80)
                    })
                    .collect();

                let mut signed_ctl = e13_controller(&signer, &apps, server, true);
                let (signed_us, signed_passes) = e13_run(&mut signed_ctl, &flows, batch);
                let mut unsigned_ctl = e13_controller(&signer, &apps, server, false);
                let (unsigned_us, unsigned_passes) = e13_run(&mut unsigned_ctl, &flows, batch);

                let stats = signed_ctl.verify_stats();
                let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
                let ratio = signed_us / unsigned_us;
                let cell = format!("E13 locality {locality} lifetime {lifetime} batch {batch}");

                // The forged bundle never passes; with a valid window it is
                // actually checked (and counted) rather than masked.
                let forged_idx = total_apps - 1;
                for (k, &i) in sequence.iter().enumerate() {
                    if i == forged_idx {
                        assert!(!signed_passes[k], "{cell}: forged bundle passed (flow {k})");
                    }
                }
                assert!(
                    stats.forged > 0,
                    "{cell}: the forged bundle was never checked"
                );
                // The unsigned baseline accepts what verify() accepts while
                // the bundles are live — the delegations differ only in
                // authentication. (The forged app's claim differs, and after
                // expiry the signed plane — correctly — stops passing.)
                let live = |k: usize| !short || (k / batch) as u64 * E13_ROUND_MICROS < not_after;
                for (k, &i) in sequence.iter().enumerate() {
                    if i != forged_idx && live(k) {
                        assert_eq!(
                            signed_passes[k], unsigned_passes[k],
                            "{cell}: live signed decision diverged from baseline (flow {k})"
                        );
                    }
                }
                if short {
                    assert!(
                        stats.expired > 0,
                        "{cell}: short-lived bundles never expired"
                    );
                    // After the window closes, nothing signed passes: expiry
                    // is fail-closed, not advisory.
                    for (k, &pass) in signed_passes.iter().enumerate() {
                        if !live(k) {
                            assert!(!pass, "{cell}: decision {k} passed after bundle expiry");
                        }
                    }
                } else {
                    assert_eq!(
                        stats.expired, 0,
                        "{cell}: long-lived bundles must not expire"
                    );
                    // Headline cells: the hot set stays cached and the
                    // amortized authenticated decision is within ~2× of the
                    // unsigned rule (bounded at 3× for CI timer jitter).
                    if locality >= 0.9 {
                        assert!(
                            hit_rate >= 0.85,
                            "{cell}: hot bundles should amortize (hit rate {hit_rate:.3})"
                        );
                        assert!(
                            ratio <= 3.0,
                            "{cell}: authenticated delegation cost {ratio:.2}x the unsigned rule"
                        );
                    }
                }

                println!(
                    "{locality:>9} {lifetime:>9} {batch:>6} {hit_rate:>9.3} {:>8} {:>9} {:>8} {signed_us:>11.2} {unsigned_us:>13.2} {ratio:>7.2}",
                    stats.misses, stats.expired, stats.forged
                );
                rows.push(
                    BenchRow::new()
                        .with("experiment", "e13")
                        .with("locality", locality)
                        .with("lifetime", lifetime)
                        .with("batch", batch)
                        .with("flows", flow_count)
                        .with("bundles", total_apps)
                        .with("cache_capacity", E13_VERIFY_CAPACITY)
                        .with("hit_rate", hit_rate)
                        .with("hits", stats.hits)
                        .with("misses", stats.misses)
                        .with("evictions", stats.evictions)
                        .with("expired", stats.expired)
                        .with("forged", stats.forged)
                        .with("signed_us_per_decision", signed_us)
                        .with("unsigned_us_per_decision", unsigned_us)
                        .with("cost_ratio", ratio),
                );
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8b_cache_warms_at_high_locality() {
        // The paper's cache-warming curve: with host-pair keyed caching, a
        // high-locality workload must not pay the full two queries per flow,
        // and more locality must mean fewer queries.
        let (low_hit, low_queries, flows) = run_query_workload(2_000, 0.0, 13);
        let (high_hit, high_queries, _) = run_query_workload(2_000, 0.9, 13);
        let high_qpf = high_queries as f64 / flows as f64;
        let low_qpf = low_queries as f64 / flows as f64;
        assert!(
            high_qpf < 2.00,
            "high locality must warm the cache (got {high_qpf:.2} queries/flow)"
        );
        assert!(high_qpf < low_qpf, "locality must reduce query overhead");
        assert!(
            high_hit > low_hit,
            "locality must raise the cache hit ratio"
        );
        assert!(
            high_hit > 0.5,
            "0.9 locality should serve most flows from cache (got {high_hit:.2})"
        );
    }
}
