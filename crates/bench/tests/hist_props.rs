//! Property tests for the E11 latency histogram (`identxx_bench::hist`).
//!
//! The sustained-load harness merges per-segment histograms into run-wide
//! ones and reports p50/p99/p999 from the merged result, so three properties
//! carry the whole report: merging is order-independent and equal to
//! single-stream recording, every quantile estimate brackets the true sorted
//! quantile within the documented `1/LINEAR_BUCKETS` relative error, and the
//! empty/single-sample edges degrade gracefully instead of panicking.

use identxx_bench::hist::{LogHistogram, LINEAR_BUCKETS};
use proptest::prelude::*;

/// Samples that exercise every histogram regime: the exact linear prefix,
/// mid-range octaves (the microsecond latencies E11 actually records), and
/// the far tail.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..LINEAR_BUCKETS,
        LINEAR_BUCKETS..10_000u64,
        10_000u64..100_000_000u64,
        any::<u64>(),
    ]
}

/// The true `q`-quantile of `values` under the histogram's rank convention
/// (rank `ceil(q·count)` clamped to `[1, count]`, 1-indexed into the sorted
/// stream).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

const QS: [f64; 6] = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging any partition of a sample stream — in any segment order —
    /// yields exactly the histogram of the whole stream.
    #[test]
    fn merge_is_order_independent_and_equals_combined_recording(
        values in prop::collection::vec(sample(), 1..200),
        cut in 0usize..200,
        reversed in any::<bool>(),
    ) {
        let cut = cut % values.len();
        let mut combined = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            combined.record(v);
            if i < cut { left.record(v) } else { right.record(v) }
        }
        let mut merged = LogHistogram::new();
        let (first, second) = if reversed { (&right, &left) } else { (&left, &right) };
        merged.merge(first);
        merged.merge(second);

        prop_assert_eq!(merged.count(), combined.count());
        prop_assert_eq!(merged.min(), combined.min());
        prop_assert_eq!(merged.max(), combined.max());
        prop_assert_eq!(merged.mean(), combined.mean());
        for q in QS {
            prop_assert_eq!(merged.quantile_bounds(q), combined.quantile_bounds(q));
        }
    }

    /// Every reported quantile bracket contains the true sorted-stream
    /// quantile, and the bracket is never wider than the documented
    /// `low / LINEAR_BUCKETS` relative error bound.
    #[test]
    fn quantile_bounds_bracket_the_true_quantile(
        values in prop::collection::vec(sample(), 1..300),
    ) {
        let mut h = LogHistogram::new();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        for q in QS {
            let truth = true_quantile(&sorted, q);
            let (low, high) = h.quantile_bounds(q);
            prop_assert!(
                low <= truth && truth <= high,
                "q={}: true {} outside [{}, {}]", q, truth, low, high
            );
            prop_assert!(
                high - low <= low / LINEAR_BUCKETS,
                "q={}: bracket [{}, {}] wider than low/{}", q, low, high, LINEAR_BUCKETS
            );
            prop_assert_eq!(h.value_at_quantile(q), high);
        }
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    /// A single sample is reported exactly — every quantile, min, max, and
    /// the mean all collapse to that value.
    #[test]
    fn single_sample_is_exact_at_every_quantile(v in sample()) {
        let mut h = LogHistogram::new();
        h.record(v);
        prop_assert_eq!(h.count(), 1);
        prop_assert_eq!(h.min(), v);
        prop_assert_eq!(h.max(), v);
        prop_assert_eq!(h.mean(), v as f64);
        for q in QS {
            prop_assert_eq!(h.quantile_bounds(q), (v, v));
            prop_assert_eq!(h.value_at_quantile(q), v);
        }
        let (p50, p99, p999) = h.percentiles();
        prop_assert_eq!((p50, p99, p999), (v, v, v));
    }
}

/// The empty histogram answers every query with zeros instead of panicking,
/// and merging an empty histogram is a no-op.
#[test]
fn empty_histogram_degrades_to_zeros() {
    let h = LogHistogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.mean(), 0.0);
    for q in QS {
        assert_eq!(h.quantile_bounds(q), (0, 0));
        assert_eq!(h.value_at_quantile(q), 0);
    }
    assert_eq!(h.percentiles(), (0, 0, 0));

    let mut populated = LogHistogram::new();
    populated.record(42);
    let before = (populated.count(), populated.min(), populated.max());
    populated.merge(&h);
    assert_eq!(
        (populated.count(), populated.min(), populated.max()),
        before,
        "merging an empty histogram must not disturb the population"
    );
    assert_eq!(populated.value_at_quantile(0.5), 42);
}
