//! The controller's audit log.
//!
//! Delegation is only safe if it is supervisable: the administrator must be
//! able to "log and audit the delegates' actions, and revoke the delegation if
//! needed" (§1). Every flow decision the controller makes is appended to this
//! log together with the identity information the decision was based on, so
//! an administrator can later ask "which flows were admitted because of rules
//! delegated to user X / third party Y?" and revoke them.

use identxx_pf::Decision;
use identxx_proto::FiveTuple;

/// One audited decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Simulated time of the decision (microseconds).
    pub time: u64,
    /// The flow the decision was about.
    pub flow: FiveTuple,
    /// The decision.
    pub decision: Decision,
    /// Source line of the policy rule that decided (None = default applied).
    pub matched_line: Option<usize>,
    /// Whether the decision came from the controller's state table rather
    /// than a fresh policy evaluation.
    pub from_cache: bool,
    /// The user reported by the source daemon, if any.
    pub src_user: Option<String>,
    /// The application reported by the source daemon, if any.
    pub src_app: Option<String>,
    /// The user reported by the destination daemon, if any.
    pub dst_user: Option<String>,
    /// The application reported by the destination daemon, if any.
    pub dst_app: Option<String>,
    /// The `rule-maker` value, when the decision relied on third-party rules.
    pub rule_maker: Option<String>,
    /// Number of ident++ queries issued for this decision.
    pub queries_issued: u32,
}

/// A load-time note about the policy itself rather than about any one flow:
/// rules the compiler's dead-rule elimination dropped, port rules that are
/// unsafe under the configured cache granularity, and similar static
/// findings. The categories match the `identxx-pf` static analyzer's
/// diagnostic codes (e.g. `shadowed-rule`, `granularity-unsafe`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyNote {
    /// Kebab-case category, e.g. `shadowed-rule`.
    pub category: String,
    /// Source line of the rule the note is about (0 = unknown).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// The append-only audit log.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
    policy_notes: Vec<PolicyNote>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: AuditRecord) {
        self.records.push(record);
    }

    /// All records in order.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Appends a load-time policy note.
    pub fn push_note(&mut self, note: PolicyNote) {
        self.policy_notes.push(note);
    }

    /// Load-time notes about the policy (dead rules, granularity hazards).
    pub fn policy_notes(&self) -> &[PolicyNote] {
        &self.policy_notes
    }

    /// Removes and returns every record satisfying the predicate, preserving
    /// order — the audit half of a reshard handoff: when a key range moves
    /// to another shard, its decision history moves with it so per-shard
    /// logs keep answering "what did this shard decide about its flows".
    pub fn extract_records_where<F: FnMut(&AuditRecord) -> bool>(
        &mut self,
        mut pred: F,
    ) -> Vec<AuditRecord> {
        let mut extracted = Vec::new();
        self.records.retain(|record| {
            if pred(record) {
                extracted.push(record.clone());
                false
            } else {
                true
            }
        });
        extracted
    }

    /// Merges records previously taken by
    /// [`AuditLog::extract_records_where`] into this log, keeping it
    /// time-ordered. The sort is stable, so records this log already held
    /// keep their relative order (and precede absorbed records of equal
    /// time).
    pub fn absorb_records(&mut self, records: Vec<AuditRecord>) {
        self.records.extend(records);
        self.records.sort_by_key(|record| record.time);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records that were allowed.
    pub fn passed(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter().filter(|r| r.decision == Decision::Pass)
    }

    /// Records that were denied.
    pub fn blocked(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records
            .iter()
            .filter(|r| r.decision == Decision::Block)
    }

    /// Records involving a given source application name.
    pub fn by_src_app<'a>(&'a self, app: &'a str) -> impl Iterator<Item = &'a AuditRecord> {
        self.records
            .iter()
            .filter(move |r| r.src_app.as_deref() == Some(app))
    }

    /// Records involving a given source user.
    pub fn by_src_user<'a>(&'a self, user: &'a str) -> impl Iterator<Item = &'a AuditRecord> {
        self.records
            .iter()
            .filter(move |r| r.src_user.as_deref() == Some(user))
    }

    /// Records whose decision relied on rules from a given rule maker.
    pub fn by_rule_maker<'a>(&'a self, maker: &'a str) -> impl Iterator<Item = &'a AuditRecord> {
        self.records
            .iter()
            .filter(move |r| r.rule_maker.as_deref() == Some(maker))
    }

    /// Fraction of decisions served from the state table.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let hits = self.records.iter().filter(|r| r.from_cache).count();
        hits as f64 / self.records.len() as f64
    }

    /// Total ident++ queries accounted across all decisions.
    pub fn total_queries(&self) -> u64 {
        self.records.iter().map(|r| r.queries_issued as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(decision: Decision, app: &str, user: &str, from_cache: bool) -> AuditRecord {
        AuditRecord {
            time: 0,
            flow: FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 80),
            decision,
            matched_line: Some(3),
            from_cache,
            src_user: Some(user.to_string()),
            src_app: Some(app.to_string()),
            dst_user: None,
            dst_app: None,
            rule_maker: if app == "thunderbird" {
                Some("Secur".to_string())
            } else {
                None
            },
            queries_issued: if from_cache { 0 } else { 2 },
        }
    }

    #[test]
    fn filters_and_statistics() {
        let mut log = AuditLog::new();
        log.push(record(Decision::Pass, "skype", "alice", false));
        log.push(record(Decision::Block, "skype-old", "bob", false));
        log.push(record(Decision::Pass, "thunderbird", "alice", true));
        log.push(record(Decision::Pass, "skype", "carol", true));

        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
        assert_eq!(log.passed().count(), 3);
        assert_eq!(log.blocked().count(), 1);
        assert_eq!(log.by_src_app("skype").count(), 2);
        assert_eq!(log.by_src_user("alice").count(), 2);
        assert_eq!(log.by_rule_maker("Secur").count(), 1);
        assert!((log.cache_hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(log.total_queries(), 4);
        assert_eq!(log.records().len(), 4);
    }

    #[test]
    fn empty_log_statistics() {
        let log = AuditLog::new();
        assert_eq!(log.cache_hit_ratio(), 0.0);
        assert_eq!(log.total_queries(), 0);
        assert!(log.is_empty());
    }
}
