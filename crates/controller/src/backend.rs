//! The controller's pluggable query plane.
//!
//! The paper's central mechanism is the controller querying *both* end-hosts
//! for flow context at setup time (§3.2). How those queries travel is a
//! deployment decision, not a policy one: the simulator answers them
//! in-process, a deployment opens TCP connections to port 783 on each end,
//! and tests inject failures. [`QueryBackend`] is the seam between the two
//! concerns — [`IdentxxController`](crate::IdentxxController) asks one
//! question ("resolve this flow's ends") and the backend decides transport,
//! concurrency, and timeout handling, reporting uniform [`BackendStats`].
//!
//! Four implementations ship:
//!
//! * [`InProcessBackend`] — wraps an owned [`DaemonDirectory`] of simulated
//!   daemons; the simulator path, behaviour-identical to the controller's
//!   historical hard-wired directory.
//! * [`SharedDirectoryBackend`] — the same in-process semantics over an
//!   `Arc<Mutex<DaemonDirectory>>`, so N controller shards can query (and
//!   observe mutations of) **one** daemon population — what lets the
//!   simulator facade drive a [`crate::ShardedController`] without N
//!   diverging daemon copies (DESIGN.md §7).
//! * [`NetworkBackend`] — real TCP via `identxx-net`, querying every
//!   involved host **concurrently** with one shared deadline and a pooled
//!   connection per host.
//! * [`RecordingBackend`] — a scriptable test double that records every
//!   query for failure-injection and audit tests.
//!
//! ## Contract
//!
//! One [`QueryBackend::query_flow`] call resolves every requested target of
//! one flow. For each target the backend must either produce a response or
//! silently yield `None` — transport failures (timeout, refused connection,
//! silent daemon, no daemon at all) are *not* errors, because the paper's
//! controller must "cope with missing information" and let the policy
//! decide. Every requested target counts as one query sent; each `None`
//! counts as unanswered. Backends never interpret responses: interception,
//! augmentation, and policy evaluation stay controller-side.
//!
//! [`QueryBackend::query_flows`] extends the same contract to a batch of
//! flows (one [`FlowRequest`] each) resolved in a single query round. The
//! per-request semantics are identical to calling `query_flow` once per
//! request — the default implementation does exactly that — but a transport
//! may reorganize the round: [`NetworkBackend`] coalesces every query bound
//! for the same host into one `QUERY-BATCH` frame on that host's pooled
//! connection, so a round of B flows costs one round trip per involved
//! host instead of up to 2·B connections. See DESIGN.md §6.

use std::any::Any;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use identxx_daemon::FaultInjector;
use identxx_net::QueryClient;
use identxx_proto::{FiveTuple, Ipv4Addr, Query, Response};

use crate::intercept::QueryTarget;
use crate::querier::DaemonDirectory;

/// Per-backend transport counters, uniform across implementations so
/// experiments can compare transports like for like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Queries sent (one per requested target per `query_flow` call).
    pub queries_sent: u64,
    /// Queries that produced a response.
    pub responses_received: u64,
    /// Queries that produced no response: a network timeout, a refused or
    /// closed connection, a silent daemon, or no daemon at all. The
    /// controller cannot distinguish these cases (§4 "Incremental Benefit"),
    /// so the stats do not either.
    pub timeouts: u64,
}

/// The responses gathered for one flow, at most one per end.
#[derive(Debug, Clone, Default)]
pub struct FlowResponses {
    /// Response from the flow's source host, if that end was requested and
    /// answered.
    pub src: Option<Response>,
    /// Response from the flow's destination host, if that end was requested
    /// and answered.
    pub dst: Option<Response>,
    /// How many queries the backend sent for this call (one per requested
    /// target, whether or not it was answered).
    pub queries_issued: u32,
}

impl FlowResponses {
    /// The response slot for a target.
    pub fn get(&self, target: QueryTarget) -> Option<&Response> {
        match target {
            QueryTarget::Source => self.src.as_ref(),
            QueryTarget::Destination => self.dst.as_ref(),
        }
    }

    fn set(&mut self, target: QueryTarget, response: Option<Response>) {
        match target {
            QueryTarget::Source => self.src = response,
            QueryTarget::Destination => self.dst = response,
        }
    }
}

/// One flow's slice of a batched query round: which flow, which of its ends,
/// and the advisory key hints to send.
#[derive(Debug, Clone, Copy)]
pub struct FlowRequest<'a> {
    /// The flow to resolve.
    pub flow: FiveTuple,
    /// The ends of the flow to query.
    pub targets: &'a [QueryTarget],
    /// The advisory key hints (§3.2).
    pub keys: &'a [&'a str],
}

/// A transport that resolves ident++ queries for both ends of a flow.
pub trait QueryBackend: Send {
    /// Resolves the requested `targets` of `flow` in one call, with `keys`
    /// as the advisory hint list (§3.2). The backend decides how: serially
    /// in-process, concurrently over TCP, or from a script. Targets not in
    /// `targets` are left `None` and do not count as queries.
    fn query_flow(
        &mut self,
        flow: &FiveTuple,
        targets: &[QueryTarget],
        keys: &[&str],
    ) -> FlowResponses;

    /// Resolves a whole batch of flows in one query round, returning one
    /// [`FlowResponses`] per request, in request order.
    ///
    /// The default implementation loops over [`QueryBackend::query_flow`],
    /// which is exactly right for in-process and scripted backends: batching
    /// is a *transport* optimization, and per-request semantics (counting,
    /// missing-information handling) must not change with the round size.
    /// [`NetworkBackend`] overrides this to coalesce every query bound for
    /// the same host into one multi-query frame on that host's pooled
    /// connection — a round costs one round trip per involved *host*, not
    /// one connection (or thread) per flow end.
    fn query_flows(&mut self, requests: &[FlowRequest<'_>]) -> Vec<FlowResponses> {
        requests
            .iter()
            .map(|r| self.query_flow(&r.flow, r.targets, r.keys))
            .collect()
    }

    /// Transport counters accumulated since construction.
    fn stats(&self) -> BackendStats;

    /// Backend name for reports and debugging.
    fn name(&self) -> &str;

    /// Downcast support (e.g. the simulator reaching the in-process daemon
    /// directory behind the trait).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

// ---------------------------------------------------------------------------
// In-process backend
// ---------------------------------------------------------------------------

/// The simulator's query plane: daemons live in the same process, reached
/// through a [`DaemonDirectory`]. Queries are answered synchronously; a
/// missing, silent, or refusing daemon is an unanswered query, exactly what
/// the same host would look like over the network.
#[derive(Debug, Default)]
pub struct InProcessBackend {
    directory: DaemonDirectory,
    stats: BackendStats,
    fault_injector: Option<Arc<FaultInjector>>,
}

impl InProcessBackend {
    /// Creates a backend with an empty daemon directory.
    pub fn new() -> InProcessBackend {
        InProcessBackend::default()
    }

    /// Creates a backend over an existing directory.
    pub fn with_directory(directory: DaemonDirectory) -> InProcessBackend {
        InProcessBackend {
            directory,
            stats: BackendStats::default(),
            fault_injector: None,
        }
    }

    /// Attaches a failure-drill fault injector: hosts inside an active
    /// partition window are unreachable from this backend (the in-process
    /// equivalent of the network partition seen from the query plane).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> InProcessBackend {
        self.fault_injector = Some(injector);
        self
    }

    /// The daemon directory.
    pub fn directory(&self) -> &DaemonDirectory {
        &self.directory
    }

    /// Mutable access to the daemon directory (scenarios use this to start
    /// applications, install configs, or compromise hosts mid-experiment).
    pub fn directory_mut(&mut self) -> &mut DaemonDirectory {
        &mut self.directory
    }
}

impl QueryBackend for InProcessBackend {
    fn query_flow(
        &mut self,
        flow: &FiveTuple,
        targets: &[QueryTarget],
        keys: &[&str],
    ) -> FlowResponses {
        let mut responses = FlowResponses::default();
        for &target in targets {
            let addr = target_addr(flow, target);
            self.stats.queries_sent += 1;
            responses.queries_issued += 1;
            let partitioned = self
                .fault_injector
                .as_ref()
                .is_some_and(|injector| injector.unreachable(addr));
            let answer = if partitioned {
                None
            } else {
                self.directory.query(addr, flow, keys)
            };
            match &answer {
                Some(_) => self.stats.responses_received += 1,
                None => self.stats.timeouts += 1,
            }
            responses.set(target, answer);
        }
        responses
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &str {
        "in-process"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Shared-directory backend
// ---------------------------------------------------------------------------

/// An in-process query plane over a **shared** daemon directory.
///
/// [`InProcessBackend`] owns its directory, which is exactly right for one
/// controller but leaves a sharded tier stuck: N shards would need N copies
/// of every daemon, and a scenario mutating a host (starting an application,
/// compromising it) would have to repeat the mutation N times — the ROADMAP
/// deficiency this type removes. All shards (and the simulator facade)
/// instead hold clones of one `Arc<Mutex<DaemonDirectory>>`: a mutation is
/// visible to every shard at its next query, and per-backend
/// [`BackendStats`] stay shard-local so the tier's merged view still sums
/// real work.
///
/// The lock is held per queried target, not per round — matching the
/// granularity of a real daemon answering one query at a time, and short
/// enough that shard threads interleave freely.
#[derive(Debug)]
pub struct SharedDirectoryBackend {
    directory: Arc<Mutex<DaemonDirectory>>,
    stats: BackendStats,
    fault_injector: Option<Arc<FaultInjector>>,
}

impl SharedDirectoryBackend {
    /// Creates a backend over an existing shared directory.
    pub fn new(directory: Arc<Mutex<DaemonDirectory>>) -> SharedDirectoryBackend {
        SharedDirectoryBackend {
            directory,
            stats: BackendStats::default(),
            fault_injector: None,
        }
    }

    /// Attaches a failure-drill fault injector: hosts inside an active
    /// partition window are unreachable from *this* backend (per-shard
    /// injectors model a partition that cuts one shard off).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> SharedDirectoryBackend {
        self.fault_injector = Some(injector);
        self
    }

    /// A fresh shared directory plus the first backend over it; equip other
    /// shards via [`SharedDirectoryBackend::new`] on the returned handle.
    pub fn fresh() -> (Arc<Mutex<DaemonDirectory>>, SharedDirectoryBackend) {
        let directory = Arc::new(Mutex::new(DaemonDirectory::new()));
        let backend = SharedDirectoryBackend::new(Arc::clone(&directory));
        (directory, backend)
    }

    /// The shared directory handle.
    pub fn directory(&self) -> Arc<Mutex<DaemonDirectory>> {
        Arc::clone(&self.directory)
    }
}

impl QueryBackend for SharedDirectoryBackend {
    fn query_flow(
        &mut self,
        flow: &FiveTuple,
        targets: &[QueryTarget],
        keys: &[&str],
    ) -> FlowResponses {
        let mut responses = FlowResponses::default();
        for &target in targets {
            let addr = target_addr(flow, target);
            self.stats.queries_sent += 1;
            responses.queries_issued += 1;
            let partitioned = self
                .fault_injector
                .as_ref()
                .is_some_and(|injector| injector.unreachable(addr));
            let answer = if partitioned {
                None
            } else {
                self.directory
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .query(addr, flow, keys)
            };
            match &answer {
                Some(_) => self.stats.responses_received += 1,
                None => self.stats.timeouts += 1,
            }
            responses.set(target, answer);
        }
        responses
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &str {
        "shared-directory"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Network backend
// ---------------------------------------------------------------------------

/// Default per-decision query budget, shared by both ends: matching the
/// transport-level [`identxx_net::client::QUERY_TIMEOUT`], because flow
/// setup blocks on the slower of the two round trips.
pub const DEFAULT_QUERY_BUDGET: Duration = Duration::from_secs(2);

/// Per-host circuit breaker configuration for [`NetworkBackend`].
///
/// A host that misses `failure_threshold` consecutive query rounds (every
/// answer `None`: dead endpoint, deadline misses, silence) trips its breaker
/// **open**: the backend stops querying it, so a browned-out or dead host
/// costs nothing instead of a full deadline every round. After
/// `cooldown_rounds` skipped rounds the breaker goes **half-open**: the next
/// round probes the host normally — one answered query closes the breaker,
/// another all-miss round reopens it. States and transitions are documented
/// in DESIGN.md §9.
///
/// The breaker is opt-in ([`NetworkBackend::with_breaker`]): with it off the
/// backend keeps the historical always-query behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive all-miss rounds before the breaker opens.
    pub failure_threshold: u32,
    /// Rounds the host is skipped before a half-open probe.
    pub cooldown_rounds: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_rounds: 8,
        }
    }
}

/// One host's breaker state (see [`BreakerConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Queries flow normally; counts consecutive all-miss rounds.
    Closed { consecutive_misses: u32 },
    /// The host is skipped for `remaining` more rounds.
    Open { remaining: u32 },
    /// The next round is a probe: answered → closed, all-miss → reopen.
    HalfOpen,
}

/// The deployment-shaped query plane: each end-host's daemon is a TCP
/// endpoint (port 783 in a real deployment), queried through `identxx-net`.
///
/// The two ends of a flow are queried **concurrently**, each on its own
/// pooled connection, against one *shared* absolute deadline — so the wall
/// time a flow setup spends on queries is the maximum of the two round
/// trips, not their sum, mirroring Fig. 1's parallel step 3.
///
/// Concurrency is future-shaped, not thread-shaped: a round's per-host
/// shares are joined on the calling thread over the runtime's reactor, so a
/// round across a hundred hosts costs a hundred suspended exchanges and
/// zero spawned threads (the `IDENTXX_RUNTIME=threaded` baseline restores
/// the historical scoped-thread-per-host fan-out for comparison —
/// EXPERIMENTS.md E10).
pub struct NetworkBackend {
    endpoints: BTreeMap<Ipv4Addr, SocketAddr>,
    clients: BTreeMap<Ipv4Addr, QueryClient>,
    budget: Duration,
    stats: BackendStats,
    /// Per-host circuit breaking; `None` = historical always-query mode.
    breaker: Option<BreakerConfig>,
    breakers: BTreeMap<Ipv4Addr, BreakerState>,
    /// Failure-drill partitions (hosts unreachable from this backend).
    fault_injector: Option<Arc<FaultInjector>>,
}

impl NetworkBackend {
    /// Creates a backend with no known endpoints and the default budget.
    pub fn new() -> NetworkBackend {
        NetworkBackend {
            endpoints: BTreeMap::new(),
            clients: BTreeMap::new(),
            budget: DEFAULT_QUERY_BUDGET,
            stats: BackendStats::default(),
            breaker: None,
            breakers: BTreeMap::new(),
            fault_injector: None,
        }
    }

    /// Sets the shared per-decision query budget (builder style).
    pub fn with_budget(mut self, budget: Duration) -> NetworkBackend {
        self.budget = budget;
        self
    }

    /// Enables the per-host circuit breaker (builder style). See
    /// [`BreakerConfig`].
    pub fn with_breaker(mut self, config: BreakerConfig) -> NetworkBackend {
        self.breaker = Some(config);
        self
    }

    /// Attaches a failure-drill fault injector: hosts inside an active
    /// partition window are unreachable from this backend. Per-shard
    /// injectors model a partition (or a shard-wide outage) that cuts one
    /// shard's query plane off while others keep answering.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> NetworkBackend {
        self.fault_injector = Some(injector);
        self
    }

    /// Whether `host`'s breaker is currently open (the host is being
    /// skipped). Always `false` with the breaker disabled.
    pub fn breaker_is_open(&self, host: Ipv4Addr) -> bool {
        matches!(self.breakers.get(&host), Some(BreakerState::Open { .. }))
    }

    /// The breaker state for `host`, for drills and reports:
    /// `"closed"`, `"open"`, or `"half-open"`.
    pub fn breaker_state_name(&self, host: Ipv4Addr) -> &'static str {
        match self.breakers.get(&host) {
            None | Some(BreakerState::Closed { .. }) => "closed",
            Some(BreakerState::Open { .. }) => "open",
            Some(BreakerState::HalfOpen) => "half-open",
        }
    }

    /// Whether the breaker admits queries to `host` this round. Advances an
    /// open breaker's cooldown; after the last cooldown round it parks in
    /// half-open so the *next* round probes.
    fn breaker_admits(&mut self, host: Ipv4Addr) -> bool {
        if self.breaker.is_none() {
            return true;
        }
        let state = self.breakers.entry(host).or_insert(BreakerState::Closed {
            consecutive_misses: 0,
        });
        match state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { remaining } => {
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    *state = BreakerState::HalfOpen;
                }
                false
            }
        }
    }

    /// Records the outcome of a round in which `host` was actually queried.
    fn breaker_record(&mut self, host: Ipv4Addr, any_response: bool) {
        let Some(config) = self.breaker else {
            return;
        };
        let state = self.breakers.entry(host).or_insert(BreakerState::Closed {
            consecutive_misses: 0,
        });
        *state = if any_response {
            BreakerState::Closed {
                consecutive_misses: 0,
            }
        } else {
            match *state {
                BreakerState::Closed { consecutive_misses } => {
                    let misses = consecutive_misses + 1;
                    if misses >= config.failure_threshold.max(1) {
                        BreakerState::Open {
                            remaining: config.cooldown_rounds.max(1),
                        }
                    } else {
                        BreakerState::Closed {
                            consecutive_misses: misses,
                        }
                    }
                }
                // A failed half-open probe reopens for a full cooldown.
                BreakerState::HalfOpen => BreakerState::Open {
                    remaining: config.cooldown_rounds.max(1),
                },
                // Open hosts are never queried; keep the countdown.
                open @ BreakerState::Open { .. } => open,
            }
        };
    }

    /// Maps a host address to the socket address its daemon listens on
    /// (builder style). In a real deployment this is `host:783`; tests bind
    /// ephemeral localhost ports.
    pub fn with_endpoint(mut self, host: Ipv4Addr, endpoint: SocketAddr) -> NetworkBackend {
        self.register_endpoint(host, endpoint);
        self
    }

    /// Maps (or remaps) a host address to its daemon's socket address.
    pub fn register_endpoint(&mut self, host: Ipv4Addr, endpoint: SocketAddr) {
        self.endpoints.insert(host, endpoint);
        // A remap invalidates any pooled connection to the old endpoint —
        // and any breaker history: the new endpoint earns a clean slate.
        self.clients.remove(&host);
        self.breakers.remove(&host);
    }

    /// The shared per-decision query budget.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// The registered endpoint for a host, if any.
    pub fn endpoint(&self, host: Ipv4Addr) -> Option<SocketAddr> {
        self.endpoints.get(&host).copied()
    }

    /// Runs one host's share of a query round on its pooled client. A single
    /// query goes out as a plain `QUERY` frame (wire-identical to the
    /// historical singleton path); several go out as one `QUERY-BATCH` frame
    /// per [`identxx_proto::wire::MAX_BATCH`] chunk. `None` slots cover
    /// every no-information case: refused connection, timeout, silent
    /// daemon, flows the daemon knows nothing about. The batch client keeps
    /// earlier chunks' answers when a later chunk's transport fails, so the
    /// error fallback here only fires on a protocol-violating peer.
    async fn batch_on_client(
        client: &mut QueryClient,
        queries: &[Query],
        deadline: Instant,
    ) -> Vec<Option<Response>> {
        match queries {
            [] => Vec::new(),
            [one] => vec![client
                .query_deadline_async(one, deadline)
                .await
                .ok()
                .flatten()],
            many => client
                .query_batch_deadline_async(many, deadline)
                .await
                .unwrap_or_else(|_| vec![None; many.len()]),
        }
    }
}

impl Default for NetworkBackend {
    fn default() -> Self {
        NetworkBackend::new()
    }
}

impl QueryBackend for NetworkBackend {
    fn query_flow(
        &mut self,
        flow: &FiveTuple,
        targets: &[QueryTarget],
        keys: &[&str],
    ) -> FlowResponses {
        // The singleton path is the one-request batch: per-host grouping
        // still queries the two ends of a flow concurrently, each as a plain
        // `QUERY` frame on its own pooled connection.
        self.query_flows(&[FlowRequest {
            flow: *flow,
            targets,
            keys,
        }])
        .pop()
        .unwrap_or_default()
    }

    fn query_flows(&mut self, requests: &[FlowRequest<'_>]) -> Vec<FlowResponses> {
        let deadline = Instant::now() + self.budget;
        let mut responses: Vec<FlowResponses> = requests
            .iter()
            .map(|r| FlowResponses {
                queries_issued: r.targets.len() as u32,
                ..FlowResponses::default()
            })
            .collect();
        self.stats.queries_sent += requests.iter().map(|r| r.targets.len() as u64).sum::<u64>();

        // Group every (request, target) pair by the host whose daemon must
        // answer it; the round costs one round trip per host in this map,
        // not one thread per flow end (the historical fan-out shape).
        let mut per_host: BTreeMap<Ipv4Addr, Vec<(usize, QueryTarget)>> = BTreeMap::new();
        for (i, request) in requests.iter().enumerate() {
            for &target in request.targets {
                per_host
                    .entry(target_addr(&request.flow, target))
                    .or_default()
                    .push((i, target));
            }
        }

        // One host's share of the round: its pooled client and the queries
        // (one per requested flow end) to send it in a single frame.
        struct HostShare {
            addr: Ipv4Addr,
            client: QueryClient,
            entries: Vec<(usize, QueryTarget)>,
            queries: Vec<Query>,
        }

        // Lift each involved host's pooled client out of the map (created on
        // first use). Hosts with no registered endpoint have no transport at
        // all; their slots stay `None`. The same applies to hosts behind an
        // active drill partition, and to hosts whose circuit breaker is open
        // — skipping them is the breaker's entire point: an unanswerable
        // host costs nothing instead of a deadline every round.
        let mut work: Vec<HostShare> = Vec::new();
        for (addr, entries) in per_host {
            if self
                .fault_injector
                .as_ref()
                .is_some_and(|injector| injector.unreachable(addr))
            {
                continue;
            }
            if !self.breaker_admits(addr) {
                continue;
            }
            let Some(endpoint) = self.endpoints.get(&addr) else {
                continue;
            };
            let client = self
                .clients
                .remove(&addr)
                .unwrap_or_else(|| QueryClient::new(*endpoint));
            let queries: Vec<Query> = entries
                .iter()
                .map(|&(i, _)| {
                    let mut query = Query::new(requests[i].flow);
                    for k in requests[i].keys {
                        query = query.with_key(k);
                    }
                    query
                })
                .collect();
            work.push(HostShare {
                addr,
                client,
                entries,
                queries,
            });
        }

        // Every host's share of the round runs as a concurrent future under
        // the one shared deadline, joined on this thread — the round costs
        // ≈ the slowest host and **zero** spawned threads: the runtime's
        // reactor suspends each share on socket readiness and its timer
        // wheel enforces the deadline (DESIGN.md §7). Under the
        // `IDENTXX_RUNTIME=threaded` baseline the historical architecture —
        // one scoped OS thread per extra host, blocking shims — is kept for
        // the E10 comparison rows.
        let results: Vec<(HostShare, Vec<Option<Response>>)> =
            if tokio::runtime::threaded_baseline() {
                std::thread::scope(|scope| {
                    let mut work = work.into_iter();
                    let first = work.next();
                    let handles: Vec<_> = work
                        .map(|mut share| {
                            scope.spawn(move || {
                                let answers = tokio::runtime::block_on(Self::batch_on_client(
                                    &mut share.client,
                                    &share.queries,
                                    deadline,
                                ));
                                (share, answers)
                            })
                        })
                        .collect();
                    let mut results = Vec::with_capacity(handles.len() + 1);
                    if let Some(mut share) = first {
                        let answers = tokio::runtime::block_on(Self::batch_on_client(
                            &mut share.client,
                            &share.queries,
                            deadline,
                        ));
                        results.push((share, answers));
                    }
                    results.extend(
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("query thread panicked")),
                    );
                    results
                })
            } else {
                tokio::runtime::block_on(tokio::future::join_all(work.into_iter().map(
                    |mut share| async move {
                        let answers =
                            Self::batch_on_client(&mut share.client, &share.queries, deadline)
                                .await;
                        (share, answers)
                    },
                )))
            };

        for (share, answers) in results {
            self.clients.insert(share.addr, share.client);
            self.breaker_record(share.addr, answers.iter().any(|a| a.is_some()));
            for ((i, target), answer) in share.entries.into_iter().zip(answers) {
                responses[i].set(target, answer);
            }
        }

        for (i, request) in requests.iter().enumerate() {
            for &target in request.targets {
                match responses[i].get(target) {
                    Some(_) => self.stats.responses_received += 1,
                    None => self.stats.timeouts += 1,
                }
            }
        }
        responses
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &str {
        "network"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for NetworkBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkBackend")
            .field("endpoints", &self.endpoints.len())
            .field("pooled", &self.clients.len())
            .field("budget", &self.budget)
            .field("stats", &self.stats)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Recording backend
// ---------------------------------------------------------------------------

/// How the [`RecordingBackend`] behaves for one host.
#[derive(Debug, Clone)]
pub enum ScriptedAnswer {
    /// Answer every query with these key-value pairs.
    Answer(Vec<(String, String)>),
    /// Never answer (a silent daemon or a timeout).
    Silent,
}

/// One recorded `query_flow` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedQuery {
    /// The flow queried about.
    pub flow: FiveTuple,
    /// The requested targets, in request order.
    pub targets: Vec<QueryTarget>,
    /// The advisory key hints.
    pub keys: Vec<String>,
}

/// A scriptable test double: answers from a per-host script (hosts with no
/// script are unreachable) and records every call, so failure-injection and
/// audit tests can assert exactly what the controller asked for.
#[derive(Debug, Default)]
pub struct RecordingBackend {
    script: BTreeMap<Ipv4Addr, ScriptedAnswer>,
    log: Vec<RecordedQuery>,
    stats: BackendStats,
}

impl RecordingBackend {
    /// Creates a backend where every host is unreachable.
    pub fn new() -> RecordingBackend {
        RecordingBackend::default()
    }

    /// Scripts a host to answer with fixed pairs (builder style).
    pub fn with_answer(mut self, host: Ipv4Addr, pairs: Vec<(String, String)>) -> RecordingBackend {
        self.script.insert(host, ScriptedAnswer::Answer(pairs));
        self
    }

    /// Scripts a host to be silent (builder style).
    pub fn with_silent(mut self, host: Ipv4Addr) -> RecordingBackend {
        self.script.insert(host, ScriptedAnswer::Silent);
        self
    }

    /// Every `query_flow` call made so far, in order.
    pub fn recorded(&self) -> &[RecordedQuery] {
        &self.log
    }
}

impl QueryBackend for RecordingBackend {
    fn query_flow(
        &mut self,
        flow: &FiveTuple,
        targets: &[QueryTarget],
        keys: &[&str],
    ) -> FlowResponses {
        self.log.push(RecordedQuery {
            flow: *flow,
            targets: targets.to_vec(),
            keys: keys.iter().map(|k| k.to_string()).collect(),
        });
        let mut responses = FlowResponses::default();
        for &target in targets {
            self.stats.queries_sent += 1;
            responses.queries_issued += 1;
            let answer = match self.script.get(&target_addr(flow, target)) {
                Some(ScriptedAnswer::Answer(pairs)) => {
                    let mut response = Response::new(*flow);
                    let mut section = identxx_proto::Section::new();
                    for (k, v) in pairs {
                        section.push(k, v.as_str());
                    }
                    response.push_section(section);
                    Some(response)
                }
                Some(ScriptedAnswer::Silent) | None => None,
            };
            match &answer {
                Some(_) => self.stats.responses_received += 1,
                None => self.stats.timeouts += 1,
            }
            responses.set(target, answer);
        }
        responses
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &str {
        "recording"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The host address a target resolves to for a flow.
fn target_addr(flow: &FiveTuple, target: QueryTarget) -> Ipv4Addr {
    match target {
        QueryTarget::Source => flow.src_ip,
        QueryTarget::Destination => flow.dst_ip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_daemon::Daemon;
    use identxx_hostmodel::{Executable, Host};
    use identxx_proto::well_known;

    const BOTH_ENDS: &[QueryTarget] = &[QueryTarget::Source, QueryTarget::Destination];

    fn staged_directory() -> (DaemonDirectory, FiveTuple) {
        let mut directory = DaemonDirectory::new();
        let mut src = Daemon::bare(Host::new("src", Ipv4Addr::new(10, 0, 0, 1)));
        let exe = Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser");
        let flow =
            src.host_mut()
                .open_connection("alice", exe, 40000, Ipv4Addr::new(10, 0, 0, 2), 80);
        directory.register(src);
        directory.register(Daemon::bare(Host::new("dst", Ipv4Addr::new(10, 0, 0, 2))));
        (directory, flow)
    }

    #[test]
    fn in_process_backend_resolves_both_ends_and_counts() {
        let (directory, flow) = staged_directory();
        let mut backend = InProcessBackend::with_directory(directory);
        let responses = backend.query_flow(&flow, BOTH_ENDS, &[well_known::USER_ID]);
        assert_eq!(responses.queries_issued, 2);
        assert_eq!(
            responses.src.as_ref().unwrap().latest(well_known::USER_ID),
            Some("alice")
        );
        assert!(responses.dst.is_some());
        assert_eq!(backend.stats().queries_sent, 2);
        assert_eq!(backend.stats().responses_received, 2);
        assert_eq!(backend.stats().timeouts, 0);
        assert_eq!(backend.name(), "in-process");
    }

    #[test]
    fn in_process_backend_counts_missing_daemons_as_unanswered() {
        let (directory, _) = staged_directory();
        let mut backend = InProcessBackend::with_directory(directory);
        let stranger = FiveTuple::tcp([192, 168, 9, 9], 1, [10, 0, 0, 2], 80);
        let responses = backend.query_flow(&stranger, BOTH_ENDS, &[]);
        assert!(responses.src.is_none());
        assert!(responses.dst.is_some());
        assert_eq!(responses.queries_issued, 2);
        assert_eq!(backend.stats().timeouts, 1);
    }

    #[test]
    fn in_process_backend_honours_target_selection() {
        let (directory, flow) = staged_directory();
        let mut backend = InProcessBackend::with_directory(directory);
        let responses = backend.query_flow(&flow, &[QueryTarget::Destination], &[]);
        assert!(responses.src.is_none());
        assert!(responses.dst.is_some());
        assert_eq!(responses.queries_issued, 1);
        assert_eq!(backend.stats().queries_sent, 1);
    }

    #[test]
    fn recording_backend_scripts_and_records() {
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        let mut backend = RecordingBackend::new()
            .with_answer(
                Ipv4Addr::new(10, 0, 0, 1),
                vec![("name".to_string(), "skype".to_string())],
            )
            .with_silent(Ipv4Addr::new(10, 0, 0, 2));
        let responses = backend.query_flow(&flow, BOTH_ENDS, &["name"]);
        assert_eq!(responses.src.unwrap().latest("name"), Some("skype"));
        assert!(responses.dst.is_none());
        assert_eq!(backend.stats().queries_sent, 2);
        assert_eq!(backend.stats().responses_received, 1);
        assert_eq!(backend.stats().timeouts, 1);
        assert_eq!(backend.recorded().len(), 1);
        assert_eq!(backend.recorded()[0].flow, flow);
        assert_eq!(backend.recorded()[0].targets, BOTH_ENDS.to_vec());
        assert_eq!(backend.recorded()[0].keys, vec!["name".to_string()]);
        // Unscripted host: unreachable.
        let other = FiveTuple::tcp([10, 0, 0, 9], 1, [10, 0, 0, 1], 2);
        let responses = backend.query_flow(&other, &[QueryTarget::Source], &[]);
        assert!(responses.src.is_none());
        assert_eq!(backend.recorded().len(), 2);
    }

    #[test]
    fn default_query_flows_matches_sequential_query_flow() {
        let (directory, flow) = staged_directory();
        let mut batched = InProcessBackend::with_directory(directory);
        let (directory, _) = staged_directory();
        let mut sequential = InProcessBackend::with_directory(directory);

        let stranger = FiveTuple::tcp([192, 168, 9, 9], 1, [10, 0, 0, 2], 80);
        let requests = [
            FlowRequest {
                flow,
                targets: BOTH_ENDS,
                keys: &[well_known::USER_ID],
            },
            FlowRequest {
                flow: stranger,
                targets: &[QueryTarget::Source],
                keys: &[],
            },
        ];
        let batch = batched.query_flows(&requests);
        let singles: Vec<FlowResponses> = requests
            .iter()
            .map(|r| sequential.query_flow(&r.flow, r.targets, r.keys))
            .collect();
        assert_eq!(batch.len(), singles.len());
        for (b, s) in batch.iter().zip(&singles) {
            assert_eq!(b.queries_issued, s.queries_issued);
            assert_eq!(b.src.is_some(), s.src.is_some());
            assert_eq!(b.dst.is_some(), s.dst.is_some());
        }
        assert_eq!(batched.stats(), sequential.stats());
        assert_eq!(batched.stats().queries_sent, 3);
    }

    #[test]
    fn shared_directory_backend_matches_in_process_semantics() {
        let (directory, flow) = staged_directory();
        let shared = Arc::new(Mutex::new(directory));
        let mut a = SharedDirectoryBackend::new(Arc::clone(&shared));
        let mut b = SharedDirectoryBackend::new(Arc::clone(&shared));
        assert_eq!(a.name(), "shared-directory");

        // Both backends see the same daemons; counters stay per-backend.
        let responses = a.query_flow(&flow, BOTH_ENDS, &[well_known::USER_ID]);
        assert_eq!(
            responses.src.as_ref().unwrap().latest(well_known::USER_ID),
            Some("alice")
        );
        assert!(responses.dst.is_some());
        assert_eq!(a.stats().queries_sent, 2);
        assert_eq!(b.stats().queries_sent, 0);

        // A mutation through the shared handle is visible to every backend:
        // silencing the source daemon makes it unanswered for both.
        shared
            .lock()
            .unwrap()
            .get_mut(flow.src_ip)
            .unwrap()
            .set_silent(true);
        assert!(a.query_flow(&flow, BOTH_ENDS, &[]).src.is_none());
        assert!(b.query_flow(&flow, BOTH_ENDS, &[]).src.is_none());
        assert_eq!(a.stats().timeouts, 1);
        assert_eq!(b.stats().timeouts, 1);
    }

    #[test]
    fn shared_directory_backend_batches_like_singles() {
        let (directory, flow) = staged_directory();
        let shared = Arc::new(Mutex::new(directory));
        let mut batched = SharedDirectoryBackend::new(Arc::clone(&shared));
        let mut sequential = SharedDirectoryBackend::new(shared);
        let requests = [
            FlowRequest {
                flow,
                targets: BOTH_ENDS,
                keys: &[],
            },
            FlowRequest {
                flow: flow.reversed(),
                targets: &[QueryTarget::Destination],
                keys: &[],
            },
        ];
        let batch = batched.query_flows(&requests);
        let singles: Vec<FlowResponses> = requests
            .iter()
            .map(|r| sequential.query_flow(&r.flow, r.targets, r.keys))
            .collect();
        for (b, s) in batch.iter().zip(&singles) {
            assert_eq!(b.queries_issued, s.queries_issued);
            assert_eq!(b.src.is_some(), s.src.is_some());
            assert_eq!(b.dst.is_some(), s.dst.is_some());
        }
        assert_eq!(batched.stats(), sequential.stats());
    }

    #[tokio::test]
    async fn breaker_opens_after_consecutive_misses_and_recovers_via_half_open() {
        use identxx_net::DaemonServer;
        // A healthy server whose daemon is silent: every round connects fine
        // but yields no answer — the all-miss shape that must trip the
        // breaker without any endpoint churn.
        let h1 = Ipv4Addr::new(10, 0, 0, 1);
        let mut daemon = Daemon::bare(Host::new("h1", h1));
        let exe = Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser");
        let flow =
            daemon
                .host_mut()
                .open_connection("alice", exe, 40000, Ipv4Addr::new(10, 0, 0, 2), 80);
        daemon.set_silent(true);
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut backend = NetworkBackend::new()
            .with_budget(Duration::from_millis(500))
            .with_endpoint(h1, server.local_addr())
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown_rounds: 1,
            });

        let src_only = &[QueryTarget::Source][..];
        assert_eq!(backend.breaker_state_name(h1), "closed");
        assert!(backend.query_flow(&flow, src_only, &[]).src.is_none());
        assert_eq!(backend.breaker_state_name(h1), "closed");
        assert!(backend.query_flow(&flow, src_only, &[]).src.is_none());
        assert!(backend.breaker_is_open(h1), "two misses must open");
        let served_before_skip = server.queries_served();

        // Open round: the host is skipped entirely (no wire traffic), the
        // slot is still an unanswered query, and the breaker parks half-open.
        assert!(backend.query_flow(&flow, src_only, &[]).src.is_none());
        assert_eq!(server.queries_served(), served_before_skip);
        assert_eq!(backend.breaker_state_name(h1), "half-open");

        // The daemon recovers; the half-open probe closes the breaker.
        server.daemon().lock().await.set_silent(false);
        let probed = backend.query_flow(&flow, src_only, &[]);
        assert!(probed.src.is_some(), "half-open probe must reach the host");
        assert_eq!(backend.breaker_state_name(h1), "closed");
        // Timeouts were charged for every unanswered round, probes included.
        assert_eq!(backend.stats().queries_sent, 4);
        assert_eq!(backend.stats().timeouts, 3);
        assert_eq!(backend.stats().responses_received, 1);
        server.shutdown();
    }

    #[tokio::test]
    async fn breaker_reopens_when_the_half_open_probe_fails() {
        use identxx_net::DaemonServer;
        let h1 = Ipv4Addr::new(10, 0, 0, 1);
        let mut daemon = Daemon::bare(Host::new("h1", h1));
        daemon.set_silent(true);
        let flow = FiveTuple::tcp(h1, 40000, [10, 0, 0, 2], 80);
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut backend = NetworkBackend::new()
            .with_budget(Duration::from_millis(500))
            .with_endpoint(h1, server.local_addr())
            .with_breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown_rounds: 2,
            });
        let src_only = &[QueryTarget::Source][..];
        backend.query_flow(&flow, src_only, &[]); // miss → open(2)
        assert!(backend.breaker_is_open(h1));
        backend.query_flow(&flow, src_only, &[]); // skipped, open(1)
        assert!(backend.breaker_is_open(h1));
        backend.query_flow(&flow, src_only, &[]); // skipped → half-open
        assert_eq!(backend.breaker_state_name(h1), "half-open");
        backend.query_flow(&flow, src_only, &[]); // failed probe → reopen
        assert!(backend.breaker_is_open(h1));
        server.shutdown();
    }

    #[tokio::test]
    async fn drill_partition_cuts_a_host_off_until_the_window_ends() {
        use identxx_daemon::{FaultPlan, Window};
        use identxx_net::DaemonServer;
        let h1 = Ipv4Addr::new(10, 0, 0, 1);
        let mut daemon = Daemon::bare(Host::new("h1", h1));
        let exe = Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser");
        let flow =
            daemon
                .host_mut()
                .open_connection("alice", exe, 40000, Ipv4Addr::new(10, 0, 0, 2), 80);
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let injector = FaultPlan::new(1)
            .partition(h1, Window::between(100, 200))
            .injector();
        let mut backend = NetworkBackend::new()
            .with_budget(Duration::from_millis(500))
            .with_endpoint(h1, server.local_addr())
            .with_fault_injector(Arc::clone(&injector));
        let src_only = &[QueryTarget::Source][..];
        assert!(backend.query_flow(&flow, src_only, &[]).src.is_some());
        let served = server.queries_served();
        injector.advance_to(150);
        // Partition active: no wire traffic at all, slot unanswered.
        assert!(backend.query_flow(&flow, src_only, &[]).src.is_none());
        assert_eq!(server.queries_served(), served);
        injector.advance_to(200);
        assert!(
            backend.query_flow(&flow, src_only, &[]).src.is_some(),
            "connectivity returns the microsecond the window closes"
        );
        server.shutdown();
    }

    #[test]
    fn network_backend_unknown_endpoint_is_unanswered() {
        let mut backend = NetworkBackend::new().with_budget(Duration::from_millis(100));
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        let responses = backend.query_flow(&flow, BOTH_ENDS, &[]);
        assert!(responses.src.is_none());
        assert!(responses.dst.is_none());
        assert_eq!(responses.queries_issued, 2);
        assert_eq!(backend.stats().timeouts, 2);
        assert_eq!(backend.name(), "network");
    }
}
