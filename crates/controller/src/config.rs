//! Controller configuration.

use identxx_crypto::KeyRegistry;
use identxx_pf::{CacheGranularity, ConfigSet, Decision, PfError, RuleSet};

/// Everything the controller needs besides the live network: its `.control`
/// policy files, the public keys it trusts for `verify`, the named group
/// lists referenced by `member`, and operating defaults.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// The `.control` configuration files (concatenated in name order).
    pub control_files: ConfigSet,
    /// Public keys trusted by name (in addition to keys inlined in `dict`
    /// definitions inside the policy).
    pub trusted_keys: KeyRegistry,
    /// Named lists for `member(x, <name>)` (e.g. the `users` group).
    pub named_lists: Vec<(String, Vec<String>)>,
    /// Decision applied when no rule matches. The paper's configurations all
    /// start with `block all`, but PF's native default is pass; keeping this
    /// explicit lets experiments compare both.
    pub default_decision: Decision,
    /// Idle timeout for installed flow entries, in microseconds.
    pub flow_idle_timeout: u64,
    /// Hard timeout for installed flow entries, in microseconds (0 = none).
    pub flow_hard_timeout: u64,
    /// Whether the controller keeps its own state table so repeat flows skip
    /// the ident++ query cycle (the "rule cache" of §2). Disabling it is the
    /// ablation used in the flow-setup experiment.
    pub use_state_table: bool,
    /// How much of the 5-tuple keys a state-table entry. The exact-tuple
    /// default only serves literal repeats; host-pair(+service-port) keys
    /// let the cache warm under workloads with ephemeral source ports
    /// (the E8b locality sweep).
    pub cache_granularity: CacheGranularity,
    /// Whether to install a drop entry for denied flows (so follow-up packets
    /// of a denied flow do not hit the controller again).
    pub install_drop_entries: bool,
    /// Acknowledges that the policy contains port-constrained rules while the
    /// cache granularity erases ports from the state key, so a cached verdict
    /// can be replayed for flows the rule would have treated differently. The
    /// controller always records the affected rules in the audit log's policy
    /// notes; in debug builds it additionally panics unless this flag is set
    /// (the E8b locality sweep sets it deliberately).
    pub acknowledge_coarse_cache: bool,
    /// Denies any flow whose identity queries went unanswered — a silent
    /// daemon, a partitioned host, an open circuit breaker, a half-answered
    /// batch frame — with an explicit `fail-closed` policy note instead of
    /// evaluating the policy over the missing responses. The deny is never
    /// cached, so decisions return to the baseline as soon as answers are
    /// obtainable again. Off by default: the paper's default-deny policies
    /// already block on missing identity, and experiments compare both
    /// behaviours (DESIGN.md §9).
    pub fail_closed_on_unanswered: bool,
    /// Capacity of the `verify()` verdict cache (entries). Each distinct
    /// delegation bundle pays ed25519 curve math once; repeats cost one hash
    /// plus a window check. Capped like the state table so hostile response
    /// churn cannot grow controller memory.
    pub verify_cache_capacity: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            control_files: ConfigSet::new(),
            trusted_keys: KeyRegistry::new(),
            named_lists: Vec::new(),
            default_decision: Decision::Block,
            flow_idle_timeout: 30_000_000, // 30 s
            flow_hard_timeout: 0,
            use_state_table: true,
            cache_granularity: CacheGranularity::ExactFiveTuple,
            install_drop_entries: true,
            acknowledge_coarse_cache: false,
            fail_closed_on_unanswered: false,
            verify_cache_capacity: identxx_crypto::verify_cache::DEFAULT_VERIFY_CACHE_CAPACITY,
        }
    }
}

impl ControllerConfig {
    /// Creates a configuration with defaults and no policy.
    pub fn new() -> Self {
        ControllerConfig::default()
    }

    /// Adds a `.control` file (builder style).
    pub fn with_control_file(
        mut self,
        name: impl Into<String>,
        contents: impl Into<String>,
    ) -> Self {
        self.control_files.add_file(name, contents);
        self
    }

    /// Adds a trusted public key by name (builder style).
    pub fn with_trusted_key(
        mut self,
        name: impl Into<String>,
        key: identxx_crypto::PublicKey,
    ) -> Self {
        self.trusted_keys.insert(name, key);
        self
    }

    /// Adds a named list (builder style).
    pub fn with_named_list(mut self, name: impl Into<String>, members: Vec<String>) -> Self {
        self.named_lists.push((name.into(), members));
        self
    }

    /// Sets the default decision (builder style).
    pub fn with_default_decision(mut self, decision: Decision) -> Self {
        self.default_decision = decision;
        self
    }

    /// Disables the controller-side state table (ablation).
    pub fn without_state_table(mut self) -> Self {
        self.use_state_table = false;
        self
    }

    /// Sets the state-table key granularity (builder style).
    pub fn with_cache_granularity(mut self, granularity: CacheGranularity) -> Self {
        self.cache_granularity = granularity;
        self
    }

    /// Accepts port-constrained rules under a coarse cache granularity
    /// (builder style); see
    /// [`acknowledge_coarse_cache`](Self::acknowledge_coarse_cache).
    pub fn with_coarse_cache_acknowledged(mut self) -> Self {
        self.acknowledge_coarse_cache = true;
        self
    }

    /// Denies flows with unanswered identity queries outright (builder
    /// style); see
    /// [`fail_closed_on_unanswered`](Self::fail_closed_on_unanswered).
    pub fn with_fail_closed_on_unanswered(mut self) -> Self {
        self.fail_closed_on_unanswered = true;
        self
    }

    /// Sets the `verify()` verdict-cache capacity (builder style); see
    /// [`verify_cache_capacity`](Self::verify_cache_capacity).
    pub fn with_verify_cache_capacity(mut self, capacity: usize) -> Self {
        self.verify_cache_capacity = capacity;
        self
    }

    /// Compiles the `.control` files into a rule set.
    pub fn compile(&self) -> Result<RuleSet, PfError> {
        self.control_files.compile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_crypto::KeyPair;

    #[test]
    fn builder_accumulates_settings() {
        let key = KeyPair::from_seed(b"Secur");
        let config = ControllerConfig::new()
            .with_control_file("00-base.control", "block all\n")
            .with_control_file("50-skype.control", "pass all with eq(@src[name], skype)\n")
            .with_trusted_key("Secur", key.public())
            .with_named_list("users", vec!["users".to_string()])
            .with_default_decision(Decision::Pass);
        assert_eq!(config.control_files.len(), 2);
        assert_eq!(config.trusted_keys.get("Secur"), Some(key.public()));
        assert_eq!(config.named_lists.len(), 1);
        assert_eq!(config.default_decision, Decision::Pass);
        let rs = config.compile().unwrap();
        assert_eq!(rs.rules.len(), 2);
    }

    #[test]
    fn defaults_are_conservative() {
        let config = ControllerConfig::default();
        assert_eq!(config.default_decision, Decision::Block);
        assert!(config.use_state_table);
        assert!(config.install_drop_entries);
        assert!(config.flow_idle_timeout > 0);
        let ablated = ControllerConfig::new().without_state_table();
        assert!(!ablated.use_state_table);
    }

    #[test]
    fn compile_errors_surface() {
        let config = ControllerConfig::new().with_control_file("00-bad.control", "pass from\n");
        assert!(config.compile().is_err());
    }
}
