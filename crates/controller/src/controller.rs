//! The ident++ controller.

use std::sync::Arc;

use identxx_crypto::{SignedBundle, VerifyCache, VerifyCacheStats};
use identxx_pf::{
    CompiledPolicy, Decision, EvalContext, PfError, PolicyCompiler, RuleSet, StateTable, Verdict,
};
use identxx_proto::{well_known, FiveTuple, Response};

use identxx_openflow::{ControllerDirective, FlowMod, OpenFlowController, PacketIn};

use crate::audit::{AuditLog, AuditRecord, PolicyNote};
use crate::backend::{BackendStats, InProcessBackend, QueryBackend, SharedDirectoryBackend};
use crate::config::ControllerConfig;
use crate::install::NetworkMap;
use crate::intercept::{Interceptor, QueryTarget, ResponseAugmenter};
use crate::querier::DaemonDirectory;

/// The keys the controller asks for by default. The hint list is advisory
/// (§3.2); the daemons may return more.
const DEFAULT_QUERY_KEYS: &[&str] = &[
    well_known::USER_ID,
    well_known::GROUP_ID,
    well_known::APP_NAME,
    well_known::EXE_HASH,
    well_known::VERSION,
    well_known::REQUIREMENTS,
    well_known::REQ_SIG,
    well_known::RULE_MAKER,
    well_known::OS_PATCH,
];

/// Priority used for flow entries installed by the controller.
const FLOW_ENTRY_PRIORITY: u16 = 100;

/// The outcome of the controller's handling of one new flow.
#[derive(Debug, Clone)]
pub struct FlowDecision {
    /// The flow the decision is about.
    pub flow: FiveTuple,
    /// The policy verdict.
    pub verdict: Verdict,
    /// The source-side ident++ response (if any was obtained).
    pub src_response: Option<Response>,
    /// The destination-side ident++ response (if any was obtained).
    pub dst_response: Option<Response>,
    /// Whether the decision came from the controller's state table without a
    /// fresh query/evaluation cycle.
    pub from_cache: bool,
    /// How many ident++ queries were sent to daemons for this decision.
    pub queries_issued: u32,
    /// The flow-table entries the controller wants installed.
    pub flow_mods: Vec<FlowMod>,
}

impl FlowDecision {
    /// Whether the flow is allowed.
    pub fn is_pass(&self) -> bool {
        self.verdict.decision.is_pass()
    }
}

/// The ident++ controller: policy, query backend, optional network map,
/// state table, interceptors/augmenters, and the audit log.
pub struct IdentxxController {
    config: ControllerConfig,
    ruleset: RuleSet,
    /// The ruleset lowered into its allocation-free evaluation form; rebuilt
    /// whenever a `.control` file changes.
    compiled: CompiledPolicy,
    /// The query plane: how (and over what transport) the controller reaches
    /// the end-host daemons. Defaults to [`InProcessBackend`].
    backend: Box<dyn QueryBackend>,
    network: Option<NetworkMap>,
    state: StateTable,
    audit: AuditLog,
    interceptors: Vec<Box<dyn Interceptor>>,
    augmenters: Vec<Box<dyn ResponseAugmenter>>,
    /// The amortized `verify()` plane: shared with the compiled policy (and
    /// every interpreter context it spawns), drained into audit notes after
    /// each decision, prewarmed by `decide_batch`.
    verify_cache: Arc<VerifyCache>,
    /// A compromised controller (§5.1) stops enforcing anything.
    compromised: bool,
}

impl IdentxxController {
    /// Creates a controller from a configuration, compiling its `.control`
    /// files.
    ///
    /// Construction also performs the cheap static checks: every rule the
    /// compiler's dead-rule elimination dropped is recorded as a policy note
    /// in the audit log (the administrator should know which delegated rules
    /// can never decide anything), and rules whose ports the configured
    /// [`identxx_pf::CacheGranularity`] erases from the state key are noted
    /// as well. In debug builds the latter additionally panics unless
    /// [`ControllerConfig::acknowledge_coarse_cache`] is set, because a
    /// coarse cache silently replays verdicts across ports such rules
    /// distinguish.
    pub fn new(config: ControllerConfig) -> Result<IdentxxController, PfError> {
        let ruleset = config.compile()?;
        let verify_cache = Arc::new(VerifyCache::with_capacity(config.verify_cache_capacity));
        let compiled = Self::compile_policy(&config, &ruleset, &verify_cache);
        let state = StateTable::new().with_granularity(config.cache_granularity);
        let mut audit = AuditLog::new();
        for dead in compiled.dead_rules() {
            // Unmatchable rules (unreachable matcher-tree leaves) get their
            // own category: the fix is editing the rule itself, not the
            // ordering around it.
            let category = match dead.reason {
                identxx_pf::DeadRuleReason::Unmatchable { .. } => "unmatchable-rule",
                _ => "shadowed-rule",
            };
            audit.push_note(PolicyNote {
                category: category.to_string(),
                line: dead.line,
                message: format!("rule never decides any flow: {}", dead.reason),
            });
        }
        if config.use_state_table {
            // The field-aware variant reuses the freshly compiled policy
            // (no second compile) and skips rules proven dead above.
            let hazards = identxx_pf::analyze::granularity_diagnostics_with(
                &ruleset,
                config.cache_granularity,
                &compiled,
            );
            debug_assert!(
                hazards.is_empty() || config.acknowledge_coarse_cache,
                "policy has port-constrained rules the {:?} cache granularity cannot key \
                 (acknowledge with ControllerConfig::with_coarse_cache_acknowledged): {}",
                config.cache_granularity,
                hazards
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            );
            for hazard in hazards {
                audit.push_note(PolicyNote {
                    category: hazard.category.as_str().to_string(),
                    line: hazard.span.line,
                    message: hazard.message,
                });
            }
        }
        Ok(IdentxxController {
            config,
            ruleset,
            compiled,
            backend: Box::new(InProcessBackend::new()),
            network: None,
            state,
            audit,
            interceptors: Vec::new(),
            augmenters: Vec::new(),
            verify_cache,
            compromised: false,
        })
    }

    /// Attaches a network map so decisions install entries along the whole
    /// path (builder style).
    pub fn with_network(mut self, network: NetworkMap) -> Self {
        self.network = Some(network);
        self
    }

    /// Replaces the query backend (builder style): e.g. a
    /// [`crate::backend::NetworkBackend`] to query real daemons over TCP, or
    /// a [`crate::backend::RecordingBackend`] in tests.
    pub fn with_backend(mut self, backend: Box<dyn QueryBackend>) -> Self {
        self.set_backend(backend);
        self
    }

    /// Replaces the query backend in place (what
    /// [`crate::ShardedController::with_backends`] uses to equip each shard).
    pub fn set_backend(&mut self, backend: Box<dyn QueryBackend>) {
        self.backend = backend;
    }

    /// The query backend.
    pub fn backend(&self) -> &dyn QueryBackend {
        self.backend.as_ref()
    }

    /// Mutable access to the query backend (e.g. to register endpoints on a
    /// network backend while the controller runs).
    pub fn backend_mut(&mut self) -> &mut dyn QueryBackend {
        self.backend.as_mut()
    }

    /// The backend's transport counters (queries sent / answered / not).
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Registers an end-host daemon with the in-process backend (owned or
    /// shared-directory flavor; registering through a shared directory is
    /// visible to every shard over the same handle).
    ///
    /// # Panics
    ///
    /// Panics when the controller runs over a network or recording backend —
    /// network deployments register daemon endpoints on the
    /// [`crate::backend::NetworkBackend`] instead.
    pub fn register_daemon(&mut self, daemon: identxx_daemon::Daemon) {
        if let Some(directory) = self.shared_daemons() {
            directory
                .lock()
                .expect("shared daemon directory poisoned")
                .register(daemon);
            return;
        }
        self.daemons_mut().register(daemon);
    }

    /// Access to the in-process backend's daemon directory.
    ///
    /// # Panics
    ///
    /// Panics when the controller runs over a different backend; simulator
    /// scenarios (the only callers) always use the in-process default.
    pub fn daemons(&self) -> &DaemonDirectory {
        self.backend
            .as_any()
            .downcast_ref::<InProcessBackend>()
            .expect("daemons(): controller is not using the in-process backend")
            .directory()
    }

    /// Mutable access to the in-process backend's daemon directory (scenarios
    /// use this to start applications or compromise hosts).
    ///
    /// # Panics
    ///
    /// Panics when the controller runs over a different backend.
    pub fn daemons_mut(&mut self) -> &mut DaemonDirectory {
        self.backend
            .as_any_mut()
            .downcast_mut::<InProcessBackend>()
            .expect("daemons_mut(): controller is not using the in-process backend")
            .directory_mut()
    }

    /// The shared daemon directory handle, when this controller queries
    /// through a [`SharedDirectoryBackend`] (the sharded-tier configuration
    /// where N shards see one daemon population). `None` on any other
    /// backend. This is the population-churn hook: registering or
    /// unregistering through the handle is immediately visible to every
    /// shard sharing it.
    pub fn shared_daemons(&self) -> Option<std::sync::Arc<std::sync::Mutex<DaemonDirectory>>> {
        self.backend
            .as_any()
            .downcast_ref::<SharedDirectoryBackend>()
            .map(SharedDirectoryBackend::directory)
    }

    /// Removes an end-host daemon from the query plane (population churn:
    /// the host left the network). Works over both in-process backend
    /// flavors; returns whether the daemon was present.
    ///
    /// # Panics
    ///
    /// Panics when the controller runs over a network or recording backend —
    /// those model daemon departure by dropping the endpoint or the scripted
    /// answer instead.
    pub fn unregister_daemon(&mut self, addr: identxx_proto::Ipv4Addr) -> bool {
        if let Some(directory) = self.shared_daemons() {
            return directory
                .lock()
                .expect("shared daemon directory poisoned")
                .unregister(addr)
                .is_some();
        }
        self.daemons_mut().unregister(addr).is_some()
    }

    /// Lowers a parsed ruleset into the evaluation-ready form, carrying the
    /// configuration's default decision, trusted keys, named lists, and the
    /// shared verify cache.
    fn compile_policy(
        config: &ControllerConfig,
        ruleset: &RuleSet,
        verify_cache: &Arc<VerifyCache>,
    ) -> CompiledPolicy {
        let mut compiler = PolicyCompiler::new()
            .with_default(config.default_decision)
            .with_key_registry(config.trusted_keys.clone())
            .with_verify_cache(Arc::clone(verify_cache));
        for (name, members) in &config.named_lists {
            compiler = compiler.with_named_list(name.clone(), members.clone());
        }
        compiler.compile(ruleset)
    }

    /// The parsed policy.
    pub fn ruleset(&self) -> &RuleSet {
        &self.ruleset
    }

    /// The policy in its compiled (allocation-free evaluation) form.
    pub fn compiled_policy(&self) -> &CompiledPolicy {
        &self.compiled
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The network map, if attached.
    pub fn network(&self) -> Option<&NetworkMap> {
        self.network.as_ref()
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Adds a query interceptor (answers queries on behalf of hosts).
    pub fn add_interceptor(&mut self, interceptor: Box<dyn Interceptor>) {
        self.interceptors.push(interceptor);
    }

    /// Adds a response augmenter (appends sections to responses).
    pub fn add_augmenter(&mut self, augmenter: Box<dyn ResponseAugmenter>) {
        self.augmenters.push(augmenter);
    }

    /// Marks the controller as compromised (§5.1): every flow is allowed and
    /// nothing is audited, modelling an attacker who disabled protection.
    pub fn set_compromised(&mut self, compromised: bool) {
        self.compromised = compromised;
    }

    /// Whether the controller is compromised.
    pub fn is_compromised(&self) -> bool {
        self.compromised
    }

    /// Replaces (or adds) one `.control` file and recompiles the policy. The
    /// state table is cleared because cached decisions may no longer reflect
    /// the policy.
    pub fn update_control_file(
        &mut self,
        name: impl Into<String>,
        contents: impl Into<String>,
    ) -> Result<(), PfError> {
        self.config.control_files.add_file(name, contents);
        self.ruleset = self.config.compile()?;
        // The verify cache survives recompiles: verdicts are content-addressed
        // (signature × key × items), so no policy change can invalidate them.
        self.compiled = Self::compile_policy(&self.config, &self.ruleset, &self.verify_cache);
        self.state.clear();
        Ok(())
    }

    /// Removes a `.control` file (revoking, say, a third party's delegated
    /// rules) and recompiles.
    pub fn remove_control_file(&mut self, name: &str) -> Result<bool, PfError> {
        let removed = self.config.control_files.remove(name);
        if removed {
            self.ruleset = self.config.compile()?;
            self.compiled = Self::compile_policy(&self.config, &self.ruleset, &self.verify_cache);
            self.state.clear();
        }
        Ok(removed)
    }

    /// Revokes previously allowed flows selected by `pred`: their state-table
    /// entries are dropped and delete `flow-mod`s are produced for the network
    /// (when a network map is attached).
    pub fn revoke_where<F: Fn(&AuditRecord) -> bool>(&mut self, pred: F) -> Vec<FlowMod> {
        let mut mods = Vec::new();
        let flows: Vec<FiveTuple> = self
            .audit
            .records()
            .iter()
            .filter(|r| r.decision == Decision::Pass && pred(r))
            .map(|r| r.flow)
            .collect();
        for flow in flows {
            self.state.remove(&flow);
            if let Some(network) = &self.network {
                for direction in [flow, flow.reversed()] {
                    if let Some(hops) = network.switch_hops(&direction) {
                        for (switch, _port) in hops {
                            mods.push(FlowMod::delete(
                                switch,
                                identxx_openflow::FlowMatch::exact_five_tuple(&direction),
                            ));
                        }
                    }
                }
            }
        }
        mods
    }

    /// Evaluates the policy for a flow given already-collected responses,
    /// without touching daemons, cache, or audit log. Used on the flow-setup
    /// path, by benchmarks, and by `allowed()`-style re-checks.
    ///
    /// This runs against the compiled policy — the allocation-free fast
    /// path. [`IdentxxController::evaluate_interpreted`] runs the reference
    /// interpreter over the same configuration.
    pub fn evaluate_only(
        &self,
        flow: &FiveTuple,
        src: Option<&Response>,
        dst: Option<&Response>,
    ) -> Verdict {
        self.evaluate_only_at(flow, src, dst, 0)
    }

    /// [`IdentxxController::evaluate_only`] at logical time `now`
    /// (microseconds): `verify()` checks short-lived bundles' validity
    /// windows against it. The decision cycle uses the decision's own clock;
    /// `evaluate_only` is the `now = 0` convenience for callers without one.
    pub fn evaluate_only_at(
        &self,
        flow: &FiveTuple,
        src: Option<&Response>,
        dst: Option<&Response>,
        now: u64,
    ) -> Verdict {
        self.compiled.evaluate_at(flow, src, dst, now)
    }

    /// Evaluates the same policy through the AST interpreter (the reference
    /// oracle the compiled form is property-tested against). Benchmarks use
    /// this to measure the compiled speedup; production paths should prefer
    /// [`IdentxxController::evaluate_only`].
    pub fn evaluate_interpreted(
        &self,
        flow: &FiveTuple,
        src: Option<&Response>,
        dst: Option<&Response>,
    ) -> Verdict {
        let mut ctx = EvalContext::new(&self.ruleset)
            .with_default(self.config.default_decision)
            .with_key_registry(self.config.trusted_keys.clone());
        for (name, members) in &self.config.named_lists {
            ctx = ctx.with_named_list(name.clone(), members.clone());
        }
        if let Some(src) = src {
            ctx = ctx.with_src_response(src);
        }
        if let Some(dst) = dst {
            ctx = ctx.with_dst_response(dst);
        }
        ctx.evaluate(flow)
    }

    /// Runs the full ident++ decision cycle for a flow at simulated time
    /// `now` (microseconds): state-table check, queries to both ends (unless
    /// intercepted), policy evaluation, state/audit updates, and flow-mod
    /// generation.
    pub fn decide(&mut self, flow: &FiveTuple, now: u64) -> FlowDecision {
        if self.compromised {
            return self.compromised_decision(flow);
        }
        if let Some(cached) = self.cached_decision(flow, now) {
            return cached;
        }
        // Resolve both ends in one backend call (interceptors answer first;
        // an intercepted query is never forwarded, §3.4). Nothing reaches
        // the backend when interceptors answered for both ends — so a
        // recording backend logs no spurious zero-target call.
        let (mut src_response, mut dst_response, targets, target_count) =
            self.intercept_phase(flow);
        let queries_issued = if target_count > 0 {
            let queried =
                self.backend
                    .query_flow(flow, &targets[..target_count], DEFAULT_QUERY_KEYS);
            src_response = src_response.or(queried.src);
            dst_response = dst_response.or(queried.dst);
            queried.queries_issued
        } else {
            0
        };
        if self.config.fail_closed_on_unanswered
            && Self::queried_but_unanswered(&targets[..target_count], &src_response, &dst_response)
        {
            return self.fail_closed_decision(
                flow,
                src_response,
                dst_response,
                queries_issued,
                now,
            );
        }
        self.finish_decision(flow, src_response, dst_response, queries_issued, now)
    }

    /// Runs the decision cycle for a whole batch of flows with **one**
    /// backend query round ([`QueryBackend::query_flows`]) covering every
    /// flow the cache and interceptors could not settle.
    ///
    /// Per-flow **decisions** match a sequential [`IdentxxController::decide`]
    /// loop exactly — including flows within one batch that share a cache
    /// key (a repeat, a reverse flow, a coarse-granularity alias): the
    /// cache is re-checked as each queried flow is finished, so a state
    /// entry written by an earlier flow of the batch serves the later one
    /// just as it would sequentially. At batch size 1 the paths are
    /// identical in every observable. The two batch-level differences are
    /// accounting, not decisions: queries for intra-batch cache aliases
    /// have already been sent by the time the alias hits (the backend
    /// counts that speculative work; sequential deciding would have
    /// skipped it), and a batch's phase-1 cache-hit audit records precede
    /// the records of its queried flows.
    pub fn decide_batch(&mut self, flows: &[FiveTuple], now: u64) -> Vec<FlowDecision> {
        struct Pending {
            index: usize,
            flow: FiveTuple,
            src: Option<Response>,
            dst: Option<Response>,
            targets: [QueryTarget; 2],
            target_count: usize,
        }

        let mut decisions: Vec<Option<FlowDecision>> = (0..flows.len()).map(|_| None).collect();
        let mut pending: Vec<Pending> = Vec::new();
        for (index, flow) in flows.iter().enumerate() {
            if self.compromised {
                decisions[index] = Some(self.compromised_decision(flow));
            } else if let Some(cached) = self.cached_decision(flow, now) {
                decisions[index] = Some(cached);
            } else {
                let (src, dst, targets, target_count) = self.intercept_phase(flow);
                if target_count == 0 {
                    decisions[index] = Some(self.finish_decision(flow, src, dst, 0, now));
                } else {
                    pending.push(Pending {
                        index,
                        flow: *flow,
                        src,
                        dst,
                        targets,
                        target_count,
                    });
                }
            }
        }

        if !pending.is_empty() {
            let responses = {
                let requests: Vec<crate::backend::FlowRequest<'_>> = pending
                    .iter()
                    .map(|p| crate::backend::FlowRequest {
                        flow: p.flow,
                        targets: &p.targets[..p.target_count],
                        keys: DEFAULT_QUERY_KEYS,
                    })
                    .collect();
                self.backend.query_flows(&requests)
            };
            // Batch verification: warm the verify plane with each *distinct*
            // signed delegation bundle the responses carry, so a batch
            // presenting the same bundle N times pays its ed25519 curve math
            // once up front and every per-flow evaluation below hits the
            // cache. Prewarming records no audit events (the evaluations
            // record the real ones) and is correctness-neutral: a bundle
            // whose policy covers different items simply misses. Raw legacy
            // signatures carry no key id to resolve, so they skip the
            // prewarm and amortize through the cache from their first
            // evaluation instead.
            let mut prewarmed: Vec<&str> = Vec::new();
            for (p, queried) in pending.iter().zip(responses.iter()) {
                let ends = [
                    p.src.as_ref().or(queried.src.as_ref()),
                    p.dst.as_ref().or(queried.dst.as_ref()),
                ];
                for response in ends.into_iter().flatten() {
                    let Some(sig) = response.latest(well_known::REQ_SIG) else {
                        continue;
                    };
                    if prewarmed.contains(&sig) {
                        continue;
                    }
                    let Ok(bundle) = SignedBundle::from_hex(sig) else {
                        continue;
                    };
                    let Some(key) = self.config.trusted_keys.get(&bundle.key_id) else {
                        continue;
                    };
                    let items = [
                        response.latest(well_known::EXE_HASH).unwrap_or(""),
                        response
                            .latest(well_known::APP_NAME)
                            .or_else(|| response.latest(well_known::APP_NAME_ALT))
                            .unwrap_or(""),
                        response.latest(well_known::REQUIREMENTS).unwrap_or(""),
                    ];
                    self.verify_cache
                        .prewarm_hex_at(sig, &key.to_hex(), &items, now);
                    prewarmed.push(sig);
                }
            }
            for (p, queried) in pending.into_iter().zip(responses) {
                // Re-check the cache: an earlier flow of this very batch may
                // have inserted an entry this flow aliases (its repeat, its
                // reverse, a coarse-key sibling). Sequential deciding would
                // have served it from the cache, so the batch does too — the
                // already-sent query is speculative work, not a different
                // decision.
                decisions[p.index] = Some(match self.cached_decision(&p.flow, now) {
                    Some(cached) => cached,
                    None => {
                        let src = p.src.or(queried.src);
                        let dst = p.dst.or(queried.dst);
                        if self.config.fail_closed_on_unanswered
                            && Self::queried_but_unanswered(
                                &p.targets[..p.target_count],
                                &src,
                                &dst,
                            )
                        {
                            self.fail_closed_decision(
                                &p.flow,
                                src,
                                dst,
                                queried.queries_issued,
                                now,
                            )
                        } else {
                            self.finish_decision(&p.flow, src, dst, queried.queries_issued, now)
                        }
                    }
                });
            }
        }

        decisions
            .into_iter()
            .map(|d| d.expect("every flow in the batch is decided"))
            .collect()
    }

    /// §5.1: "If the controller is compromised, an attacker can disable all
    /// protection in the network." Every flow passes, nothing is audited.
    fn compromised_decision(&mut self, flow: &FiveTuple) -> FlowDecision {
        let verdict = Verdict {
            decision: Decision::Pass,
            matched_rule: None,
            matched_line: None,
            keep_state: false,
            quick: false,
            rules_evaluated: 0,
        };
        let flow_mods = self.mods_for(flow, Decision::Pass);
        FlowDecision {
            flow: *flow,
            verdict,
            src_response: None,
            dst_response: None,
            from_cache: false,
            queries_issued: 0,
            flow_mods,
        }
    }

    /// The controller-side rule cache (state table): a hit is a complete
    /// decision, audited as such, with no query round at all.
    fn cached_decision(&mut self, flow: &FiveTuple, now: u64) -> Option<FlowDecision> {
        if !self.config.use_state_table {
            return None;
        }
        let entry = self.state.lookup(flow, now)?;
        let verdict = Verdict {
            decision: entry.decision,
            matched_rule: None,
            matched_line: None,
            keep_state: true,
            quick: false,
            rules_evaluated: 0,
        };
        let flow_mods = self.mods_for(flow, entry.decision);
        self.audit.push(AuditRecord {
            time: now,
            flow: *flow,
            decision: entry.decision,
            matched_line: None,
            from_cache: true,
            src_user: None,
            src_app: None,
            dst_user: None,
            dst_app: None,
            rule_maker: None,
            queries_issued: 0,
        });
        Some(FlowDecision {
            flow: *flow,
            verdict,
            src_response: None,
            dst_response: None,
            from_cache: true,
            queries_issued: 0,
            flow_mods,
        })
    }

    /// Lets interceptors answer for each end and derives the list of ends
    /// the backend still has to resolve.
    fn intercept_phase(
        &mut self,
        flow: &FiveTuple,
    ) -> (Option<Response>, Option<Response>, [QueryTarget; 2], usize) {
        let src = self.intercepted_response(flow, QueryTarget::Source);
        let dst = self.intercepted_response(flow, QueryTarget::Destination);
        let mut targets = [QueryTarget::Source; 2];
        let mut target_count = 0;
        if src.is_none() {
            targets[target_count] = QueryTarget::Source;
            target_count += 1;
        }
        if dst.is_none() {
            targets[target_count] = QueryTarget::Destination;
            target_count += 1;
        }
        (src, dst, targets, target_count)
    }

    /// The post-query tail of a decision: augmentation, policy evaluation,
    /// state-table insert, audit record, and flow-mod generation.
    fn finish_decision(
        &mut self,
        flow: &FiveTuple,
        mut src_response: Option<Response>,
        mut dst_response: Option<Response>,
        queries_issued: u32,
        now: u64,
    ) -> FlowDecision {
        // Augment whatever responses exist with sections from on-path
        // controllers.
        if let Some(r) = src_response.as_mut() {
            self.augment_response(flow, QueryTarget::Source, r);
        }
        if let Some(r) = dst_response.as_mut() {
            self.augment_response(flow, QueryTarget::Destination, r);
        }

        let verdict =
            self.evaluate_only_at(flow, src_response.as_ref(), dst_response.as_ref(), now);

        // Attach what the verify plane did for this evaluation: every bundle
        // check records whether it was served from the cache, verified fresh,
        // rejected outside its window, forged, or not parseable at all.
        for event in self.verify_cache.drain_events() {
            let under = match &event.key_id {
                Some(key_id) => format!(" under key '{key_id}'"),
                None => String::new(),
            };
            self.audit.push_note(PolicyNote {
                category: event.outcome.as_str().to_string(),
                line: 0,
                message: format!(
                    "delegation bundle for {flow}{under}: {}",
                    event.outcome.as_str()
                ),
            });
        }

        if self.config.use_state_table && verdict.keep_state {
            self.state.insert(flow, verdict.decision, now);
        }
        let flow_mods = self.mods_for(flow, verdict.decision);
        let latest = |r: &Option<Response>, key: &str| -> Option<String> {
            r.as_ref().and_then(|r| r.latest(key)).map(str::to_string)
        };
        self.audit.push(AuditRecord {
            time: now,
            flow: *flow,
            decision: verdict.decision,
            matched_line: verdict.matched_line,
            from_cache: false,
            src_user: latest(&src_response, well_known::USER_ID),
            src_app: latest(&src_response, well_known::APP_NAME),
            dst_user: latest(&dst_response, well_known::USER_ID),
            dst_app: latest(&dst_response, well_known::APP_NAME),
            rule_maker: latest(&src_response, well_known::RULE_MAKER)
                .or_else(|| latest(&dst_response, well_known::RULE_MAKER)),
            queries_issued,
        });

        FlowDecision {
            flow: *flow,
            verdict,
            src_response,
            dst_response,
            from_cache: false,
            queries_issued,
            flow_mods,
        }
    }

    /// Whether any end the backend was actually asked about (interceptor
    /// answers never reach the backend) is still missing its response —
    /// i.e. the query went out and nothing came back before the deadline.
    fn queried_but_unanswered(
        targets: &[QueryTarget],
        src: &Option<Response>,
        dst: &Option<Response>,
    ) -> bool {
        targets.iter().any(|target| match target {
            QueryTarget::Source => src.is_none(),
            QueryTarget::Destination => dst.is_none(),
        })
    }

    /// The fail-closed deny: identity for one end of the flow was queried
    /// and never answered, so instead of evaluating policy over a missing
    /// response the controller denies outright, audits the decision, and
    /// explains itself with a `fail-closed` policy note. The deny is **not**
    /// written to the state table — the moment the daemon answers again the
    /// flow is re-decided against the real policy (DESIGN.md §9).
    fn fail_closed_decision(
        &mut self,
        flow: &FiveTuple,
        src_response: Option<Response>,
        dst_response: Option<Response>,
        queries_issued: u32,
        now: u64,
    ) -> FlowDecision {
        let verdict = Verdict {
            decision: Decision::Block,
            matched_rule: None,
            matched_line: None,
            keep_state: false,
            quick: false,
            rules_evaluated: 0,
        };
        let flow_mods = self.mods_for(flow, Decision::Block);
        let latest = |r: &Option<Response>, key: &str| -> Option<String> {
            r.as_ref().and_then(|r| r.latest(key)).map(str::to_string)
        };
        self.audit.push(AuditRecord {
            time: now,
            flow: *flow,
            decision: Decision::Block,
            matched_line: None,
            from_cache: false,
            src_user: latest(&src_response, well_known::USER_ID),
            src_app: latest(&src_response, well_known::APP_NAME),
            dst_user: latest(&dst_response, well_known::USER_ID),
            dst_app: latest(&dst_response, well_known::APP_NAME),
            rule_maker: None,
            queries_issued,
        });
        self.audit.push_note(PolicyNote {
            category: "fail-closed".to_string(),
            line: 0,
            message: format!(
                "identity for {flow} unobtainable (src answered: {}, dst answered: {}): \
                 denied fail-closed, decision not cached",
                src_response.is_some(),
                dst_response.is_some(),
            ),
        });
        FlowDecision {
            flow: *flow,
            verdict,
            src_response,
            dst_response,
            from_cache: false,
            queries_issued,
            flow_mods,
        }
    }

    /// Lets interceptors answer a query on behalf of one end; `Some` means
    /// the query must not be forwarded to the backend.
    fn intercepted_response(&mut self, flow: &FiveTuple, target: QueryTarget) -> Option<Response> {
        let addr = match target {
            QueryTarget::Source => flow.src_ip,
            QueryTarget::Destination => flow.dst_ip,
        };
        self.interceptors
            .iter_mut()
            .find_map(|interceptor| interceptor.answer_for(addr, flow, target))
    }

    /// Applies every augmenter to one end's response in registration order.
    fn augment_response(&mut self, flow: &FiveTuple, target: QueryTarget, response: &mut Response) {
        for augmenter in &mut self.augmenters {
            if let Some(section) = augmenter.augment(flow, target, response) {
                response.augment(section);
            }
        }
    }

    fn mods_for(&self, flow: &FiveTuple, decision: Decision) -> Vec<FlowMod> {
        match &self.network {
            Some(network) => match decision {
                Decision::Pass => network.allow_flow_mods(
                    flow,
                    FLOW_ENTRY_PRIORITY,
                    self.config.flow_idle_timeout,
                    self.config.flow_hard_timeout,
                ),
                Decision::Block if self.config.install_drop_entries => {
                    network.drop_flow_mods(flow, FLOW_ENTRY_PRIORITY, self.config.flow_idle_timeout)
                }
                Decision::Block => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// The verify plane's counters: cache hits/misses/evictions and how many
    /// bundles resolved valid, expired, not-yet-valid, forged, or
    /// unparseable.
    pub fn verify_stats(&self) -> VerifyCacheStats {
        self.verify_cache.stats()
    }

    /// The shared `verify()` verdict cache (read access, for tests and
    /// experiments).
    pub fn verify_cache(&self) -> &VerifyCache {
        &self.verify_cache
    }

    /// The controller's state table (read access, for tests and experiments).
    pub fn state_table(&self) -> &StateTable {
        &self.state
    }

    /// Mutable state-table access for the sharding layer's reshard handoff
    /// (crate-internal: arbitrary external mutation would break the audit
    /// log's story of how each entry came to be).
    pub(crate) fn state_table_mut(&mut self) -> &mut StateTable {
        &mut self.state
    }

    /// Mutable audit-log access for the sharding layer's reshard handoff.
    pub(crate) fn audit_mut(&mut self) -> &mut AuditLog {
        &mut self.audit
    }
}

impl OpenFlowController for IdentxxController {
    fn packet_in(&mut self, event: &PacketIn, now: u64) -> ControllerDirective {
        let flow = event.header.five_tuple();
        let decision = self.decide(&flow, now);
        if decision.is_pass() {
            ControllerDirective::allow(decision.flow_mods)
        } else {
            ControllerDirective::deny_with(decision.flow_mods)
        }
    }

    fn name(&self) -> &str {
        "ident++"
    }
}

impl std::fmt::Debug for IdentxxController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdentxxController")
            .field("rules", &self.ruleset.rules.len())
            .field("backend", &self.backend.name())
            .field("audited", &self.audit.len())
            .field("compromised", &self.compromised)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_daemon::Daemon;
    use identxx_hostmodel::{Executable, Host};
    use identxx_netsim::{LinkProps, Topology};
    use identxx_proto::Ipv4Addr;

    fn skype(version: i64) -> Executable {
        Executable::new("/usr/bin/skype", "skype", version, "skype.com", "voip")
    }

    #[test]
    fn dead_rules_are_recorded_as_policy_notes() {
        let config = ControllerConfig::new().with_control_file(
            "00.control",
            "block from 10.0.0.1 to any\nblock all\npass quick all\npass from 10.0.0.2 to any\n",
        );
        let controller = IdentxxController::new(config).unwrap();
        let notes = controller.audit().policy_notes();
        assert!(
            notes.iter().any(|n| n.category == "shadowed-rule"),
            "{notes:?}"
        );
        // Rule 0 is superseded by the unconditional `block all`, rule 3 is
        // truncated behind `pass quick all`: both lines must be named.
        assert!(notes.iter().any(|n| n.line == 1), "{notes:?}");
        assert!(notes.iter().any(|n| n.line == 4), "{notes:?}");
    }

    #[test]
    fn coarse_cache_port_rules_are_noted_when_acknowledged() {
        let config = ControllerConfig::new()
            .with_control_file("00.control", "block all\npass from any to any port 80\n")
            .with_cache_granularity(identxx_pf::CacheGranularity::HostPair)
            .with_coarse_cache_acknowledged();
        let controller = IdentxxController::new(config).unwrap();
        let notes = controller.audit().policy_notes();
        assert!(
            notes
                .iter()
                .any(|n| n.category == "granularity-unsafe" && n.line == 2),
            "{notes:?}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "coarse_cache_acknowledged")]
    fn coarse_cache_port_rules_panic_in_debug_without_acknowledgement() {
        let config = ControllerConfig::new()
            .with_control_file("00.control", "block all\npass from any to any port 80\n")
            .with_cache_granularity(identxx_pf::CacheGranularity::HostPair);
        let _ = IdentxxController::new(config);
    }

    #[test]
    fn port_free_policy_is_safe_under_any_granularity() {
        let config = ControllerConfig::new()
            .with_control_file(
                "00.control",
                "block all\npass all with eq(@src[name], ssh)\n",
            )
            .with_cache_granularity(identxx_pf::CacheGranularity::HostPair);
        let controller = IdentxxController::new(config).unwrap();
        assert!(controller.audit().policy_notes().is_empty());
    }

    fn firefox() -> Executable {
        Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser")
    }

    /// A controller over a 10-host star with the Fig. 2 skype policy.
    fn skype_controller() -> (IdentxxController, Vec<Ipv4Addr>) {
        let (topology, _sw, _ctrl, hosts) = Topology::star(10, LinkProps::default());
        let addrs: Vec<Ipv4Addr> = hosts
            .iter()
            .map(|h| topology.node(*h).unwrap().addr)
            .collect();
        let header = format!(
            "table <server> {{ {} }}\ntable <lan> {{ 10.0.0.0/16 }}\nblock all\n",
            addrs[0]
        );
        let skype_policy =
            "pass all with eq(@src[name], skype) with eq(@dst[name], skype) keep state\n";
        let footer = "block all with eq(@src[name], skype) with lt(@src[version], 200)\nblock from any to <server> with eq(@src[name], skype)\n";
        let config = ControllerConfig::new()
            .with_control_file("00-local-header.control", header)
            .with_control_file("50-skype.control", skype_policy)
            .with_control_file("99-local-footer.control", footer);
        let mut controller = IdentxxController::new(config)
            .unwrap()
            .with_network(NetworkMap::new(topology));
        for addr in &addrs {
            controller.register_daemon(Daemon::bare(Host::new(format!("host-{addr}"), *addr)));
        }
        (controller, addrs)
    }

    fn start_skype(
        controller: &mut IdentxxController,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        version: i64,
    ) -> FiveTuple {
        let flow = controller
            .daemons_mut()
            .get_mut(src)
            .unwrap()
            .host_mut()
            .open_connection("alice", skype(version), 41000, dst, 80);
        let pid = controller
            .daemons_mut()
            .get_mut(dst)
            .unwrap()
            .host_mut()
            .spawn("bob", skype(version));
        controller
            .daemons_mut()
            .get_mut(dst)
            .unwrap()
            .host_mut()
            .listen(pid, identxx_proto::IpProtocol::Tcp, 80);
        flow
    }

    #[test]
    fn skype_to_skype_is_allowed_and_installed_along_path() {
        let (mut controller, addrs) = skype_controller();
        let flow = start_skype(&mut controller, addrs[3], addrs[4], 210);
        let decision = controller.decide(&flow, 0);
        assert!(decision.is_pass());
        assert_eq!(decision.queries_issued, 2);
        assert!(!decision.from_cache);
        // Star topology: one switch, both directions → 2 flow mods.
        assert_eq!(decision.flow_mods.len(), 2);
        assert_eq!(controller.audit().len(), 1);
        assert_eq!(
            controller.audit().records()[0].src_app.as_deref(),
            Some("skype")
        );
    }

    #[test]
    fn old_skype_and_skype_to_server_are_blocked() {
        let (mut controller, addrs) = skype_controller();
        // Old version: blocked by the footer rule.
        let old_flow = start_skype(&mut controller, addrs[5], addrs[6], 150);
        let decision = controller.decide(&old_flow, 0);
        assert!(!decision.is_pass());
        // Skype to the server table entry: blocked even with a new version.
        let to_server = start_skype(&mut controller, addrs[7], addrs[0], 210);
        let decision = controller.decide(&to_server, 0);
        assert!(!decision.is_pass());
        // A drop entry is installed at the first-hop switch.
        assert_eq!(decision.flow_mods.len(), 1);
    }

    #[test]
    fn non_skype_traffic_is_blocked_by_default_deny() {
        let (mut controller, addrs) = skype_controller();
        let flow = controller
            .daemons_mut()
            .get_mut(addrs[1])
            .unwrap()
            .host_mut()
            .open_connection("bob", firefox(), 42000, addrs[2], 80);
        let decision = controller.decide(&flow, 0);
        assert!(!decision.is_pass());
    }

    #[test]
    fn state_table_serves_repeat_flows_without_queries() {
        let (mut controller, addrs) = skype_controller();
        let flow = start_skype(&mut controller, addrs[3], addrs[4], 210);
        let first = controller.decide(&flow, 0);
        assert!(!first.from_cache);
        let second = controller.decide(&flow, 10);
        assert!(second.from_cache);
        assert_eq!(second.queries_issued, 0);
        assert!(second.is_pass());
        // The reverse direction also hits the cache.
        let reverse = controller.decide(&flow.reversed(), 20);
        assert!(reverse.from_cache);
        assert!((controller.audit().cache_hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn disabling_state_table_forces_requery() {
        let (topology, _sw, _ctrl, hosts) = Topology::star(4, LinkProps::default());
        let addrs: Vec<Ipv4Addr> = hosts
            .iter()
            .map(|h| topology.node(*h).unwrap().addr)
            .collect();
        let config = ControllerConfig::new()
            .with_control_file(
                "00.control",
                "block all\npass all with eq(@src[name], skype) keep state\n",
            )
            .without_state_table();
        let mut controller = IdentxxController::new(config).unwrap();
        for addr in &addrs {
            controller.register_daemon(Daemon::bare(Host::new(format!("h{addr}"), *addr)));
        }
        let flow = controller
            .daemons_mut()
            .get_mut(addrs[0])
            .unwrap()
            .host_mut()
            .open_connection("alice", skype(210), 41000, addrs[1], 80);
        controller.decide(&flow, 0);
        let second = controller.decide(&flow, 10);
        assert!(!second.from_cache);
        assert_eq!(second.queries_issued, 2);
    }

    #[test]
    fn missing_daemon_fails_closed_under_default_deny() {
        let (mut controller, addrs) = skype_controller();
        // A flow from an address with no registered daemon.
        let stranger = FiveTuple::tcp([192, 168, 99, 99], 1234, addrs[0], 80);
        let decision = controller.decide(&stranger, 0);
        assert!(!decision.is_pass());
        assert_eq!(decision.queries_issued, 2);
        assert!(decision.src_response.is_none());
    }

    #[test]
    fn interceptor_answers_for_legacy_hosts() {
        let (mut controller, addrs) = skype_controller();
        // The destination host has no daemon: unregister it.
        controller.daemons_mut().unregister(addrs[4]);
        // But an interceptor answers on its behalf claiming skype.
        controller.add_interceptor(Box::new(crate::intercept::StaticInterceptor::new(
            "legacy",
            vec![addrs[4]],
            vec![("name".to_string(), "skype".to_string())],
        )));
        let flow = controller
            .daemons_mut()
            .get_mut(addrs[3])
            .unwrap()
            .host_mut()
            .open_connection("alice", skype(210), 41000, addrs[4], 80);
        let decision = controller.decide(&flow, 0);
        assert!(decision.is_pass());
        // Only the source daemon was actually queried.
        assert_eq!(decision.queries_issued, 1);
    }

    #[test]
    fn augmenter_sections_are_visible_to_policy() {
        let (topology, _sw, _ctrl, hosts) = Topology::star(4, LinkProps::default());
        let addrs: Vec<Ipv4Addr> = hosts
            .iter()
            .map(|h| topology.node(*h).unwrap().addr)
            .collect();
        let config = ControllerConfig::new().with_control_file(
            "00.control",
            "block all\npass all with eq(@dst[branch-accepts], 80)\n",
        );
        let mut controller = IdentxxController::new(config).unwrap();
        for addr in &addrs {
            controller.register_daemon(Daemon::bare(Host::new(format!("h{addr}"), *addr)));
        }
        controller.add_augmenter(Box::new(crate::intercept::PrefixAugmenter::new(
            "branch",
            Ipv4Addr::new(10, 0, 0, 0),
            16,
            vec![("branch-accepts".to_string(), "80".to_string())],
        )));
        let flow = FiveTuple::tcp(addrs[0], 40000, addrs[1], 80);
        let decision = controller.decide(&flow, 0);
        assert!(decision.is_pass());
        assert_eq!(
            decision.dst_response.unwrap().latest("branch-accepts"),
            Some("80")
        );
    }

    #[test]
    fn policy_update_clears_cache_and_changes_decisions() {
        let (mut controller, addrs) = skype_controller();
        let flow = start_skype(&mut controller, addrs[3], addrs[4], 210);
        assert!(controller.decide(&flow, 0).is_pass());
        // The administrator revokes the skype delegation file entirely.
        assert!(controller.remove_control_file("50-skype.control").unwrap());
        let decision = controller.decide(&flow, 10);
        assert!(!decision.is_pass());
        assert!(
            !decision.from_cache,
            "cache must be cleared on policy change"
        );
        // Updating a file also recompiles.
        controller
            .update_control_file("50-skype.control", "pass all keep state\n")
            .unwrap();
        assert!(controller.decide(&flow, 20).is_pass());
        // A malformed update is rejected and does not change the policy.
        assert!(controller
            .update_control_file("50-skype.control", "pass from\n")
            .is_err());
    }

    #[test]
    fn revocation_produces_delete_mods_and_clears_state() {
        let (mut controller, addrs) = skype_controller();
        let flow = start_skype(&mut controller, addrs[3], addrs[4], 210);
        assert!(controller.decide(&flow, 0).is_pass());
        assert_eq!(controller.state_table().len(), 1);
        let mods = controller.revoke_where(|r| r.src_app.as_deref() == Some("skype"));
        assert!(!mods.is_empty());
        assert!(mods
            .iter()
            .all(|m| m.command == identxx_openflow::FlowModCommand::Delete));
        assert_eq!(controller.state_table().len(), 0);
        // Revoking something that never matched produces nothing.
        assert!(controller
            .revoke_where(|r| r.src_app.as_deref() == Some("nonexistent"))
            .is_empty());
    }

    #[test]
    fn compromised_controller_allows_everything() {
        let (mut controller, addrs) = skype_controller();
        controller.set_compromised(true);
        assert!(controller.is_compromised());
        let flow = FiveTuple::tcp(addrs[1], 1, addrs[0], 445);
        let decision = controller.decide(&flow, 0);
        assert!(decision.is_pass());
        assert_eq!(decision.queries_issued, 0);
    }

    #[test]
    fn packet_in_interface_matches_decide() {
        let (mut controller, addrs) = skype_controller();
        let flow = start_skype(&mut controller, addrs[3], addrs[4], 210);
        let header = identxx_openflow::PacketHeader::from_flow(&flow, 1);
        let pin = PacketIn {
            switch: identxx_openflow::SwitchId(0),
            header,
            size: 1500,
        };
        let directive = controller.packet_in(&pin, 0);
        assert!(directive.forward_packet);
        assert!(!directive.flow_mods.is_empty());
        assert_eq!(OpenFlowController::name(&controller), "ident++");
    }

    #[test]
    fn decide_batch_matches_sequential_decisions() {
        let (mut batch_ctl, addrs) = skype_controller();
        let (mut seq_ctl, _) = skype_controller();
        let f1 = start_skype(&mut batch_ctl, addrs[3], addrs[4], 210);
        let _ = start_skype(&mut seq_ctl, addrs[3], addrs[4], 210);
        let f2 = start_skype(&mut batch_ctl, addrs[5], addrs[6], 150);
        let _ = start_skype(&mut seq_ctl, addrs[5], addrs[6], 150);
        let stranger = FiveTuple::tcp([192, 168, 9, 9], 1234, addrs[0], 80);
        let flows = vec![f1, f2, stranger];

        for now in [0u64, 10] {
            let batch = batch_ctl.decide_batch(&flows, now);
            let sequential: Vec<FlowDecision> =
                flows.iter().map(|f| seq_ctl.decide(f, now)).collect();
            for (b, s) in batch.iter().zip(&sequential) {
                assert_eq!(b.verdict.decision, s.verdict.decision);
                assert_eq!(b.verdict.matched_line, s.verdict.matched_line);
                assert_eq!(b.from_cache, s.from_cache);
                assert_eq!(b.queries_issued, s.queries_issued);
                assert_eq!(b.flow_mods, s.flow_mods);
            }
            assert_eq!(batch_ctl.backend_stats(), seq_ctl.backend_stats());
            assert_eq!(batch_ctl.audit().records(), seq_ctl.audit().records());
        }
        // The second round was served from the state table for the pass.
        assert!(batch_ctl.audit().cache_hit_ratio() > 0.0);
    }

    #[test]
    fn intra_batch_cache_aliases_match_sequential_decisions() {
        // A flow and its reverse in the SAME batch: sequentially the reverse
        // hits the state entry the forward flow just wrote (canonical keys
        // cover both directions) and inherits Pass; the batch must reach the
        // same decisions even though both flows were queried up front.
        let scripted = || {
            Box::new(
                crate::backend::RecordingBackend::new()
                    .with_answer(
                        Ipv4Addr::new(10, 0, 0, 1),
                        vec![("name".to_string(), "firefox".to_string())],
                    )
                    .with_answer(
                        Ipv4Addr::new(10, 0, 0, 2),
                        vec![("name".to_string(), "unknownd".to_string())],
                    ),
            )
        };
        let config = || {
            ControllerConfig::new().with_control_file(
                "00.control",
                "block all\npass all with eq(@src[name], firefox) keep state\n",
            )
        };
        let mut batched = IdentxxController::new(config())
            .unwrap()
            .with_backend(scripted());
        let mut sequential = IdentxxController::new(config())
            .unwrap()
            .with_backend(scripted());

        let forward = FiveTuple::tcp([10, 0, 0, 1], 41_000, [10, 0, 0, 2], 80);
        let flows = [forward, forward.reversed()];
        let batch = batched.decide_batch(&flows, 0);
        let seq: Vec<FlowDecision> = flows.iter().map(|f| sequential.decide(f, 0)).collect();
        for (b, s) in batch.iter().zip(&seq) {
            assert_eq!(b.verdict.decision, s.verdict.decision);
            assert_eq!(b.from_cache, s.from_cache);
        }
        assert!(batch[0].is_pass() && !batch[0].from_cache);
        assert!(
            batch[1].is_pass() && batch[1].from_cache,
            "the reverse flow must be served from the entry its forward \
             flow wrote, exactly as sequential deciding would"
        );
        // The one documented divergence is accounting: the batch had already
        // queried the reverse flow before the alias hit.
        assert_eq!(sequential.backend_stats().queries_sent, 2);
        assert_eq!(batched.backend_stats().queries_sent, 4);
    }

    #[test]
    fn fail_closed_denies_half_answered_flows_and_recovers_uncached() {
        // The source end answers "firefox" — enough for the pass rule — but
        // the destination daemon is unreachable. Fail-closed mode must deny
        // anyway, leave a policy note, and *not* cache the deny, so the flow
        // passes the moment the destination answers again.
        let config = || {
            ControllerConfig::new()
                .with_control_file(
                    "00.control",
                    "block all\npass all with eq(@src[name], firefox) keep state\n",
                )
                .with_fail_closed_on_unanswered()
        };
        let half_answered = Box::new(crate::backend::RecordingBackend::new().with_answer(
            Ipv4Addr::new(10, 0, 0, 1),
            vec![("name".to_string(), "firefox".to_string())],
        ));
        let mut controller = IdentxxController::new(config())
            .unwrap()
            .with_backend(half_answered);
        let flow = FiveTuple::tcp([10, 0, 0, 1], 41_000, [10, 0, 0, 2], 80);
        let denied = controller.decide(&flow, 0);
        assert!(!denied.is_pass());
        assert_eq!(denied.verdict.matched_line, None);
        assert_eq!(denied.queries_issued, 2);
        assert!(denied.src_response.is_some() && denied.dst_response.is_none());
        assert!(controller
            .audit()
            .policy_notes()
            .iter()
            .any(|n| n.category == "fail-closed"));
        assert_eq!(controller.audit().records().len(), 1);
        assert_eq!(controller.audit().records()[0].decision, Decision::Block);
        // Not cached: the state table holds nothing for this flow.
        assert_eq!(controller.state_table().len(), 0);
        // The fault clears (the destination answers again): the very next
        // decision follows the policy, no stale deny in the way.
        controller.set_backend(Box::new(
            crate::backend::RecordingBackend::new()
                .with_answer(
                    Ipv4Addr::new(10, 0, 0, 1),
                    vec![("name".to_string(), "firefox".to_string())],
                )
                .with_answer(
                    Ipv4Addr::new(10, 0, 0, 2),
                    vec![("name".to_string(), "httpd".to_string())],
                ),
        ));
        let recovered = controller.decide(&flow, 10);
        assert!(recovered.is_pass() && !recovered.from_cache);
        let repeat = controller.decide(&flow, 20);
        assert!(repeat.is_pass() && repeat.from_cache);
    }

    #[test]
    fn fail_closed_applies_to_batched_rounds_too() {
        let backend = || {
            Box::new(
                crate::backend::RecordingBackend::new()
                    .with_answer(
                        Ipv4Addr::new(10, 0, 0, 1),
                        vec![("name".to_string(), "firefox".to_string())],
                    )
                    .with_answer(
                        Ipv4Addr::new(10, 0, 0, 2),
                        vec![("name".to_string(), "httpd".to_string())],
                    ),
            )
        };
        let config = || {
            ControllerConfig::new()
                .with_control_file(
                    "00.control",
                    "block all\npass all with eq(@src[name], firefox) keep state\n",
                )
                .with_fail_closed_on_unanswered()
        };
        let mut batched = IdentxxController::new(config())
            .unwrap()
            .with_backend(backend());
        let mut sequential = IdentxxController::new(config())
            .unwrap()
            .with_backend(backend());
        let answered = FiveTuple::tcp([10, 0, 0, 1], 41_000, [10, 0, 0, 2], 80);
        // 10.0.0.3 is scripted nowhere: its source query goes unanswered.
        let orphaned = FiveTuple::tcp([10, 0, 0, 3], 41_001, [10, 0, 0, 2], 80);
        let flows = [answered, orphaned];
        let batch = batched.decide_batch(&flows, 0);
        let seq: Vec<FlowDecision> = flows.iter().map(|f| sequential.decide(f, 0)).collect();
        for (b, s) in batch.iter().zip(&seq) {
            assert_eq!(b.verdict.decision, s.verdict.decision);
            assert_eq!(b.verdict.matched_line, s.verdict.matched_line);
            assert_eq!(b.from_cache, s.from_cache);
        }
        assert!(batch[0].is_pass());
        assert!(!batch[1].is_pass());
        assert!(batched
            .audit()
            .policy_notes()
            .iter()
            .any(|n| n.category == "fail-closed"));
    }

    #[test]
    fn compiled_and_interpreted_evaluation_agree() {
        let (mut controller, addrs) = skype_controller();
        let flow = start_skype(&mut controller, addrs[3], addrs[4], 210);
        let decision = controller.decide(&flow, 0);
        assert!(decision.is_pass());
        let compiled = controller.evaluate_only(
            &flow,
            decision.src_response.as_ref(),
            decision.dst_response.as_ref(),
        );
        let interpreted = controller.evaluate_interpreted(
            &flow,
            decision.src_response.as_ref(),
            decision.dst_response.as_ref(),
        );
        assert_eq!(compiled.decision, interpreted.decision);
        assert_eq!(compiled.matched_rule, interpreted.matched_rule);
        assert_eq!(compiled.keep_state, interpreted.keep_state);
        assert!(controller.compiled_policy().compiled_rule_count() >= 1);
    }

    #[test]
    fn forged_daemon_response_can_escalate_but_only_for_that_user() {
        // §5.3: a compromised end-host can send false responses; it gains the
        // network privileges its claims entitle it to, but the controller's
        // audit log still attributes the flow to the claimed identity.
        let (mut controller, addrs) = skype_controller();
        controller
            .daemons_mut()
            .get_mut(addrs[8])
            .unwrap()
            .set_forged_response(Some(vec![
                ("name".to_string(), "skype".to_string()),
                ("version".to_string(), "210".to_string()),
            ]));
        // Destination really runs skype.
        let pid = controller
            .daemons_mut()
            .get_mut(addrs[9])
            .unwrap()
            .host_mut()
            .spawn("bob", skype(210));
        controller
            .daemons_mut()
            .get_mut(addrs[9])
            .unwrap()
            .host_mut()
            .listen(pid, identxx_proto::IpProtocol::Tcp, 80);
        let forged_flow = FiveTuple::tcp(addrs[8], 50000, addrs[9], 80);
        let decision = controller.decide(&forged_flow, 0);
        // The forged claim of "skype" passes the skype policy…
        assert!(decision.is_pass());
        // …but the audit trail records exactly what was claimed, enabling
        // later revocation of everything that host was allowed to do.
        let revoked = controller.revoke_where(|r| r.flow.src_ip == addrs[8]);
        assert!(!revoked.is_empty());
    }

    use identxx_crypto::{sign_bundle_windowed, KeyPair};

    /// The items every delegation bundle in these tests covers.
    const DELEGATED_REQS: &str = "pass all";

    /// A backend scripting both ends of `flow` with a signed delegation
    /// bundle for the given source app (destination runs plain httpd).
    fn delegation_backend(
        signer: &KeyPair,
        not_before: u64,
        not_after: u64,
        tamper: bool,
    ) -> Box<crate::backend::RecordingBackend> {
        let exe_hash = "f00dfeed";
        let bundle = sign_bundle_windowed(
            signer,
            "Secur",
            not_before,
            not_after,
            &[exe_hash, "research-app", DELEGATED_REQS],
        );
        let name = if tamper {
            "imposter-app"
        } else {
            "research-app"
        };
        Box::new(
            crate::backend::RecordingBackend::new()
                .with_answer(
                    Ipv4Addr::new(10, 0, 0, 1),
                    vec![
                        ("name".to_string(), name.to_string()),
                        ("exe-hash".to_string(), exe_hash.to_string()),
                        ("requirements".to_string(), DELEGATED_REQS.to_string()),
                        ("req-sig".to_string(), bundle.to_hex()),
                    ],
                )
                .with_answer(
                    Ipv4Addr::new(10, 0, 0, 2),
                    vec![("name".to_string(), "httpd".to_string())],
                ),
        )
    }

    fn delegation_config(signer: &KeyPair) -> ControllerConfig {
        ControllerConfig::new()
            .with_control_file(
                "00.control",
                "block all\npass all with verify(@src[req-sig], Secur, @src[exe-hash], \
                 @src[name], @src[requirements])\n",
            )
            .with_trusted_key("Secur", signer.public())
            .without_state_table()
    }

    #[test]
    fn verify_plane_notes_fresh_cached_and_expired_outcomes() {
        let signer = KeyPair::from_seed(b"Secur");
        let mut controller = IdentxxController::new(delegation_config(&signer))
            .unwrap()
            .with_backend(delegation_backend(&signer, 100, 1_000, false));
        let flow = FiveTuple::tcp([10, 0, 0, 1], 41_000, [10, 0, 0, 2], 80);

        // Before the window: rejected, no curve math spent.
        assert!(!controller.decide(&flow, 50).is_pass());
        // Inside the window: fresh verification, then a cache hit.
        assert!(controller.decide(&flow, 100).is_pass());
        assert!(controller.decide(&flow, 500).is_pass());
        // At exactly `not_after` the bundle is expired (half-open window) —
        // the cached valid verdict must not outlive it.
        assert!(!controller.decide(&flow, 1_000).is_pass());

        let stats = controller.verify_stats();
        assert_eq!(stats.not_yet_valid, 1);
        assert_eq!(stats.misses, 1, "one fresh verification for the bundle");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.expired, 1);

        let notes = controller.audit().policy_notes();
        for category in [
            "verify-not-yet-valid",
            "verify-fresh",
            "verify-cached",
            "verify-expired",
        ] {
            assert!(
                notes
                    .iter()
                    .any(|n| n.category == category && n.message.contains("key 'Secur'")),
                "missing {category} note: {notes:?}"
            );
        }
    }

    #[test]
    fn verify_plane_notes_forged_bundles() {
        let signer = KeyPair::from_seed(b"Secur");
        // The host claims a different app name than the bundle signs over.
        let mut controller = IdentxxController::new(delegation_config(&signer))
            .unwrap()
            .with_backend(delegation_backend(&signer, 0, 1_000, true));
        let flow = FiveTuple::tcp([10, 0, 0, 1], 41_000, [10, 0, 0, 2], 80);
        assert!(!controller.decide(&flow, 10).is_pass());
        assert_eq!(controller.verify_stats().forged, 1);
        assert!(controller
            .audit()
            .policy_notes()
            .iter()
            .any(|n| n.category == "verify-forged"));
    }

    #[test]
    fn unparseable_signature_is_distinguished_from_forged() {
        let signer = KeyPair::from_seed(b"Secur");
        let backend = Box::new(
            crate::backend::RecordingBackend::new()
                .with_answer(
                    Ipv4Addr::new(10, 0, 0, 1),
                    vec![
                        ("name".to_string(), "research-app".to_string()),
                        ("exe-hash".to_string(), "f00dfeed".to_string()),
                        ("requirements".to_string(), DELEGATED_REQS.to_string()),
                        ("req-sig".to_string(), "zz-not-even-hex".to_string()),
                    ],
                )
                .with_answer(
                    Ipv4Addr::new(10, 0, 0, 2),
                    vec![("name".to_string(), "httpd".to_string())],
                ),
        );
        let mut controller = IdentxxController::new(delegation_config(&signer))
            .unwrap()
            .with_backend(backend);
        let flow = FiveTuple::tcp([10, 0, 0, 1], 41_000, [10, 0, 0, 2], 80);
        assert!(!controller.decide(&flow, 10).is_pass());
        let stats = controller.verify_stats();
        assert_eq!(stats.unparseable, 1);
        assert_eq!(stats.forged, 0);
        let notes = controller.audit().policy_notes();
        assert!(notes.iter().any(|n| n.category == "verify-unparseable"));
        assert!(notes.iter().all(|n| n.category != "verify-forged"));
    }

    #[test]
    fn decide_batch_prewarms_each_distinct_bundle_once() {
        let signer = KeyPair::from_seed(b"Secur");
        // Five distinct flows from the same delegated app: the batch's
        // responses all carry the identical bundle. The prewarm pass should
        // verify it once; every per-flow evaluation then hits the cache.
        let exe_hash = "f00dfeed";
        let bundle = sign_bundle_windowed(
            &signer,
            "Secur",
            0,
            1_000,
            &[exe_hash, "research-app", DELEGATED_REQS],
        );
        let mut backend = crate::backend::RecordingBackend::new().with_answer(
            Ipv4Addr::new(10, 0, 0, 200),
            vec![("name".to_string(), "httpd".to_string())],
        );
        let mut flows = Vec::new();
        for i in 0..5u8 {
            let src = Ipv4Addr::new(10, 0, 0, 10 + i);
            backend = backend.with_answer(
                src,
                vec![
                    ("name".to_string(), "research-app".to_string()),
                    ("exe-hash".to_string(), exe_hash.to_string()),
                    ("requirements".to_string(), DELEGATED_REQS.to_string()),
                    ("req-sig".to_string(), bundle.to_hex()),
                ],
            );
            flows.push(FiveTuple::tcp(src, 41_000, [10, 0, 0, 200], 80));
        }
        let mut controller = IdentxxController::new(delegation_config(&signer))
            .unwrap()
            .with_backend(Box::new(backend));
        let decisions = controller.decide_batch(&flows, 10);
        assert!(decisions.iter().all(FlowDecision::is_pass));
        let stats = controller.verify_stats();
        assert_eq!(
            stats.misses, 1,
            "one batch, one distinct bundle, one round of curve math: {stats:?}"
        );
        assert_eq!(stats.hits, 5, "every evaluation served from the cache");
        // The prewarm recorded no events — only the five real evaluations.
        let cached_notes = controller
            .audit()
            .policy_notes()
            .iter()
            .filter(|n| n.category == "verify-cached")
            .count();
        assert_eq!(cached_notes, 5);
    }

    #[test]
    fn verify_cache_survives_policy_recompiles() {
        let signer = KeyPair::from_seed(b"Secur");
        let mut controller = IdentxxController::new(delegation_config(&signer))
            .unwrap()
            .with_backend(delegation_backend(&signer, 0, 1_000, false));
        let flow = FiveTuple::tcp([10, 0, 0, 1], 41_000, [10, 0, 0, 2], 80);
        assert!(controller.decide(&flow, 10).is_pass());
        assert_eq!(controller.verify_stats().misses, 1);
        // A policy update touches the ruleset, not the bundle's verdict —
        // the re-decided flow hits the verify cache.
        controller
            .update_control_file("10-extra.control", "block from 10.9.9.9 to any\n")
            .unwrap();
        assert!(controller.decide(&flow, 20).is_pass());
        let stats = controller.verify_stats();
        assert_eq!(stats.misses, 1, "recompile must not clear the verify cache");
        assert_eq!(stats.hits, 1);
    }
}
