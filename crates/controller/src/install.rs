//! Turning decisions into flow-table entries along the flow's path.
//!
//! "if controller approves, it installs entries along path for flow" (Fig. 1,
//! step 4), and "The OpenFlow controller can insert entries in switches across
//! the network preemptively so that this process is not repeated for every
//! switch at which the packet arrives" (§3.1).
//!
//! [`NetworkMap`] binds the simulated topology to OpenFlow switch identities
//! and port numbers so the controller can compute, for an approved flow, the
//! exact `(switch, output port)` entries to install in both directions.

use std::collections::BTreeMap;

use identxx_netsim::{NodeId, NodeKind, RoutingTable, Topology};
use identxx_openflow::{FlowEntry, FlowMatch, FlowMod, MacAddr, OfAction, PortNo, SwitchId};
use identxx_proto::FiveTuple;

/// The controller's view of the network: topology, routes, and the identity of
/// each switch.
#[derive(Debug, Clone)]
pub struct NetworkMap {
    topology: Topology,
    routing: RoutingTable,
    switch_ids: BTreeMap<NodeId, SwitchId>,
}

impl NetworkMap {
    /// Builds the map from a topology. Every switch node is assigned a
    /// datapath id equal to its node id.
    pub fn new(topology: Topology) -> NetworkMap {
        let routing = RoutingTable::build(&topology);
        let switch_ids = topology
            .nodes_of_kind(NodeKind::Switch)
            .into_iter()
            .map(|n| (n, SwitchId(n.0 as u64)))
            .collect();
        NetworkMap {
            topology,
            routing,
            switch_ids,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The routing table.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The switch id of a topology node (if it is a switch).
    pub fn switch_id(&self, node: NodeId) -> Option<SwitchId> {
        self.switch_ids.get(&node).copied()
    }

    /// The topology node of a switch id.
    pub fn switch_node(&self, id: SwitchId) -> Option<NodeId> {
        self.switch_ids
            .iter()
            .find(|(_, sid)| **sid == id)
            .map(|(n, _)| *n)
    }

    /// The port number on `node` that leads to `neighbour`: ports are numbered
    /// 1.. in the order neighbours were attached (a fixed, deterministic
    /// convention shared with the data-plane simulation).
    pub fn port_toward(&self, node: NodeId, neighbour: NodeId) -> Option<PortNo> {
        self.topology
            .neighbours(node)
            .iter()
            .position(|(n, _)| *n == neighbour)
            .map(|idx| (idx + 1) as PortNo)
    }

    /// The ordered `(switch, out_port)` hops a flow traverses from its source
    /// host to its destination host. Returns `None` when either endpoint is
    /// not a known host or the hosts are disconnected.
    pub fn switch_hops(&self, flow: &FiveTuple) -> Option<Vec<(SwitchId, PortNo)>> {
        let src = self.topology.node_by_addr(flow.src_ip)?.id;
        let dst = self.topology.node_by_addr(flow.dst_ip)?.id;
        let path = self.routing.path(src, dst)?;
        let mut hops = Vec::new();
        for window in path.windows(2) {
            let (node, next) = (window[0], window[1]);
            if let Some(switch_id) = self.switch_id(node) {
                let port = self.port_toward(node, next)?;
                hops.push((switch_id, port));
            }
        }
        Some(hops)
    }

    /// The number of switches between the flow's endpoints.
    pub fn path_switch_count(&self, flow: &FiveTuple) -> usize {
        self.switch_hops(flow).map(|h| h.len()).unwrap_or(0)
    }

    /// Builds the `flow-mod`s that allow `flow` along its path **in both
    /// directions** (forward entries toward the destination, reverse entries
    /// toward the source), with the given timeouts.
    pub fn allow_flow_mods(
        &self,
        flow: &FiveTuple,
        priority: u16,
        idle_timeout: u64,
        hard_timeout: u64,
    ) -> Vec<FlowMod> {
        let mut mods = Vec::new();
        for (direction_flow, _label) in [(*flow, "forward"), (flow.reversed(), "reverse")] {
            if let Some(hops) = self.switch_hops(&direction_flow) {
                for (switch, port) in hops {
                    let entry = FlowEntry::new(
                        FlowMatch::exact_five_tuple(&direction_flow),
                        priority,
                        OfAction::Output(port),
                    )
                    .with_idle_timeout(idle_timeout)
                    .with_hard_timeout(hard_timeout);
                    mods.push(FlowMod::add(switch, entry));
                }
            }
        }
        mods
    }

    /// Builds the `flow-mod` that drops `flow` at its first-hop switch (enough
    /// to keep a denied flow's retries off the controller).
    pub fn drop_flow_mods(
        &self,
        flow: &FiveTuple,
        priority: u16,
        idle_timeout: u64,
    ) -> Vec<FlowMod> {
        match self.switch_hops(flow) {
            Some(hops) if !hops.is_empty() => {
                let (switch, _) = hops[0];
                let entry =
                    FlowEntry::new(FlowMatch::exact_five_tuple(flow), priority, OfAction::Drop)
                        .with_idle_timeout(idle_timeout);
                vec![FlowMod::add(switch, entry)]
            }
            _ => Vec::new(),
        }
    }

    /// The MAC address the simulation derives for a host address (useful when
    /// configuring switches' MAC-to-port maps consistently with this map).
    pub fn mac_of(&self, addr: identxx_proto::Ipv4Addr) -> MacAddr {
        MacAddr::from_ip(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_netsim::LinkProps;
    use identxx_openflow::FlowModCommand;

    fn chain_map(switches: usize) -> (NetworkMap, FiveTuple) {
        let (topology, _controller, client, server, _switches) =
            Topology::chain(switches, LinkProps::default());
        let client_addr = topology.node(client).unwrap().addr;
        let server_addr = topology.node(server).unwrap().addr;
        let flow = FiveTuple::tcp(client_addr, 40000, server_addr, 80);
        (NetworkMap::new(topology), flow)
    }

    #[test]
    fn switch_hops_follow_the_chain() {
        let (map, flow) = chain_map(3);
        let hops = map.switch_hops(&flow).unwrap();
        assert_eq!(hops.len(), 3);
        assert_eq!(map.path_switch_count(&flow), 3);
        // Reverse direction traverses the same number of switches.
        assert_eq!(map.switch_hops(&flow.reversed()).unwrap().len(), 3);
    }

    #[test]
    fn allow_mods_cover_both_directions_of_every_switch() {
        let (map, flow) = chain_map(4);
        let mods = map.allow_flow_mods(&flow, 100, 30_000_000, 0);
        // 4 switches forward + 4 reverse.
        assert_eq!(mods.len(), 8);
        assert!(mods.iter().all(|m| m.command == FlowModCommand::Add));
        let forward_matches = mods
            .iter()
            .filter(|m| m.entry.as_ref().unwrap().flow_match == FlowMatch::exact_five_tuple(&flow))
            .count();
        assert_eq!(forward_matches, 4);
        // Every entry forwards (no drops).
        assert!(mods
            .iter()
            .all(|m| m.entry.as_ref().unwrap().action != OfAction::Drop));
        // Timeouts are propagated.
        assert!(mods
            .iter()
            .all(|m| m.entry.as_ref().unwrap().idle_timeout == 30_000_000));
    }

    #[test]
    fn drop_mods_target_only_first_hop() {
        let (map, flow) = chain_map(5);
        let mods = map.drop_flow_mods(&flow, 100, 10_000_000);
        assert_eq!(mods.len(), 1);
        let entry = mods[0].entry.as_ref().unwrap();
        assert_eq!(entry.action, OfAction::Drop);
        let first_hop = map.switch_hops(&flow).unwrap()[0].0;
        assert_eq!(mods[0].switch, first_hop);
    }

    #[test]
    fn unknown_endpoints_produce_no_mods() {
        let (map, _) = chain_map(2);
        let stranger = FiveTuple::tcp([9, 9, 9, 9], 1, [8, 8, 8, 8], 2);
        assert!(map.switch_hops(&stranger).is_none());
        assert!(map.allow_flow_mods(&stranger, 1, 0, 0).is_empty());
        assert!(map.drop_flow_mods(&stranger, 1, 0).is_empty());
        assert_eq!(map.path_switch_count(&stranger), 0);
    }

    #[test]
    fn ports_are_stable_and_valid() {
        let (map, flow) = chain_map(3);
        let hops = map.switch_hops(&flow).unwrap();
        for (switch, port) in hops {
            assert!(port >= 1);
            let node = map.switch_node(switch).unwrap();
            assert!(map.topology().neighbours(node).len() >= port as usize);
        }
    }

    #[test]
    fn switch_id_round_trip() {
        let (map, _) = chain_map(2);
        for node in map.topology().nodes_of_kind(NodeKind::Switch) {
            let sid = map.switch_id(node).unwrap();
            assert_eq!(map.switch_node(sid), Some(node));
        }
        // Hosts do not have switch ids.
        for node in map.topology().nodes_of_kind(NodeKind::Host) {
            assert!(map.switch_id(node).is_none());
        }
    }
}
