//! Interception and augmentation of ident++ queries and responses.
//!
//! "ident++ response and query packets can be intercepted themselves by
//! ident++-enabled firewalls. The firewalls can answer the queries themselves
//! or can modify response packets to insert additional information" (§2), and
//! "intercepted queries are not allowed to cause new queries. To respond to an
//! intercepted query on behalf of an end-host, the controller spoofs the IP
//! address of the end-host, sends a response itself, but does not forward the
//! query. To augment an intercepted response with additional information, the
//! controller inserts an empty line followed by the key-value pairs it wishes
//! to add" (§3.4).
//!
//! Two hooks model this:
//!
//! * [`Interceptor`] answers queries on behalf of end-hosts (e.g. hosts with
//!   no ident++ daemon — the "Incremental Benefit" case of §4, or a branch
//!   gateway speaking for its whole site),
//! * [`ResponseAugmenter`] appends a section to responses passing through
//!   (e.g. a branch controller adding the rules its network will accept — the
//!   "Network Collaboration" case of §4).

use identxx_proto::{FiveTuple, Ipv4Addr, Response, Section};

/// The direction of the end-host a query was addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryTarget {
    /// The query was addressed to the flow's source host.
    Source,
    /// The query was addressed to the flow's destination host.
    Destination,
}

/// Answers queries on behalf of end-hosts.
pub trait Interceptor: Send {
    /// If this interceptor speaks for `target_addr`, produce the spoofed
    /// response for the query about `flow`; otherwise return `None` and the
    /// query proceeds to the real daemon.
    fn answer_for(
        &mut self,
        target_addr: Ipv4Addr,
        flow: &FiveTuple,
        target: QueryTarget,
    ) -> Option<Response>;

    /// Name for reporting/auditing.
    fn name(&self) -> &str;
}

/// Appends sections to responses passing through the controller.
pub trait ResponseAugmenter: Send {
    /// Given the response for `flow` from the `target` side, optionally
    /// return a section to append.
    fn augment(
        &mut self,
        flow: &FiveTuple,
        target: QueryTarget,
        response: &Response,
    ) -> Option<Section>;

    /// Name for reporting/auditing.
    fn name(&self) -> &str;
}

/// A simple interceptor that answers for a fixed set of addresses with a fixed
/// set of key-value pairs — enough for the incremental-deployment experiments
/// (hosts without daemons) and unit tests.
pub struct StaticInterceptor {
    /// Addresses this interceptor speaks for.
    pub addresses: Vec<Ipv4Addr>,
    /// Pairs returned for any query about those addresses.
    pub pairs: Vec<(String, String)>,
    name: String,
}

impl StaticInterceptor {
    /// Creates a static interceptor.
    pub fn new(
        name: impl Into<String>,
        addresses: Vec<Ipv4Addr>,
        pairs: Vec<(String, String)>,
    ) -> StaticInterceptor {
        StaticInterceptor {
            addresses,
            pairs,
            name: name.into(),
        }
    }
}

impl Interceptor for StaticInterceptor {
    fn answer_for(
        &mut self,
        target_addr: Ipv4Addr,
        flow: &FiveTuple,
        _target: QueryTarget,
    ) -> Option<Response> {
        if !self.addresses.contains(&target_addr) {
            return None;
        }
        let mut response = Response::new(*flow);
        let mut section = Section::new();
        for (k, v) in &self.pairs {
            section.push(k, v.as_str());
        }
        response.push_section(section);
        Some(response)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// An augmenter that appends a fixed section for flows whose destination falls
/// in a prefix — the shape of the inter-branch collaboration example (§4).
pub struct PrefixAugmenter {
    /// Network prefix of the remote branch.
    pub network: Ipv4Addr,
    /// Prefix length.
    pub prefix_len: u8,
    /// Pairs to append (e.g. `branch-accepts: tcp 80 443` or a signed rule).
    pub pairs: Vec<(String, String)>,
    name: String,
}

impl PrefixAugmenter {
    /// Creates a prefix-scoped augmenter.
    pub fn new(
        name: impl Into<String>,
        network: Ipv4Addr,
        prefix_len: u8,
        pairs: Vec<(String, String)>,
    ) -> PrefixAugmenter {
        PrefixAugmenter {
            network,
            prefix_len,
            pairs,
            name: name.into(),
        }
    }
}

impl ResponseAugmenter for PrefixAugmenter {
    fn augment(
        &mut self,
        flow: &FiveTuple,
        target: QueryTarget,
        _response: &Response,
    ) -> Option<Section> {
        // Only augment the destination-side response for flows headed into the
        // branch's prefix.
        if target != QueryTarget::Destination
            || !flow.dst_ip.in_prefix(self.network, self.prefix_len)
        {
            return None;
        }
        let mut section = Section::new();
        for (k, v) in &self.pairs {
            section.push(k, v.as_str());
        }
        Some(section)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 1, 0, 5], 40000, [10, 2, 0, 7], 443)
    }

    #[test]
    fn static_interceptor_answers_only_for_its_addresses() {
        let mut interceptor = StaticInterceptor::new(
            "legacy-hosts",
            vec![Ipv4Addr::new(10, 2, 0, 7)],
            vec![("name".to_string(), "legacy-service".to_string())],
        );
        assert_eq!(interceptor.name(), "legacy-hosts");
        let answered = interceptor
            .answer_for(
                Ipv4Addr::new(10, 2, 0, 7),
                &flow(),
                QueryTarget::Destination,
            )
            .unwrap();
        assert_eq!(answered.latest("name"), Some("legacy-service"));
        assert!(interceptor
            .answer_for(Ipv4Addr::new(10, 1, 0, 5), &flow(), QueryTarget::Source)
            .is_none());
    }

    #[test]
    fn prefix_augmenter_scopes_to_destination_prefix() {
        let mut augmenter = PrefixAugmenter::new(
            "branch-b",
            Ipv4Addr::new(10, 2, 0, 0),
            16,
            vec![("branch-accepts".to_string(), "443".to_string())],
        );
        assert_eq!(augmenter.name(), "branch-b");
        let response = Response::new(flow());
        let section = augmenter
            .augment(&flow(), QueryTarget::Destination, &response)
            .unwrap();
        assert_eq!(section.get("branch-accepts").unwrap().as_str(), "443");
        // Source-side responses are untouched.
        assert!(augmenter
            .augment(&flow(), QueryTarget::Source, &response)
            .is_none());
        // Flows to other prefixes are untouched.
        let other = FiveTuple::tcp([10, 1, 0, 5], 40000, [10, 9, 0, 7], 443);
        assert!(augmenter
            .augment(&other, QueryTarget::Destination, &response)
            .is_none());
    }
}
