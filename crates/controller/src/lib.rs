//! # identxx-controller — the ident++ OpenFlow controller
//!
//! "When an OpenFlow switch cannot find a match for a packet in its flow
//! table, it sends the packet to the ident++ controller. When the controller
//! receives the packet, it queries the source and destination ident++ daemons
//! for additional information. The information is then stored in the `@src`
//! and the `@dst` dictionaries. The controller then executes the rules that
//! are stored in its configuration files" (§3.4).
//!
//! The crate provides:
//!
//! * [`config`] — the controller's configuration: `.control` files, trusted
//!   public keys, named group lists, defaults,
//! * [`backend`] — the pluggable query plane ([`QueryBackend`]): in-process
//!   daemons for the simulator (owned, or shared across shards via
//!   [`SharedDirectoryBackend`]), concurrent dual-end TCP queries for
//!   deployments (per-host futures joined under one deadline on the
//!   runtime's reactor — zero threads per round, DESIGN.md §7), a recording
//!   double for tests — plus the batched [`QueryBackend::query_flows`]
//!   round that resolves many flows at one round trip per host
//!   (`QUERY-BATCH` frames on pooled connections),
//! * [`shard`] — the horizontally scaled tier: [`ShardedController`] routes
//!   flows over N independent controller shards with a consistent-hash
//!   [`ShardRouter`] keyed on cache-granularity-normalized flow keys, and
//!   merges per-shard stats (sums) and audit logs (time-ordered) for
//!   operators — see `DESIGN.md` §6,
//! * [`querier`] — the directory of in-process daemons behind
//!   [`backend::InProcessBackend`],
//! * [`intercept`] — interception and augmentation of queries/responses by
//!   on-path controllers (answering on behalf of hosts, adding sections),
//! * [`install`] — turning decisions into flow-table entries along the flow's
//!   switch path,
//! * [`audit`] — the audit log that makes delegation supervisable ("log and
//!   audit the delegates' actions, and revoke the delegation if needed", §1),
//! * [`controller`] — [`IdentxxController`] itself, which implements the
//!   OpenFlow controller interface.

pub mod audit;
pub mod backend;
pub mod config;
pub mod controller;
pub mod install;
pub mod intercept;
pub mod querier;
pub mod shard;

pub use audit::{AuditLog, AuditRecord, PolicyNote};
pub use backend::{
    BackendStats, BreakerConfig, FlowRequest, FlowResponses, InProcessBackend, NetworkBackend,
    QueryBackend, RecordingBackend, SharedDirectoryBackend,
};
pub use config::ControllerConfig;
pub use controller::{FlowDecision, IdentxxController};
pub use install::NetworkMap;
pub use intercept::{Interceptor, QueryTarget, ResponseAugmenter};
pub use querier::DaemonDirectory;
pub use shard::{ShardRouter, ShardedController};
