//! The directory of end-host daemons the controller can query.
//!
//! In a deployment, the controller opens a TCP connection to port 783 on the
//! flow's source and destination addresses (the `identxx-net` crate implements
//! that transport). In the simulator the daemons live in the same process;
//! the directory maps host addresses to their daemons and performs the query
//! call on behalf of [`crate::backend::InProcessBackend`], which counts the
//! messages exchanged (as [`crate::backend::BackendStats`]) so experiments
//! can report query overhead uniformly across transports.

use std::collections::BTreeMap;

use identxx_daemon::Daemon;
use identxx_proto::{FiveTuple, Ipv4Addr, Query, Response};

/// The set of end-host daemons reachable from the controller.
#[derive(Debug, Default)]
pub struct DaemonDirectory {
    daemons: BTreeMap<Ipv4Addr, Daemon>,
}

impl DaemonDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        DaemonDirectory::default()
    }

    /// Registers a daemon under its host's address. Replaces any previous
    /// daemon for that address.
    pub fn register(&mut self, daemon: Daemon) {
        self.daemons.insert(daemon.host().addr, daemon);
    }

    /// Removes the daemon for an address.
    pub fn unregister(&mut self, addr: Ipv4Addr) -> Option<Daemon> {
        self.daemons.remove(&addr)
    }

    /// Access a daemon by address.
    pub fn get(&self, addr: Ipv4Addr) -> Option<&Daemon> {
        self.daemons.get(&addr)
    }

    /// Mutable access to a daemon by address (used by scenarios to start
    /// applications, install configs, or compromise hosts mid-experiment).
    pub fn get_mut(&mut self, addr: Ipv4Addr) -> Option<&mut Daemon> {
        self.daemons.get_mut(&addr)
    }

    /// Queries the daemon at `addr` about `flow` with the given key hints.
    ///
    /// Returns `None` when no daemon is registered at the address, the daemon
    /// is silent, or the daemon refuses the query; the controller's policy
    /// must then cope with missing information. Accounting lives in the
    /// backend driving this directory, not here.
    pub fn query(&mut self, addr: Ipv4Addr, flow: &FiveTuple, keys: &[&str]) -> Option<Response> {
        let daemon = self.daemons.get_mut(&addr)?;
        let mut query = Query::new(*flow);
        for k in keys {
            query = query.with_key(k);
        }
        match daemon.answer(&query) {
            Ok(Some(response)) => Some(response),
            Ok(None) | Err(_) => None,
        }
    }

    /// Number of registered daemons.
    pub fn len(&self) -> usize {
        self.daemons.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.daemons.is_empty()
    }

    /// Addresses of every registered daemon.
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        self.daemons.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_hostmodel::{Executable, Host};
    use identxx_proto::well_known;

    fn daemon_at(addr: [u8; 4]) -> Daemon {
        Daemon::bare(Host::new(format!("h-{}", addr[3]), Ipv4Addr::from(addr)))
    }

    #[test]
    fn register_and_query() {
        let mut dir = DaemonDirectory::new();
        let mut d = daemon_at([10, 0, 0, 1]);
        let exe = Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser");
        let flow =
            d.host_mut()
                .open_connection("alice", exe, 40000, Ipv4Addr::new(10, 0, 0, 2), 80);
        dir.register(d);
        dir.register(daemon_at([10, 0, 0, 2]));
        assert_eq!(dir.len(), 2);

        let resp = dir
            .query(Ipv4Addr::new(10, 0, 0, 1), &flow, &[well_known::USER_ID])
            .unwrap();
        assert_eq!(resp.latest(well_known::USER_ID), Some("alice"));

        // Unknown address: no daemon to ask.
        assert!(dir.query(Ipv4Addr::new(9, 9, 9, 9), &flow, &[]).is_none());
    }

    #[test]
    fn silent_daemons_do_not_answer() {
        let mut dir = DaemonDirectory::new();
        let mut d = daemon_at([10, 0, 0, 1]);
        d.set_silent(true);
        dir.register(d);
        let flow = FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        assert!(dir.query(Ipv4Addr::new(10, 0, 0, 1), &flow, &[]).is_none());
    }

    #[test]
    fn unregister_and_mutate() {
        let mut dir = DaemonDirectory::new();
        dir.register(daemon_at([10, 0, 0, 1]));
        assert!(dir.get(Ipv4Addr::new(10, 0, 0, 1)).is_some());
        dir.get_mut(Ipv4Addr::new(10, 0, 0, 1))
            .unwrap()
            .set_silent(true);
        assert!(dir.get(Ipv4Addr::new(10, 0, 0, 1)).unwrap().is_silent());
        assert!(dir.unregister(Ipv4Addr::new(10, 0, 0, 1)).is_some());
        assert!(dir.is_empty());
        assert!(dir.addresses().is_empty());
    }

    #[test]
    fn query_about_unrelated_flow_returns_none() {
        let mut dir = DaemonDirectory::new();
        dir.register(daemon_at([10, 0, 0, 1]));
        // This flow involves neither source nor destination 10.0.0.1.
        let flow = FiveTuple::tcp([10, 0, 0, 7], 1, [10, 0, 0, 8], 2);
        assert!(dir.query(Ipv4Addr::new(10, 0, 0, 1), &flow, &[]).is_none());
    }
}
