//! Horizontal sharding of the ident++ controller.
//!
//! One [`IdentxxController`] serializes every flow-setup decision through a
//! single policy/state/audit pipeline. That is faithful to the paper's
//! prototype, but an enterprise controller tier answering millions of users
//! needs the property the paper's *delegation* argument rests on at network
//! scale too: the decision plane must grow horizontally without the shards
//! coordinating on the hot path. [`ShardedController`] provides exactly
//! that —
//!
//! * a [`ShardRouter`]: a consistent-hash ring over
//!   [`CacheGranularity`]-normalized, direction-independent flow keys, so a
//!   flow and its reverse (and every flow that could share a state-table
//!   entry with it) always land on the same shard;
//! * N fully independent [`IdentxxController`] shards, each owning its own
//!   compiled policy, `Box<dyn QueryBackend>`, state table, and audit log —
//!   no lock is shared between shards, which is what lets
//!   [`ShardedController::decide_stream`] run them on parallel threads;
//! * merged read-side views: [`ShardedController::backend_stats`] *sums*
//!   per-shard transport counters (each shard really sent its queries — the
//!   merged view is total work, unlike a latency view where max would be
//!   the right merge), and [`ShardedController::merged_audit`] interleaves
//!   the per-shard audit logs by decision time (ties broken by shard slot
//!   and log position, so the merge is a total order);
//! * **elastic membership**: [`ShardedController::add_shard`],
//!   [`ShardedController::drain_shard`], and
//!   [`ShardedController::remove_shard`] reshape the tier live. Ring points
//!   are hashed from stable shard ids, never slots, so a membership change
//!   hands off exactly the captured key partition — state entries and audit
//!   records move verbatim to their new owner — and decisions remain
//!   identical to a never-resharded tier's (DESIGN.md §9, the E12 drills).
//!
//! Shard-local state is an invariant, not an optimization: because the
//! router key is at least as coarse as every state-table key, a cache entry
//! written by one shard can never be consulted (hit *or* missed) by
//! another, so a sharded controller reaches the same decisions as a single
//! one — only audit interleaving and per-shard query counts differ. See
//! DESIGN.md §6.

use identxx_daemon::Daemon;
use identxx_pf::{CacheGranularity, PfError};
use identxx_proto::FiveTuple;

use identxx_crypto::VerifyCacheStats;

use crate::audit::AuditRecord;
use crate::backend::{BackendStats, QueryBackend};
use crate::config::ControllerConfig;
use crate::controller::{FlowDecision, IdentxxController};
use crate::install::NetworkMap;

/// Virtual nodes per shard on the consistent-hash ring. A shard's share of
/// the hash space concentrates around 1/N with relative spread ∝ 1/√vnodes;
/// 512 keeps the worst shard within a few percent of the mean (the shard
/// tests assert balance), while the ring stays a few thousand `u64`s —
/// routing is one binary search.
const VNODES_PER_SHARD: usize = 512;

/// 64-bit FNV-1a with a splitmix64 finalizer. Stability matters as much as
/// quality: the router must hash identically across processes and releases
/// (a resharded deployment re-keys deliberately, never accidentally), which
/// rules out `std::collections::hash_map::RandomState`; and FNV alone
/// clusters on short near-sequential inputs like (shard, vnode) pairs, which
/// the finalizer's avalanche fixes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// Consistent-hash router assigning flows to shards.
///
/// The routing key is derived from the flow with the shard-locality rule:
/// **any two flows that could share a state-table entry under the
/// configured [`CacheGranularity`] must produce the same routing key.**
/// Concretely:
///
/// * [`CacheGranularity::ExactFiveTuple`] routes by the canonical
///   (direction-independent) 5-tuple — the cache key itself.
/// * [`CacheGranularity::HostPair`] and
///   [`CacheGranularity::HostPairDstPort`] route by the unordered host pair
///   plus protocol. The dst-port granularity cannot route finer: its
///   primary key is direction-dependent and reverse traffic hits through an
///   exact secondary key, so the finest key that is both
///   direction-independent and alias-closed is the host pair.
///
/// Consistent hashing (a ring of 512 virtual points per shard) rather than
/// `hash % n` so growing the shard tier remaps only the keys captured by
/// the new shard's points (≈ 1/(n+1) of the space), instead of reshuffling
/// almost everything — resharding invalidates that fraction of shard-local
/// caches, not all of them.
///
/// Ring points are hashed from each member's **stable id**, never its slot:
/// [`ShardRouter::with_added`] and [`ShardRouter::with_removed`] therefore
/// leave every surviving member's points exactly where they were, which is
/// what makes live resharding a bounded handoff instead of a reshuffle. A
/// fresh `ShardRouter::new(n, …)` assigns ids `0..n`, so routers built the
/// old way keep routing exactly as before.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    granularity: CacheGranularity,
    /// Stable member ids, in slot order (a slot is an index into this list).
    members: Vec<u64>,
    /// `(ring position, slot)`, sorted by position.
    ring: Vec<(u64, usize)>,
}

impl ShardRouter {
    /// Builds a router over `shards` shards (stable ids `0..shards`) for a
    /// given cache granularity.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: usize, granularity: CacheGranularity) -> ShardRouter {
        assert!(shards > 0, "a controller tier needs at least one shard");
        Self::from_members((0..shards as u64).collect(), granularity)
    }

    /// Builds a router over an explicit member-id list (slot order).
    fn from_members(members: Vec<u64>, granularity: CacheGranularity) -> ShardRouter {
        let mut ring = Vec::with_capacity(members.len() * VNODES_PER_SHARD);
        for (slot, &id) in members.iter().enumerate() {
            for vnode in 0..VNODES_PER_SHARD {
                let mut point = [0u8; 16];
                point[..8].copy_from_slice(&id.to_be_bytes());
                point[8..].copy_from_slice(&(vnode as u64).to_be_bytes());
                ring.push((fnv1a(&point), slot));
            }
        }
        ring.sort_unstable();
        // On the (astronomically unlikely) collision of two points, keep the
        // lower slot — deterministically, thanks to the sort above.
        ring.dedup_by_key(|(point, _)| *point);
        ShardRouter {
            granularity,
            members,
            ring,
        }
    }

    /// A router with one more member, carrying the given stable id. Every
    /// key either stays on its old member or moves to the new one — never
    /// between survivors (≈ 1/(n+1) of the space moves).
    ///
    /// # Panics
    ///
    /// Panics when `id` is already a member.
    pub fn with_added(&self, id: u64) -> ShardRouter {
        assert!(
            !self.members.contains(&id),
            "shard id {id} is already a ring member"
        );
        let mut members = self.members.clone();
        members.push(id);
        Self::from_members(members, self.granularity)
    }

    /// A router without the member at `slot`. Only the departing member's
    /// keys move (to the survivors that now own its ring arcs); every other
    /// key keeps its member.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range or names the last member.
    pub fn with_removed(&self, slot: usize) -> ShardRouter {
        assert!(slot < self.members.len(), "no member at slot {slot}");
        assert!(
            self.members.len() > 1,
            "a controller tier needs at least one shard"
        );
        let mut members = self.members.clone();
        members.remove(slot);
        Self::from_members(members, self.granularity)
    }

    /// Number of shards the router spreads over.
    pub fn shard_count(&self) -> usize {
        self.members.len()
    }

    /// The members' stable ids, in slot order.
    pub fn shard_ids(&self) -> &[u64] {
        &self.members
    }

    /// The granularity the routing key is normalized under.
    pub fn granularity(&self) -> CacheGranularity {
        self.granularity
    }

    /// The direction-independent routing key for a flow (see the type-level
    /// rules). `routing_key(flow) == routing_key(flow.reversed())` for every
    /// flow and granularity.
    pub fn routing_key(&self, flow: &FiveTuple) -> FiveTuple {
        match self.granularity {
            CacheGranularity::ExactFiveTuple => flow.canonical(),
            CacheGranularity::HostPair | CacheGranularity::HostPairDstPort => {
                CacheGranularity::HostPair.key(flow)
            }
        }
    }

    /// The shard **slot** a flow belongs to (an index into
    /// [`ShardRouter::shard_ids`]).
    pub fn route(&self, flow: &FiveTuple) -> usize {
        let key = self.routing_key(flow);
        let mut bytes = [0u8; 13];
        bytes[..4].copy_from_slice(&key.src_ip.0.to_be_bytes());
        bytes[4..8].copy_from_slice(&key.dst_ip.0.to_be_bytes());
        bytes[8..10].copy_from_slice(&key.src_port.to_be_bytes());
        bytes[10..12].copy_from_slice(&key.dst_port.to_be_bytes());
        bytes[12] = key.protocol.number();
        let hash = fnv1a(&bytes);
        // First ring point at or after the key's position, wrapping.
        let at = self.ring.partition_point(|(point, _)| *point < hash);
        let (_, slot) = self.ring[at % self.ring.len()];
        slot
    }

    /// The **stable id** of the shard a flow belongs to. Unlike the slot,
    /// the id survives membership changes, which is what reshard handoff
    /// routes by.
    pub fn route_id(&self, flow: &FiveTuple) -> u64 {
        self.members[self.route(flow)]
    }
}

/// N independent [`IdentxxController`] shards behind a [`ShardRouter`].
///
/// Every shard compiles the same [`ControllerConfig`] and owns its own query
/// backend, state table, and audit log; the router keeps each flow (and
/// everything that could alias it in the cache) on one shard. Decisions are
/// therefore identical to a single controller's — `tests/sharding.rs` pins
/// this — while [`ShardedController::decide_stream`] spreads independent
/// flows over parallel shard threads.
pub struct ShardedController {
    shards: Vec<IdentxxController>,
    /// Stable id per shard, parallel to `shards`. Ids are never reused, so
    /// a shard added after a removal gets fresh ring points.
    ids: Vec<u64>,
    /// Routes over the **active** ids; a drained shard's id is absent even
    /// while its controller still sits in `shards` awaiting removal.
    router: ShardRouter,
    next_id: u64,
    /// Bumped on every membership change (add / drain / remove): the
    /// routing epoch drills assert against.
    epoch: u64,
    /// Transport counters of removed shards, folded in so tier totals stay
    /// monotone across removals.
    retired_stats: BackendStats,
    /// Verify-plane counters of removed shards, same monotonicity story.
    retired_verify_stats: VerifyCacheStats,
}

/// Adds one shard's verify-plane counters into an accumulator (counters are
/// per-shard work, so the tier view sums, exactly like [`BackendStats`]).
fn fold_verify_stats(acc: &mut VerifyCacheStats, stats: VerifyCacheStats) {
    acc.hits += stats.hits;
    acc.misses += stats.misses;
    acc.evictions += stats.evictions;
    acc.valid += stats.valid;
    acc.expired += stats.expired;
    acc.not_yet_valid += stats.not_yet_valid;
    acc.forged += stats.forged;
    acc.unparseable += stats.unparseable;
}

impl ShardedController {
    /// Builds `shard_count` shards from one configuration, each compiling
    /// the policy independently and starting with the default in-process
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics when `shard_count` is zero.
    pub fn new(config: ControllerConfig, shard_count: usize) -> Result<ShardedController, PfError> {
        assert!(
            shard_count > 0,
            "a controller tier needs at least one shard"
        );
        let router = ShardRouter::new(shard_count, config.cache_granularity);
        let shards = (0..shard_count)
            .map(|_| IdentxxController::new(config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedController {
            shards,
            ids: (0..shard_count as u64).collect(),
            router,
            next_id: shard_count as u64,
            epoch: 0,
            retired_stats: BackendStats::default(),
            retired_verify_stats: VerifyCacheStats::default(),
        })
    }

    /// Attaches a network map to every shard (builder style); any shard can
    /// install entries along any path.
    pub fn with_network(mut self, network: NetworkMap) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|shard| shard.with_network(network.clone()))
            .collect();
        self
    }

    /// Gives each shard its own query backend (builder style): the factory
    /// is called once per shard, in shard order. This is the seam the
    /// deployment shape flows through — e.g. every shard gets its own
    /// [`crate::backend::NetworkBackend`] with its own connection pool, so
    /// shards never contend on a client.
    pub fn with_backends(
        mut self,
        mut factory: impl FnMut(usize) -> Box<dyn QueryBackend>,
    ) -> Self {
        for (index, shard) in self.shards.iter_mut().enumerate() {
            shard.set_backend(factory(index));
        }
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard index a flow routes to (an index into
    /// [`ShardedController::shards`], valid until the next membership
    /// change).
    pub fn shard_for(&self, flow: &FiveTuple) -> usize {
        self.slot_of(self.router.route_id(flow))
    }

    /// The stable id of the shard at a slot.
    pub fn shard_id(&self, slot: usize) -> u64 {
        self.ids[slot]
    }

    /// Whether the shard at a slot has been drained (owns no keys; awaiting
    /// removal).
    pub fn is_drained(&self, slot: usize) -> bool {
        !self.router.shard_ids().contains(&self.ids[slot])
    }

    /// The routing epoch: bumped on every membership change, so a drill can
    /// assert which routing generation a round of decisions ran under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Maps a stable shard id to its current slot in `shards`.
    fn slot_of(&self, id: u64) -> usize {
        self.ids
            .iter()
            .position(|&member| member == id)
            .expect("every routable id has a controller slot")
    }

    /// A shard, by index.
    pub fn shard(&self, index: usize) -> &IdentxxController {
        &self.shards[index]
    }

    /// Mutable access to a shard, by index.
    pub fn shard_mut(&mut self, index: usize) -> &mut IdentxxController {
        &mut self.shards[index]
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[IdentxxController] {
        &self.shards
    }

    /// Registers an end-host daemon with **every** shard's in-process
    /// backend (cloned per shard): any flow involving the host routes to
    /// exactly one shard, but which one depends on the peer, so each shard
    /// must be able to query it. When the shards share one daemon directory
    /// (`SharedDirectoryBackend`), the daemon is registered once through the
    /// shared handle and every shard sees it immediately — the arrival half
    /// of population churn.
    ///
    /// # Panics
    ///
    /// Panics when a shard runs a non-in-process backend (register endpoints
    /// on the shard's `NetworkBackend` instead, via
    /// [`ShardedController::shard_mut`]).
    pub fn register_daemon(&mut self, daemon: Daemon) {
        if let Some(directory) = self.shards[0].shared_daemons() {
            directory
                .lock()
                .expect("shared daemon directory poisoned")
                .register(daemon);
            return;
        }
        for shard in &mut self.shards {
            shard.register_daemon(daemon.clone());
        }
    }

    /// Removes an end-host daemon from the tier's query plane — the
    /// departure half of population churn. Over a shared directory the
    /// removal happens once and is visible to every shard; over per-shard
    /// in-process backends each shard's clone is dropped. Returns whether
    /// any backend held the daemon. Flows that still name the departed host
    /// go unanswered, which is exactly the silent-host shape the fail-closed
    /// configuration (`ControllerConfig::with_fail_closed_on_unanswered`)
    /// exists for.
    ///
    /// # Panics
    ///
    /// Panics when a shard runs a non-in-process backend.
    pub fn unregister_daemon(&mut self, addr: identxx_proto::Ipv4Addr) -> bool {
        if let Some(directory) = self.shards[0].shared_daemons() {
            return directory
                .lock()
                .expect("shared daemon directory poisoned")
                .unregister(addr)
                .is_some();
        }
        let mut removed = false;
        for shard in &mut self.shards {
            removed |= shard.unregister_daemon(addr);
        }
        removed
    }

    /// Marks every shard compromised (§5.1) or restores them.
    pub fn set_compromised(&mut self, compromised: bool) {
        for shard in &mut self.shards {
            shard.set_compromised(compromised);
        }
    }

    /// Replaces (or adds) one `.control` file on every shard and recompiles;
    /// shard state tables are cleared exactly as on a single controller.
    /// The update is not transactional across shards: a decision racing the
    /// rollout may still see the old policy on a not-yet-updated shard.
    pub fn update_control_file(
        &mut self,
        name: impl Into<String>,
        contents: impl Into<String>,
    ) -> Result<(), PfError> {
        let name = name.into();
        let contents = contents.into();
        for shard in &mut self.shards {
            shard.update_control_file(name.clone(), contents.clone())?;
        }
        Ok(())
    }

    /// Removes a `.control` file from every shard; `Ok(true)` when it
    /// existed.
    pub fn remove_control_file(&mut self, name: &str) -> Result<bool, PfError> {
        let mut removed = false;
        for shard in &mut self.shards {
            removed |= shard.remove_control_file(name)?;
        }
        Ok(removed)
    }

    /// Grows the tier by one shard, **live**. The new shard compiles the
    /// tier's current policy (including every `.control` update applied so
    /// far), takes the caller-supplied query backend, and joins the
    /// consistent-hash ring under a fresh stable id — capturing ≈ 1/(n+1)
    /// of the key space. Before the router switches, the state-table
    /// entries and audit records of exactly the captured keys are handed
    /// off verbatim from their old owners, so a migrated flow still hits
    /// the cache entry it warmed before the reshard: decisions are
    /// identical to a never-resharded tier's in every observable
    /// (`tests/sharding.rs` and the E12 reshard drill pin this). Returns
    /// the new shard's slot.
    pub fn add_shard(&mut self, backend: Box<dyn QueryBackend>) -> Result<usize, PfError> {
        let id = self.next_id;
        self.next_id += 1;
        let config = self.shards[0].config().clone();
        let mut shard = IdentxxController::new(config)?;
        if let Some(network) = self.shards[0].network() {
            shard = shard.with_network(network.clone());
        }
        shard.set_backend(backend);

        // Hand off the captured partition under the *next* router while the
        // current one still serves: every stored key (state tables index by
        // granularity-normalized tuples, which route exactly like the flows
        // that produced them) and every audit record the grown ring assigns
        // to the new member moves, verbatim.
        let next_router = self.router.with_added(id);
        let mut captured_state = Vec::new();
        let mut captured_audit = Vec::new();
        for peer in &mut self.shards {
            captured_state.extend(
                peer.state_table_mut()
                    .extract_where(|key| next_router.route_id(key) == id),
            );
            captured_audit.extend(
                peer.audit_mut()
                    .extract_records_where(|record| next_router.route_id(&record.flow) == id),
            );
        }
        shard.state_table_mut().absorb(captured_state);
        shard.audit_mut().absorb_records(captured_audit);

        self.shards.push(shard);
        self.ids.push(id);
        self.router = next_router;
        self.epoch += 1;
        Ok(self.shards.len() - 1)
    }

    /// Drains one shard, **live**: its id leaves the ring (no flow routes
    /// to it any more) and its state entries and audit records move to the
    /// survivors that now own its keys — nothing is lost, nothing is
    /// decided twice. The controller itself stays in place (still readable,
    /// still counted in [`ShardedController::backend_stats`]) until
    /// [`ShardedController::remove_shard`] drops it.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range, the shard is already drained, or
    /// it is the last active member (the tier must keep deciding).
    pub fn drain_shard(&mut self, slot: usize) {
        let id = self.ids[slot];
        let member = self
            .router
            .shard_ids()
            .iter()
            .position(|&m| m == id)
            .expect("drain_shard: shard is already drained");
        let next_router = self.router.with_removed(member);

        let state = self.shards[slot].state_table_mut().extract_where(|_| true);
        let audit = self.shards[slot]
            .audit_mut()
            .extract_records_where(|_| true);
        // Group the departing history by its new owner (under the shrunk
        // ring only the drained member's keys move), then absorb per owner.
        let ids = self.ids.clone();
        let owner_slot = |flow: &FiveTuple| {
            let owner = next_router.route_id(flow);
            ids.iter()
                .position(|&member| member == owner)
                .expect("every routable id has a controller slot")
        };
        let mut state_per_owner: Vec<Vec<_>> = vec![Vec::new(); self.shards.len()];
        for (key, entry) in state {
            state_per_owner[owner_slot(&key)].push((key, entry));
        }
        let mut audit_per_owner: Vec<Vec<AuditRecord>> = vec![Vec::new(); self.shards.len()];
        for record in audit {
            audit_per_owner[owner_slot(&record.flow)].push(record);
        }
        for (owner, entries) in state_per_owner.into_iter().enumerate() {
            if !entries.is_empty() {
                self.shards[owner].state_table_mut().absorb(entries);
            }
        }
        for (owner, records) in audit_per_owner.into_iter().enumerate() {
            if !records.is_empty() {
                self.shards[owner].audit_mut().absorb_records(records);
            }
        }

        self.router = next_router;
        self.epoch += 1;
    }

    /// Removes one shard from the tier — draining it first if it still owns
    /// keys — and returns the retired controller (its state table and audit
    /// log are empty, the history having moved to the survivors; its
    /// backend is intact for the caller to shut down). The retired shard's
    /// transport counters fold into an accumulator so
    /// [`ShardedController::backend_stats`] stays monotone across removals.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range or names the last active member.
    pub fn remove_shard(&mut self, slot: usize) -> IdentxxController {
        if !self.is_drained(slot) {
            self.drain_shard(slot);
        }
        let retired = self.shards.remove(slot);
        self.ids.remove(slot);
        let stats = retired.backend_stats();
        self.retired_stats.queries_sent += stats.queries_sent;
        self.retired_stats.responses_received += stats.responses_received;
        self.retired_stats.timeouts += stats.timeouts;
        fold_verify_stats(&mut self.retired_verify_stats, retired.verify_stats());
        self.epoch += 1;
        retired
    }

    /// Routes one flow to its shard and decides it there.
    pub fn decide(&mut self, flow: &FiveTuple, now: u64) -> FlowDecision {
        let shard = self.shard_for(flow);
        self.shards[shard].decide(flow, now)
    }

    /// Decides one batch of flows: each shard's share goes through one
    /// batched query round ([`IdentxxController::decide_batch`]), busy
    /// shards running on parallel threads. Results come back in input
    /// order.
    pub fn decide_batch(&mut self, flows: &[FiveTuple], now: u64) -> Vec<FlowDecision> {
        self.decide_stream(flows, flows.len().max(1), now)
    }

    /// Decides a stream of flows at a given query-round size: the stream is
    /// partitioned over the shards once, every busy shard processes its
    /// share on its own thread in rounds of `batch_size` flows, and the
    /// decisions come back in input order. This is the controller tier's
    /// throughput shape — thread startup is paid per *stream*, not per
    /// round — and what the E9 sweep measures.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is zero.
    pub fn decide_stream(
        &mut self,
        flows: &[FiveTuple],
        batch_size: usize,
        now: u64,
    ) -> Vec<FlowDecision> {
        assert!(batch_size > 0, "a query round needs at least one flow");
        let mut per_shard: Vec<Vec<(usize, FiveTuple)>> = vec![Vec::new(); self.shards.len()];
        for (index, flow) in flows.iter().enumerate() {
            per_shard[self.shard_for(flow)].push((index, *flow));
        }

        let mut decisions: Vec<Option<FlowDecision>> = (0..flows.len()).map(|_| None).collect();
        let busy = per_shard.iter().filter(|work| !work.is_empty()).count();
        if busy <= 1 {
            // One busy shard (or none): run inline, no thread to pay for.
            for (shard, work) in self.shards.iter_mut().zip(&per_shard) {
                Self::run_share(shard, work, batch_size, now, &mut decisions);
            }
        } else {
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(&per_shard)
                    .filter(|(_, work)| !work.is_empty())
                    .map(|(shard, work)| {
                        scope.spawn(move || {
                            // Run the share over shard-local slots, then pair
                            // each decision with its global flow index.
                            let mut slots: Vec<Option<FlowDecision>> =
                                (0..work.len()).map(|_| None).collect();
                            let local: Vec<(usize, FiveTuple)> = work
                                .iter()
                                .enumerate()
                                .map(|(i, &(_, flow))| (i, flow))
                                .collect();
                            Self::run_share(shard, &local, batch_size, now, &mut slots);
                            work.iter()
                                .zip(slots)
                                .map(|(&(index, _), decision)| (index, decision))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("shard thread panicked"))
                    .collect::<Vec<_>>()
            });
            for (index, decision) in results {
                decisions[index] = decision;
            }
        }

        decisions
            .into_iter()
            .map(|d| d.expect("every flow is decided by its shard"))
            .collect()
    }

    /// Runs one shard's share of a stream in rounds of `batch_size`,
    /// writing each decision into its flow's slot.
    fn run_share(
        shard: &mut IdentxxController,
        work: &[(usize, FiveTuple)],
        batch_size: usize,
        now: u64,
        decisions: &mut [Option<FlowDecision>],
    ) {
        for round in work.chunks(batch_size) {
            let flows: Vec<FiveTuple> = round.iter().map(|&(_, flow)| flow).collect();
            for (&(index, _), decision) in round.iter().zip(shard.decide_batch(&flows, now)) {
                decisions[index] = Some(decision);
            }
        }
    }

    /// Transport counters **summed** over the shards. Sum, not max: every
    /// shard's queries really went out, so the merged view is the tier's
    /// total query work (a latency merge would take the max instead — see
    /// DESIGN.md §6).
    pub fn backend_stats(&self) -> BackendStats {
        let mut merged = self.retired_stats;
        for shard in &self.shards {
            let stats = shard.backend_stats();
            merged.queries_sent += stats.queries_sent;
            merged.responses_received += stats.responses_received;
            merged.timeouts += stats.timeouts;
        }
        merged
    }

    /// Verify-plane counters **summed** over the shards (each shard owns an
    /// independent verify cache, so the tier view is total verification
    /// work), plus the folded counters of removed shards.
    pub fn verify_stats(&self) -> VerifyCacheStats {
        let mut merged = self.retired_verify_stats;
        for shard in &self.shards {
            fold_verify_stats(&mut merged, shard.verify_stats());
        }
        merged
    }

    /// Total audited decisions across the shards.
    pub fn audit_len(&self) -> usize {
        self.shards.iter().map(|s| s.audit().len()).sum()
    }

    /// The per-shard audit logs merged into one decision-time-ordered view.
    /// Ties are broken by `(shard slot, position in that shard's log)` —
    /// pinned by a test in `tests/sharding.rs` — so the merge is a total,
    /// deterministic order even when many shards decide at the same
    /// simulated instant.
    pub fn merged_audit(&self) -> Vec<AuditRecord> {
        let mut all: Vec<(u64, usize, usize, AuditRecord)> = Vec::new();
        for (slot, shard) in self.shards.iter().enumerate() {
            for (seq, record) in shard.audit().records().iter().enumerate() {
                all.push((record.time, slot, seq, record.clone()));
            }
        }
        all.sort_by_key(|&(time, slot, seq, _)| (time, slot, seq));
        all.into_iter().map(|(_, _, _, record)| record).collect()
    }

    /// Fraction of decisions served from shard-local state tables.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.audit_len();
        if total == 0 {
            return 0.0;
        }
        let hits: usize = self
            .shards
            .iter()
            .map(|s| s.audit().records().iter().filter(|r| r.from_cache).count())
            .sum();
        hits as f64 / total as f64
    }

    /// Total ident++ queries accounted across every shard's audit log.
    pub fn total_queries(&self) -> u64 {
        self.shards.iter().map(|s| s.audit().total_queries()).sum()
    }
}

impl std::fmt::Debug for ShardedController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedController")
            .field("shards", &self.shards.len())
            .field("granularity", &self.router.granularity())
            .field("audited", &self.audit_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_hostmodel::Host;
    use identxx_proto::Ipv4Addr;

    fn flows(n: u32) -> impl Iterator<Item = FiveTuple> {
        (0..n).map(|i| {
            FiveTuple::tcp(
                [10, (i % 7) as u8, (i % 23) as u8, (i % 251) as u8],
                40_000 + (i % 1000) as u16,
                [10, 1, (i % 13) as u8, ((i * 7) % 251) as u8],
                [80u16, 443, 22, 25][(i % 4) as usize],
            )
        })
    }

    #[test]
    fn router_is_reverse_stable_for_every_granularity() {
        for granularity in [
            CacheGranularity::ExactFiveTuple,
            CacheGranularity::HostPair,
            CacheGranularity::HostPairDstPort,
        ] {
            let router = ShardRouter::new(8, granularity);
            for flow in flows(500) {
                assert_eq!(
                    router.route(&flow),
                    router.route(&flow.reversed()),
                    "flow and reverse must share a shard ({granularity:?})"
                );
            }
        }
    }

    #[test]
    fn router_spreads_and_single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(4, CacheGranularity::ExactFiveTuple);
        let mut per_shard = [0usize; 4];
        for flow in flows(2000) {
            per_shard[router.route(&flow)] += 1;
        }
        for (shard, count) in per_shard.iter().enumerate() {
            assert!(
                *count > 200,
                "shard {shard} starves: {per_shard:?} (vnode ring too lumpy)"
            );
        }
        let single = ShardRouter::new(1, CacheGranularity::ExactFiveTuple);
        assert!(flows(100).all(|flow| single.route(&flow) == 0));
    }

    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        let before = ShardRouter::new(4, CacheGranularity::HostPair);
        let after = ShardRouter::new(5, CacheGranularity::HostPair);
        let mut moved = 0usize;
        let mut total = 0usize;
        for flow in flows(2000) {
            total += 1;
            let old = before.route(&flow);
            let new = after.route(&flow);
            if old != new {
                moved += 1;
                assert_eq!(
                    new, 4,
                    "a key that moves must move to the shard that was added"
                );
            }
        }
        // Roughly 1/5 of the keys should move; generous bounds keep the test
        // robust to hash lumpiness.
        assert!(moved > total / 20, "suspiciously few keys moved: {moved}");
        assert!(
            moved < total / 2,
            "consistent hashing moved too much: {moved}"
        );
    }

    #[test]
    fn sharded_controller_merges_stats_and_audit() {
        let config = ControllerConfig::new().with_control_file(
            "00.control",
            "block all\npass all with eq(@src[name], firefox) keep state\n",
        );
        let mut sharded = ShardedController::new(config, 4).unwrap();
        assert_eq!(sharded.shard_count(), 4);
        for host in 1..=6u8 {
            sharded.register_daemon(Daemon::bare(Host::new(
                format!("h{host}"),
                Ipv4Addr::new(10, 0, 0, host),
            )));
        }
        let all: Vec<FiveTuple> = (1..=3u8)
            .map(|i| FiveTuple::tcp([10, 0, 0, i], 40_000 + i as u16, [10, 0, 0, i + 3], 80))
            .collect();
        let decisions = sharded.decide_batch(&all, 7);
        assert_eq!(decisions.len(), 3);
        // Bare daemons answer with no process info: default-deny blocks.
        assert!(decisions.iter().all(|d| !d.is_pass()));
        let stats = sharded.backend_stats();
        assert_eq!(stats.queries_sent, 6);
        assert_eq!(stats.responses_received, 6);
        assert_eq!(sharded.audit_len(), 3);
        let merged = sharded.merged_audit();
        assert_eq!(merged.len(), 3);
        assert!(merged.iter().all(|r| r.time == 7));
        assert_eq!(sharded.total_queries(), 6);
        assert_eq!(sharded.cache_hit_ratio(), 0.0);
        // Every decision landed on the shard the router names.
        for flow in &all {
            let shard = sharded.shard_for(flow);
            assert!(sharded
                .shard(shard)
                .audit()
                .records()
                .iter()
                .any(|r| r.flow == *flow));
        }
    }

    #[test]
    fn removing_a_member_does_not_move_surviving_keys() {
        let before = ShardRouter::new(5, CacheGranularity::HostPair);
        let after = before.with_removed(2);
        assert_eq!(after.shard_ids(), &[0, 1, 3, 4]);
        for flow in flows(2000) {
            let old = before.route_id(&flow);
            let new = after.route_id(&flow);
            if old != 2 {
                assert_eq!(old, new, "a surviving member's key must not move");
            } else {
                assert_ne!(new, 2, "the removed member must own nothing");
            }
        }
    }

    /// A tier that grows and shrinks mid-stream decides exactly like one
    /// that never changed, and every cached entry survives the handoff.
    #[test]
    fn add_drain_remove_conserve_state_and_decisions() {
        let config = || {
            ControllerConfig::new()
                .with_control_file("00.control", "block all\npass all keep state\n")
        };
        let mut elastic = ShardedController::new(config(), 3).unwrap();
        let all: Vec<FiveTuple> = flows(60).collect();
        for flow in &all {
            assert!(elastic.decide(flow, 0).is_pass());
        }
        let warmed: usize = elastic.shards().iter().map(|s| s.state_table().len()).sum();
        assert!(warmed > 0);
        let audited = elastic.audit_len();
        let queries_before = elastic.backend_stats().queries_sent;

        // Grow: the new shard takes over ≈ 1/4 of the keys plus their
        // history; nothing is lost and repeats still hit the cache.
        let slot = elastic
            .add_shard(Box::new(crate::backend::InProcessBackend::new()))
            .unwrap();
        assert_eq!(slot, 3);
        assert_eq!(elastic.shard_id(slot), 3);
        assert_eq!(elastic.epoch(), 1);
        let after_add: usize = elastic.shards().iter().map(|s| s.state_table().len()).sum();
        assert_eq!(after_add, warmed, "growing must conserve state entries");
        assert!(
            !elastic.shard(slot).state_table().is_empty(),
            "the new shard should capture part of the key space"
        );
        assert_eq!(elastic.audit_len(), audited);
        for flow in &all {
            let decision = elastic.decide(flow, 1);
            assert!(
                decision.is_pass() && decision.from_cache,
                "a migrated entry must serve its flow on the new owner"
            );
        }
        // Every stored key sits on the shard the router names for it.
        for (slot, shard) in elastic.shards().iter().enumerate() {
            for (key, _) in shard.state_table().entries() {
                assert_eq!(elastic.shard_for(key), slot);
            }
        }

        // Drain: the shard leaves the ring, its history moves to survivors,
        // the controller lingers for reads. (The cache-hit round above
        // audited 60 more records; conservation is asserted against the
        // count at drain time.)
        let audited = elastic.audit_len();
        elastic.drain_shard(1);
        assert!(elastic.is_drained(1));
        assert_eq!(elastic.epoch(), 2);
        assert_eq!(elastic.shard(1).state_table().len(), 0);
        assert!(elastic.shard(1).audit().is_empty());
        let after_drain: usize = elastic.shards().iter().map(|s| s.state_table().len()).sum();
        assert_eq!(after_drain, warmed, "draining must conserve state entries");
        assert_eq!(elastic.audit_len(), audited);
        for flow in &all {
            assert_ne!(
                elastic.shard_for(flow),
                1,
                "no flow routes to a drained shard"
            );
            let decision = elastic.decide(flow, 2);
            assert!(decision.is_pass() && decision.from_cache);
        }

        // Remove: the retired controller comes back empty; tier totals stay
        // monotone because its transport counters fold into the accumulator.
        let queries_with_shard = elastic.backend_stats().queries_sent;
        let audited = elastic.audit_len();
        let retired = elastic.remove_shard(1);
        assert!(retired.state_table().is_empty() && retired.audit().is_empty());
        assert_eq!(elastic.shard_count(), 3);
        assert_eq!(elastic.epoch(), 3);
        assert_eq!(elastic.backend_stats().queries_sent, queries_with_shard);
        assert!(queries_with_shard >= queries_before);
        assert_eq!(elastic.audit_len(), audited);

        // The whole churned tier still decides identically to a fixed one.
        let mut fixed = ShardedController::new(config(), 3).unwrap();
        for flow in &all {
            fixed.decide(flow, 0);
        }
        for flow in &all {
            let churned = elastic.decide(flow, 3);
            let baseline = fixed.decide(flow, 3);
            assert_eq!(churned.verdict.decision, baseline.verdict.decision);
            assert_eq!(churned.from_cache, baseline.from_cache);
        }
    }

    #[test]
    fn shard_ids_are_never_reused() {
        let config = ControllerConfig::new().with_control_file("00.control", "block all\n");
        let mut elastic = ShardedController::new(config, 2).unwrap();
        elastic.remove_shard(0);
        let slot = elastic
            .add_shard(Box::new(crate::backend::InProcessBackend::new()))
            .unwrap();
        assert_eq!(elastic.shard_id(slot), 2, "removed id 0 must not come back");
        assert_eq!(elastic.router().shard_ids(), &[1, 2]);
    }

    #[test]
    fn merged_audit_breaks_time_ties_by_shard_then_sequence() {
        let config = ControllerConfig::new().with_control_file("00.control", "pass all\n");
        let mut sharded = ShardedController::new(config, 4).unwrap();
        let all: Vec<FiveTuple> = flows(40).collect();
        // Everything decides at the same instant: order is entirely up to
        // the tie-break.
        sharded.decide_batch(&all, 7);
        let merged = sharded.merged_audit();
        assert_eq!(merged.len(), 40);
        // Expected order: shard 0's log in sequence, then shard 1's, …
        let expected: Vec<_> = sharded
            .shards()
            .iter()
            .flat_map(|s| s.audit().records().iter().cloned())
            .collect();
        assert_eq!(merged, expected);
    }

    #[test]
    fn policy_updates_reach_every_shard() {
        let config = ControllerConfig::new().with_control_file("00.control", "block all\n");
        let mut sharded = ShardedController::new(config, 3).unwrap();
        sharded
            .update_control_file("50.control", "pass all keep state\n")
            .unwrap();
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40_000, [10, 0, 0, 2], 80);
        assert!(sharded.decide(&flow, 0).is_pass());
        assert!(sharded.remove_control_file("50.control").unwrap());
        assert!(!sharded.decide(&flow, 1).is_pass());
        sharded.set_compromised(true);
        assert!(sharded.decide(&flow, 2).is_pass());
    }
}
