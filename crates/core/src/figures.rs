//! Every configuration figure of the paper as an executable scenario.
//!
//! The paper contains no measured results; its figures are configuration
//! files and rules (Figs. 2–8). Reproducing the paper therefore means showing
//! that *those exact policies*, fed through the full implementation (daemon →
//! controller → PF+=2 evaluation), produce the decisions the prose describes.
//! Each function here builds the scenario and returns the flows with their
//! expected and actual decisions; the integration tests and examples assert
//! and display them.

use identxx_controller::ControllerConfig;
use identxx_crypto::KeyPair;
use identxx_daemon::appconfig::signed_app_config;
use identxx_hostmodel::Executable;
use identxx_pf::Decision;
use identxx_proto::{FiveTuple, Ipv4Addr};

use crate::network::EnterpriseNetwork;
use crate::scenario::ScenarioFlow;
use crate::skype_app;

/// A figure reproduced as a runnable scenario.
pub struct FigureScenario {
    /// Which figure(s) of the paper this reproduces.
    pub name: String,
    /// The flows exercised, with expected (paper) and actual decisions.
    pub flows: Vec<ScenarioFlow>,
    /// The network, for further inspection by tests.
    pub network: EnterpriseNetwork,
}

impl FigureScenario {
    /// Whether every flow's decision matches the paper.
    pub fn all_match(&self) -> bool {
        self.flows.iter().all(ScenarioFlow::matches)
    }
}

fn check(
    network: &mut EnterpriseNetwork,
    flows: &mut Vec<ScenarioFlow>,
    description: &str,
    flow: FiveTuple,
    expected: Decision,
) {
    let decision = network.decide(&flow);
    flows.push(ScenarioFlow {
        description: description.to_string(),
        flow,
        expected,
        actual: decision.verdict.decision,
    });
}

/// **Figures 2 and 3**: the three controller `.control` files (local header,
/// Skype policy from the application developer, local footer) plus the Skype
/// daemon configuration.
pub fn figure2_skype() -> FigureScenario {
    // Hosts: [0] = protected server 10.0.0.1, the rest are LAN clients.
    let header = "table <server> { 10.0.0.1 }\n\
                  table <lan> { 10.0.0.0/16 }\n\
                  table <int_hosts> { <lan> <server> }\n\
                  allowed = \"{ http ssh }\"\n\
                  # default deny\n\
                  block all\n\
                  # allow connections outbound\n\
                  pass from <int_hosts> \\\n    to !<int_hosts> \\\n    keep state\n\
                  # allow all traffic from approved apps\n\
                  pass from <int_hosts> \\\n    to <int_hosts> \\\n    with member(@src[name], $allowed) \\\n    keep state\n";
    let skype_file = "table <skype_update> { 123.123.123.0/24 }\n\
                      # skype to skype allowed\n\
                      pass all \\\n    with eq(@src[name], skype) \\\n    with eq(@dst[name], skype)\n\
                      # skype update feature\n\
                      pass from any \\\n    to <skype_update> port 80 \\\n    with eq(@src[name], skype) \\\n    keep state\n";
    let footer = "# no really old versions of skype\n\
                  block all \\\n    with eq(@src[name], skype) \\\n    with lt(@src[version], 200)\n\
                  # no skype to server\n\
                  block from any \\\n    to <server> \\\n    with eq(@src[name], skype)\n";
    let config = ControllerConfig::new()
        .with_control_file("00-local-header.control", header)
        .with_control_file("50-skype.control", skype_file)
        .with_control_file("99-local-footer.control", footer);
    let mut network = EnterpriseNetwork::star_with_config(8, config).unwrap();
    let hosts = network.host_addrs();
    let internet = Ipv4Addr::new(8, 8, 8, 8);
    let update_server = Ipv4Addr::new(123, 123, 123, 5);

    // Install the Fig. 3 skype daemon configuration on the clients (its
    // static pairs ride along in responses; the decisive keys here are the
    // OS-derived name/version).
    // Note: the installed version is reported by the OS lookup (it differs
    // per host), so the static configuration carries only version-independent
    // pairs; a later section would otherwise shadow the real version.
    let skype_daemon_conf =
        "@app /usr/bin/skype {\nname : skype\nvendor : skype.com\ntype : voip\n}\n";
    for addr in &hosts[1..] {
        let mut daemon = network.daemon_mut(*addr).unwrap();
        daemon
            .host_mut()
            .config
            .write_admin("/etc/identxx/50-skype.conf", skype_daemon_conf);
        daemon.reload_configs().unwrap();
    }

    let mut flows = Vec::new();

    // Outbound browsing to the Internet: allowed by the outbound rule.
    let firefox = crate::firefox_app();
    let f = network.start_app(hosts[1], internet, 443, "alice", firefox);
    check(
        &mut network,
        &mut flows,
        "firefox → internet:443 (outbound)",
        f,
        Decision::Pass,
    );

    // An approved internal app ("http" is in the $allowed macro).
    let http_app = Executable::new("/usr/bin/http", "http", 2, "apache.org", "web-server");
    let f = network.start_app(hosts[2], hosts[3], 8080, "bob", http_app);
    check(
        &mut network,
        &mut flows,
        "http app → internal host (approved apps)",
        f,
        Decision::Pass,
    );

    // Skype to skype between two LAN hosts.
    network.run_service(hosts[4], "carol", skype_app(210), 34000);
    let f = network.start_app(hosts[3], hosts[4], 34000, "bob", skype_app(210));
    check(
        &mut network,
        &mut flows,
        "skype → skype (both ends current)",
        f,
        Decision::Pass,
    );

    // Skype contacting its update server on port 80.
    let f = network.start_app(hosts[3], update_server, 80, "bob", skype_app(210));
    check(
        &mut network,
        &mut flows,
        "skype → update server:80",
        f,
        Decision::Pass,
    );

    // An old skype version is refused even to another skype.
    network.run_service(hosts[5], "dave", skype_app(210), 34000);
    let f = network.start_app(hosts[6], hosts[5], 34000, "erin", skype_app(150));
    check(
        &mut network,
        &mut flows,
        "old skype (v150) → skype",
        f,
        Decision::Block,
    );

    // Skype must never reach the protected server.
    network.run_service(hosts[0], "system", skype_app(210), 80);
    let f = network.start_app(hosts[3], hosts[0], 80, "bob", skype_app(210));
    check(
        &mut network,
        &mut flows,
        "skype → <server>",
        f,
        Decision::Block,
    );

    // A random unapproved application between internal hosts is blocked.
    let p2p = Executable::new("/usr/bin/p2p", "p2p", 1, "unknown", "p2p");
    let f = network.start_app(hosts[6], hosts[7], 9999, "erin", p2p);
    check(
        &mut network,
        &mut flows,
        "unapproved app → internal host",
        f,
        Decision::Block,
    );

    FigureScenario {
        name: "Figures 2–3: Skype policy".to_string(),
        flows,
        network,
    }
}

/// **Figures 4 and 5**: delegation to users — researchers run their own
/// applications whose signed requirements the controller enforces.
pub fn figure45_research() -> FigureScenario {
    let research_key = KeyPair::from_seed(b"research-group-key");
    let attacker_key = KeyPair::from_seed(b"attacker-key");

    // Hosts: [0..3] research machines, [4] production machine, [5] another
    // research machine used as a destination.
    let policy_header = "block all\n";
    let figure5 = format!(
        "dict <pubkeys> {{ \\\n    research : {} \\\n    admin : {} \\\n}}\n\
         # Allow only researchers to run applications\n\
         # and only access their own machines.\n\
         pass from <research-machines> \\\n\
             with member(@src[groupID], research) \\\n\
             to !<production-machines> \\\n\
             with member(@dst[groupID], research) \\\n\
             with allowed(@dst[requirements]) \\\n\
             with verify(@dst[req-sig], \\\n\
                 @pubkeys[research], \\\n\
                 @dst[exe-hash], \\\n\
                 @dst[app-name], \\\n\
                 @dst[requirements])\n",
        research_key.public().to_hex(),
        KeyPair::from_seed(b"admin-key").public().to_hex()
    );
    let tables = "table <research-machines> { 10.0.0.1 10.0.0.2 10.0.0.3 10.0.0.4 10.0.0.6 }\n\
                  table <production-machines> { 10.0.0.5 }\n";
    let config = ControllerConfig::new()
        .with_control_file("00-header.control", format!("{tables}{policy_header}"))
        .with_control_file("30-research.control", figure5);
    let mut network = EnterpriseNetwork::star_with_config(6, config).unwrap();
    let hosts = network.host_addrs();

    let research_exe = Executable::new(
        "/usr/bin/research-app",
        "research-app",
        1,
        "lab",
        "research",
    );
    // Figure 4: the research application only talks to itself.
    let requirements = "block all\n\
                        pass all \\\n    with eq(@src[name], research-app) \\\n    with eq(@dst[name], research-app)";
    let signed = signed_app_config(&research_exe, requirements, &research_key, None);

    // Destination research machine (hosts[5] = 10.0.0.6): runs research-app
    // under a researcher account and carries the signed configuration.
    {
        let mut daemon = network.daemon_mut(hosts[5]).unwrap();
        daemon.host_mut().add_user(identxx_hostmodel::User::new(
            "carol",
            1003,
            &["users", "research"],
        ));
        daemon.add_app_config(signed.clone());
        let pid = daemon.host_mut().spawn("carol", research_exe.clone());
        daemon
            .host_mut()
            .listen(pid, identxx_proto::IpProtocol::Tcp, 7000);
    }
    // Production machine (hosts[4] = 10.0.0.5) also runs the same listener —
    // but the controller's own rule forbids researchers from reaching it.
    {
        let mut daemon = network.daemon_mut(hosts[4]).unwrap();
        daemon.host_mut().add_user(identxx_hostmodel::User::new(
            "carol",
            1003,
            &["users", "research"],
        ));
        daemon.add_app_config(signed.clone());
        let pid = daemon.host_mut().spawn("carol", research_exe.clone());
        daemon
            .host_mut()
            .listen(pid, identxx_proto::IpProtocol::Tcp, 7000);
    }

    // Source research machine: alice (research group) runs research-app.
    {
        let mut daemon = network.daemon_mut(hosts[0]).unwrap();
        daemon.host_mut().add_user(identxx_hostmodel::User::new(
            "alice",
            1001,
            &["users", "research"],
        ));
    }

    let mut flows = Vec::new();

    // 1. research-app → research-app on a research machine: allowed.
    {
        let mut daemon = network.daemon_mut(hosts[0]).unwrap();
        let flow =
            daemon
                .host_mut()
                .open_connection("alice", research_exe.clone(), 45000, hosts[5], 7000);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "research-app → research machine (signed reqs)",
            flow,
            Decision::Pass,
        );
    }

    // 2. The same application toward a production machine: blocked by the
    //    administrator's coarse constraint, regardless of the delegation.
    {
        let mut daemon = network.daemon_mut(hosts[0]).unwrap();
        let flow =
            daemon
                .host_mut()
                .open_connection("alice", research_exe.clone(), 45001, hosts[4], 7000);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "research-app → production machine",
            flow,
            Decision::Block,
        );
    }

    // 3. A non-researcher running the same app: blocked (groupID check).
    {
        let mut daemon = network.daemon_mut(hosts[1]).unwrap();
        daemon
            .host_mut()
            .add_user(identxx_hostmodel::User::new("bob", 1002, &["users"]));
        let flow =
            daemon
                .host_mut()
                .open_connection("bob", research_exe.clone(), 45002, hosts[5], 7000);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "non-researcher runs research-app",
            flow,
            Decision::Block,
        );
    }

    // 4. A different app whose flow the signed requirements do not allow:
    //    web-browser → research machine port 7000. allowed() fails.
    {
        let mut daemon = network.daemon_mut(hosts[2]).unwrap();
        daemon.host_mut().add_user(identxx_hostmodel::User::new(
            "dana",
            1004,
            &["users", "research"],
        ));
        let flow =
            daemon
                .host_mut()
                .open_connection("dana", crate::firefox_app(), 45003, hosts[5], 7000);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "firefox → research machine (reqs disallow)",
            flow,
            Decision::Block,
        );
    }

    // 5. Requirements signed by the wrong key: verify() fails.
    {
        let forged = signed_app_config(&research_exe, requirements, &attacker_key, None);
        let mut daemon = network.daemon_mut(hosts[3]).unwrap();
        daemon.host_mut().add_user(identxx_hostmodel::User::new(
            "eve",
            1005,
            &["users", "research"],
        ));
        // The destination this time is a research host whose config carries
        // the forged signature.
        drop(daemon);
        let mut dst_daemon = network.daemon_mut(hosts[1]).unwrap();
        dst_daemon.add_app_config(forged);
        dst_daemon.host_mut().add_user(identxx_hostmodel::User::new(
            "carol",
            1003,
            &["users", "research"],
        ));
        let pid = dst_daemon.host_mut().spawn("carol", research_exe.clone());
        dst_daemon
            .host_mut()
            .listen(pid, identxx_proto::IpProtocol::Tcp, 7000);
        drop(dst_daemon);
        let mut daemon = network.daemon_mut(hosts[3]).unwrap();
        let flow =
            daemon
                .host_mut()
                .open_connection("eve", research_exe.clone(), 45004, hosts[1], 7000);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "requirements signed by untrusted key",
            flow,
            Decision::Block,
        );
    }

    FigureScenario {
        name: "Figures 4–5: delegation to researchers".to_string(),
        flows,
        network,
    }
}

/// **Figures 6 and 7**: trust delegation — a third-party security company
/// ("Secur") publishes signed per-application rules that the administrator
/// chooses to trust.
pub fn figure67_secur() -> FigureScenario {
    let secur_key = KeyPair::from_seed(b"Secur");
    let mallory_key = KeyPair::from_seed(b"mallory");

    let figure7 = format!(
        "dict <pubkeys> {{ \\\n    Secur : {} \\\n}}\n\
         # Allow users to run any applications approved\n\
         # by Secur and following rules Secur provides\n\
         pass from any \\\n\
             with eq(@src[rule-maker], Secur) \\\n\
             with allowed(@src[requirements]) \\\n\
             with verify(@src[req-sig], \\\n\
                 @pubkeys[Secur], \\\n\
                 @src[exe-hash], \\\n\
                 @src[app-name], \\\n\
                 @src[requirements]) \\\n\
             to any\n",
        secur_key.public().to_hex()
    );
    let config = ControllerConfig::new()
        .with_control_file("00-header.control", "block all\n")
        .with_control_file("30-secur.control", figure7);
    let mut network = EnterpriseNetwork::star_with_config(6, config).unwrap();
    let hosts = network.host_addrs();

    let thunderbird = Executable::new(
        "/usr/bin/thunderbird",
        "thunderbird",
        78,
        "mozilla",
        "email-client",
    );
    // Figure 6: thunderbird may only talk to email servers.
    let requirements = "block all\n\
                        pass from any \\\n    with eq(@src[name], thunderbird) \\\n    to any \\\n    with eq(@dst[type], email-server)";
    let secur_config = signed_app_config(&thunderbird, requirements, &secur_key, Some("Secur"));

    // hosts[1] is the mail server, hosts[2] a plain web server.
    let mail_exe = Executable::new("/usr/sbin/smtpd", "smtpd", 4, "openbsd", "email-server");
    let web_exe = Executable::new("/usr/sbin/httpd", "httpd", 2, "apache.org", "web-server");
    network.run_service(hosts[1], "smtp", mail_exe, 25);
    network.run_service(hosts[2], "www", web_exe, 80);

    let mut flows = Vec::new();

    // 1. thunderbird (Secur-approved) → mail server: allowed.
    {
        let mut daemon = network.daemon_mut(hosts[0]).unwrap();
        daemon.add_app_config(secur_config.clone());
        let flow =
            daemon
                .host_mut()
                .open_connection("alice", thunderbird.clone(), 46000, hosts[1], 25);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "thunderbird (Secur rules) → email server",
            flow,
            Decision::Pass,
        );
    }

    // 2. thunderbird → web server: Secur's rules do not allow it.
    {
        let mut daemon = network.daemon_mut(hosts[0]).unwrap();
        let flow =
            daemon
                .host_mut()
                .open_connection("alice", thunderbird.clone(), 46001, hosts[2], 80);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "thunderbird → web server (reqs disallow)",
            flow,
            Decision::Block,
        );
    }

    // 3. An application with rules "from Secur" but signed by someone else.
    {
        let fake = signed_app_config(&thunderbird, "pass all", &mallory_key, Some("Secur"));
        let mut daemon = network.daemon_mut(hosts[3]).unwrap();
        daemon.add_app_config(fake);
        let flow =
            daemon
                .host_mut()
                .open_connection("mallory", thunderbird.clone(), 46002, hosts[1], 25);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "forged Secur signature",
            flow,
            Decision::Block,
        );
    }

    // 4. An application without any Secur configuration: blocked by default.
    {
        let mut daemon = network.daemon_mut(hosts[4]).unwrap();
        let flow =
            daemon
                .host_mut()
                .open_connection("bob", crate::firefox_app(), 46003, hosts[1], 25);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "unapproved app → email server",
            flow,
            Decision::Block,
        );
    }

    FigureScenario {
        name: "Figures 6–7: trust delegation via Secur".to_string(),
        flows,
        network,
    }
}

/// **Figure 8**: user- and application-specific rules — only System users may
/// reach the Windows "Server" service, and only on patched machines
/// (Conficker / MS08-067 mitigation).
pub fn figure8_conficker() -> FigureScenario {
    let figure8 = "table <lan> { 10.0.0.0/16 }\n\
                   # default block everything\n\
                   block all\n\
                   # only allow \"system\" users in the LAN\n\
                   pass from <lan> \\\n\
                       with eq(@src[userID], system) \\\n\
                       to <lan> \\\n\
                       with eq(@dst[userID], system) \\\n\
                       with eq(@dst[name], Server) \\\n\
                       with includes(@dst[os-patch], MS08-067)\n";
    let config = ControllerConfig::new().with_control_file("10-user-rules.control", figure8);
    let mut network = EnterpriseNetwork::star_with_config(6, config).unwrap();
    let hosts = network.host_addrs();

    let server_exe = Executable::new(
        "/windows/system32/services.exe",
        "Server",
        6,
        "microsoft",
        "file-service",
    );
    // hosts[1]: patched file server; hosts[2]: unpatched file server.
    network.run_service(hosts[1], "system", server_exe.clone(), 445);
    network
        .daemon_mut(hosts[1])
        .unwrap()
        .host_mut()
        .install_patch("MS08-067");
    network.run_service(hosts[2], "system", server_exe.clone(), 445);

    let system_client = Executable::new(
        "/windows/system32/svchost.exe",
        "svchost",
        3,
        "microsoft",
        "system",
    );

    let mut flows = Vec::new();

    // 1. System user on a LAN host → patched Server service: allowed.
    {
        let mut daemon = network.daemon_mut(hosts[3]).unwrap();
        let flow = daemon.host_mut().open_connection(
            "system",
            system_client.clone(),
            47000,
            hosts[1],
            445,
        );
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "system → Server (patched host)",
            flow,
            Decision::Pass,
        );
    }

    // 2. Ordinary user → Server service: blocked.
    {
        let mut daemon = network.daemon_mut(hosts[3]).unwrap();
        let flow =
            daemon
                .host_mut()
                .open_connection("alice", system_client.clone(), 47001, hosts[1], 445);
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "ordinary user → Server",
            flow,
            Decision::Block,
        );
    }

    // 3. System user → unpatched host: blocked (the Conficker vector).
    {
        let mut daemon = network.daemon_mut(hosts[4]).unwrap();
        let flow = daemon.host_mut().open_connection(
            "system",
            system_client.clone(),
            47002,
            hosts[2],
            445,
        );
        drop(daemon);
        check(
            &mut network,
            &mut flows,
            "system → Server (unpatched host)",
            flow,
            Decision::Block,
        );
    }

    // 4. The Internet at large → Server service: blocked (not in <lan>).
    {
        let internet_flow = FiveTuple::tcp([203, 0, 113, 50], 55000, hosts[1], 445);
        check(
            &mut network,
            &mut flows,
            "internet → Server",
            internet_flow,
            Decision::Block,
        );
    }

    FigureScenario {
        name: "Figure 8: Conficker mitigation".to_string(),
        flows,
        network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::render_table;

    #[test]
    fn figure2_matches_paper() {
        let scenario = figure2_skype();
        assert_eq!(scenario.flows.len(), 7);
        assert!(scenario.all_match(), "\n{}", render_table(&scenario.flows));
    }

    #[test]
    fn figure45_matches_paper() {
        let scenario = figure45_research();
        assert_eq!(scenario.flows.len(), 5);
        assert!(scenario.all_match(), "\n{}", render_table(&scenario.flows));
    }

    #[test]
    fn figure67_matches_paper() {
        let scenario = figure67_secur();
        assert_eq!(scenario.flows.len(), 4);
        assert!(scenario.all_match(), "\n{}", render_table(&scenario.flows));
    }

    #[test]
    fn figure8_matches_paper() {
        let scenario = figure8_conficker();
        assert_eq!(scenario.flows.len(), 4);
        assert!(scenario.all_match(), "\n{}", render_table(&scenario.flows));
    }
}
