//! # identxx-core — the high-level ident++ API and paper-scenario library
//!
//! This crate ties the substrates together into the system a user of the
//! reproduction actually drives:
//!
//! * [`network`] — [`network::EnterpriseNetwork`]: a complete simulated
//!   ident++-protected enterprise (topology, software OpenFlow switches, the
//!   ident++ controller, and a daemon per host) with a data-plane entry point
//!   (`deliver`) and a timed flow-setup simulation reproducing Fig. 1.
//! * [`figures`] — each configuration figure of the paper (Figs. 2–8) as an
//!   executable scenario: the exact policy text, the hosts and applications it
//!   talks about, and the expected decisions.
//! * [`scenario`] — small result/reporting types shared by the figures,
//!   examples, and benchmarks.
//! * [`prelude`] — convenient re-exports for downstream users.
//!
//! ## Quickstart
//!
//! ```
//! use identxx_core::network::EnterpriseNetwork;
//! use identxx_core::prelude::*;
//!
//! // A 6-host enterprise with a default-deny policy that allows only flows
//! // whose *source application* is firefox — something a port-based firewall
//! // cannot express.
//! let policy = "block all\npass all with eq(@src[name], firefox) keep state\n";
//! let mut net = EnterpriseNetwork::star(6, policy).unwrap();
//! let hosts = net.host_addrs();
//!
//! let flow = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
//! let outcome = net.deliver_first_packet(&flow, 0);
//! assert!(outcome.delivered);
//! ```

pub mod figures;
pub mod network;
pub mod prelude;
pub mod scenario;

pub use network::{DaemonMut, EnterpriseNetwork};
pub use scenario::{FlowOutcome, FlowSetupReport, ScenarioFlow};

/// A firefox executable description used in documentation examples and the
/// quickstart.
pub fn firefox_app() -> identxx_hostmodel::Executable {
    identxx_hostmodel::Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser")
}

/// A skype executable description (version parameterized) used across
/// scenarios.
pub fn skype_app(version: i64) -> identxx_hostmodel::Executable {
    identxx_hostmodel::Executable::new("/usr/bin/skype", "skype", version, "skype.com", "voip")
}
