//! A complete simulated ident++-protected enterprise network.
//!
//! The facade drives one of two decision tiers behind the same API: a single
//! [`IdentxxController`] (the default, faithful to the paper's prototype) or
//! a [`ShardedController`] whose N shards all query **one** shared daemon
//! directory through [`SharedDirectoryBackend`] — so every scenario that
//! mutates hosts mid-experiment (compromises, new applications) works
//! unchanged when sharded, and any scenario table can run under
//! `IDENTXX_SHARDS` (DESIGN.md §6/§7).

use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};

use identxx_controller::{
    ControllerConfig, DaemonDirectory, FlowDecision, IdentxxController, NetworkMap,
    ShardedController, SharedDirectoryBackend,
};
use identxx_daemon::Daemon;
use identxx_hostmodel::{Executable, Host};
use identxx_netsim::{Duration, EventQueue, LinkProps, NodeId, NodeKind, Topology};
use identxx_openflow::{
    ControllerDirective, FlowMod, ForwardingResult, PacketHeader, Switch, SwitchId,
};
use identxx_pf::{Decision, PfError};
use identxx_proto::{FiveTuple, IpProtocol, Ipv4Addr};

use crate::scenario::{FlowOutcome, FlowSetupReport};

/// Per-hop processing cost charged by a switch in the timed simulation.
const SWITCH_PROCESSING: Duration = Duration::from_micros(5);
/// Daemon processing cost per ident++ query.
const DAEMON_PROCESSING: Duration = Duration::from_micros(50);
/// Fixed controller overhead per decision, on top of per-rule evaluation cost.
const CONTROLLER_OVERHEAD: Duration = Duration::from_micros(20);
/// Per-rule evaluation cost.
const PER_RULE_COST: Duration = Duration::from_micros(1);

/// The decision plane behind the facade: one controller, or a sharded tier
/// over a shared daemon directory.
enum DecisionTier {
    Single(Box<IdentxxController>),
    Sharded {
        tier: Box<ShardedController>,
        directory: Arc<Mutex<DaemonDirectory>>,
    },
}

/// Mutable access to one daemon, independent of the decision tier: a plain
/// borrow on the single-controller path, a held directory lock on the
/// sharded one. Derefs to [`Daemon`], so call sites read identically.
pub enum DaemonMut<'a> {
    /// Borrowed out of the single controller's in-process backend.
    Direct(&'a mut Daemon),
    /// Held lock over the sharded tier's shared directory.
    Shared(MutexGuard<'a, DaemonDirectory>, Ipv4Addr),
}

impl Deref for DaemonMut<'_> {
    type Target = Daemon;

    fn deref(&self) -> &Daemon {
        match self {
            DaemonMut::Direct(daemon) => daemon,
            DaemonMut::Shared(guard, addr) => {
                guard.get(*addr).expect("checked present at construction")
            }
        }
    }
}

impl DerefMut for DaemonMut<'_> {
    fn deref_mut(&mut self) -> &mut Daemon {
        match self {
            DaemonMut::Direct(daemon) => daemon,
            DaemonMut::Shared(guard, addr) => guard
                .get_mut(*addr)
                .expect("checked present at construction"),
        }
    }
}

/// A simulated enterprise: topology, software switches, the ident++
/// decision tier (with a daemon per host), and a data-plane entry point.
pub struct EnterpriseNetwork {
    tier: DecisionTier,
    map: NetworkMap,
    switches: BTreeMap<SwitchId, Switch>,
    host_addrs: Vec<Ipv4Addr>,
    clock: u64,
}

impl EnterpriseNetwork {
    /// Builds a network over an arbitrary topology and controller
    /// configuration. Every host node gets a bare daemon registered with the
    /// decision tier; every switch node gets a software switch.
    pub fn from_topology(
        topology: Topology,
        config: ControllerConfig,
    ) -> Result<EnterpriseNetwork, PfError> {
        EnterpriseNetwork::build(topology, config, 1)
    }

    /// [`EnterpriseNetwork::from_topology`] with the decision tier sharded
    /// `shards` ways: each shard gets a [`SharedDirectoryBackend`] over one
    /// shared daemon directory, so host mutations (compromises, new
    /// applications) are visible to every shard and decisions stay identical
    /// to the single-controller network. `shards <= 1` builds the single
    /// tier.
    pub fn from_topology_sharded(
        topology: Topology,
        config: ControllerConfig,
        shards: usize,
    ) -> Result<EnterpriseNetwork, PfError> {
        EnterpriseNetwork::build(topology, config, shards)
    }

    fn build(
        topology: Topology,
        config: ControllerConfig,
        shards: usize,
    ) -> Result<EnterpriseNetwork, PfError> {
        let map = NetworkMap::new(topology);
        let mut host_addrs = Vec::new();
        let mut daemons = Vec::new();
        for node in map.topology().nodes_of_kind(NodeKind::Host) {
            let info = map.topology().node(node).unwrap();
            host_addrs.push(info.addr);
            daemons.push(Daemon::bare(Host::new(info.name.clone(), info.addr)));
        }

        let tier = if shards <= 1 {
            let mut controller = IdentxxController::new(config)?.with_network(map.clone());
            for daemon in daemons {
                controller.register_daemon(daemon);
            }
            DecisionTier::Single(Box::new(controller))
        } else {
            let mut directory = DaemonDirectory::new();
            for daemon in daemons {
                directory.register(daemon);
            }
            let directory = Arc::new(Mutex::new(directory));
            let tier = ShardedController::new(config, shards)?
                .with_network(map.clone())
                .with_backends(|_| Box::new(SharedDirectoryBackend::new(Arc::clone(&directory))));
            DecisionTier::Sharded {
                tier: Box::new(tier),
                directory,
            }
        };

        let mut switches = BTreeMap::new();
        for node in map.topology().nodes_of_kind(NodeKind::Switch) {
            let id = map.switch_id(node).unwrap();
            let mut switch = Switch::new(id);
            // Teach the switch which port leads to each host MAC so the
            // compromised-switch fallback path has somewhere to forward.
            for host in map.topology().nodes_of_kind(NodeKind::Host) {
                let host_info = map.topology().node(host).unwrap();
                if let Some(path) = map.routing().path(node, host) {
                    if path.len() >= 2 {
                        if let Some(port) = map.port_toward(node, path[1]) {
                            switch.set_mac_port(map.mac_of(host_info.addr), port);
                        }
                    }
                }
            }
            switches.insert(id, switch);
        }

        Ok(EnterpriseNetwork {
            tier,
            map,
            switches,
            host_addrs,
            clock: 0,
        })
    }

    /// A star topology (`host_count` hosts on one switch) with a single
    /// `.control` policy file.
    pub fn star(host_count: usize, policy: &str) -> Result<EnterpriseNetwork, PfError> {
        let (topology, _sw, _ctrl, _hosts) = Topology::star(host_count, LinkProps::default());
        let config = ControllerConfig::new().with_control_file("00-policy.control", policy);
        EnterpriseNetwork::from_topology(topology, config)
    }

    /// A star topology with a full controller configuration.
    pub fn star_with_config(
        host_count: usize,
        config: ControllerConfig,
    ) -> Result<EnterpriseNetwork, PfError> {
        let (topology, _sw, _ctrl, _hosts) = Topology::star(host_count, LinkProps::default());
        EnterpriseNetwork::from_topology(topology, config)
    }

    /// A star topology with a full controller configuration and a sharded
    /// decision tier (see [`EnterpriseNetwork::from_topology_sharded`]).
    pub fn star_with_config_sharded(
        host_count: usize,
        config: ControllerConfig,
        shards: usize,
    ) -> Result<EnterpriseNetwork, PfError> {
        let (topology, _sw, _ctrl, _hosts) = Topology::star(host_count, LinkProps::default());
        EnterpriseNetwork::from_topology_sharded(topology, config, shards)
    }

    /// A linear chain of `switch_count` switches with one client and one
    /// server host (used to vary path length in the flow-setup experiment).
    pub fn chain(
        switch_count: usize,
        config: ControllerConfig,
    ) -> Result<EnterpriseNetwork, PfError> {
        let (topology, _c, _client, _server, _switches) =
            Topology::chain(switch_count, LinkProps::default());
        EnterpriseNetwork::from_topology(topology, config)
    }

    /// A two-tier enterprise tree.
    pub fn two_tier(
        edge_switches: usize,
        hosts_per_edge: usize,
        config: ControllerConfig,
    ) -> Result<EnterpriseNetwork, PfError> {
        let (topology, _core, _ctrl, _hosts) =
            Topology::two_tier(edge_switches, hosts_per_edge, LinkProps::default());
        EnterpriseNetwork::from_topology(topology, config)
    }

    /// Addresses of every end-host.
    pub fn host_addrs(&self) -> Vec<Ipv4Addr> {
        self.host_addrs.clone()
    }

    /// The ident++ controller.
    ///
    /// # Panics
    ///
    /// Panics when the network runs the sharded tier — use
    /// [`EnterpriseNetwork::sharded`] and the tier-agnostic stat facades
    /// ([`EnterpriseNetwork::audit_len`],
    /// [`EnterpriseNetwork::cache_hit_ratio`],
    /// [`EnterpriseNetwork::total_queries`]) there.
    pub fn controller(&self) -> &IdentxxController {
        match &self.tier {
            DecisionTier::Single(controller) => controller,
            DecisionTier::Sharded { .. } => {
                panic!("controller(): network runs a sharded tier; use sharded()")
            }
        }
    }

    /// Mutable access to the controller (policy updates, interceptors, …).
    ///
    /// # Panics
    ///
    /// Panics when the network runs the sharded tier (see
    /// [`EnterpriseNetwork::controller`]).
    pub fn controller_mut(&mut self) -> &mut IdentxxController {
        match &mut self.tier {
            DecisionTier::Single(controller) => controller,
            DecisionTier::Sharded { .. } => {
                panic!("controller_mut(): network runs a sharded tier; use sharded_mut()")
            }
        }
    }

    /// The sharded decision tier, when the network was built with one.
    pub fn sharded(&self) -> Option<&ShardedController> {
        match &self.tier {
            DecisionTier::Single(_) => None,
            DecisionTier::Sharded { tier, .. } => Some(tier),
        }
    }

    /// Mutable access to the sharded decision tier, when present.
    pub fn sharded_mut(&mut self) -> Option<&mut ShardedController> {
        match &mut self.tier {
            DecisionTier::Single(_) => None,
            DecisionTier::Sharded { tier, .. } => Some(tier),
        }
    }

    /// Number of shards in the decision tier (1 for the single controller).
    pub fn shard_count(&self) -> usize {
        match &self.tier {
            DecisionTier::Single(_) => 1,
            DecisionTier::Sharded { tier, .. } => tier.shard_count(),
        }
    }

    /// Total audited decisions, across shards when sharded.
    pub fn audit_len(&self) -> usize {
        match &self.tier {
            DecisionTier::Single(controller) => controller.audit().len(),
            DecisionTier::Sharded { tier, .. } => tier.audit_len(),
        }
    }

    /// Fraction of decisions served from the state table(s).
    pub fn cache_hit_ratio(&self) -> f64 {
        match &self.tier {
            DecisionTier::Single(controller) => controller.audit().cache_hit_ratio(),
            DecisionTier::Sharded { tier, .. } => tier.cache_hit_ratio(),
        }
    }

    /// Total ident++ queries accounted in the audit log(s).
    pub fn total_queries(&self) -> u64 {
        match &self.tier {
            DecisionTier::Single(controller) => controller.audit().total_queries(),
            DecisionTier::Sharded { tier, .. } => tier.total_queries(),
        }
    }

    /// The network map (topology + routing + switch identities).
    pub fn map(&self) -> &NetworkMap {
        &self.map
    }

    /// Mutable access to a daemon by host address, on either tier: a direct
    /// borrow from the single controller's directory, or a held lock over
    /// the sharded tier's shared directory (every shard sees the mutation).
    pub fn daemon_mut(&mut self, addr: Ipv4Addr) -> Option<DaemonMut<'_>> {
        match &mut self.tier {
            DecisionTier::Single(controller) => controller
                .daemons_mut()
                .get_mut(addr)
                .map(DaemonMut::Direct),
            DecisionTier::Sharded { directory, .. } => {
                let guard = directory.lock().unwrap_or_else(|e| e.into_inner());
                if guard.get(addr).is_some() {
                    Some(DaemonMut::Shared(guard, addr))
                } else {
                    None
                }
            }
        }
    }

    /// Mutable access to a switch.
    pub fn switch_mut(&mut self, id: SwitchId) -> Option<&mut Switch> {
        self.switches.get_mut(&id)
    }

    /// The switches.
    pub fn switches(&self) -> &BTreeMap<SwitchId, Switch> {
        &self.switches
    }

    /// The current simulated time in microseconds.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the simulated clock.
    pub fn advance(&mut self, micros: u64) {
        self.clock += micros;
    }

    /// Starts an application on `src` connecting to `dst:dst_port` as `user`,
    /// returning the flow it opened.
    pub fn start_app(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        dst_port: u16,
        user: &str,
        exe: Executable,
    ) -> FiveTuple {
        // Source ports are allocated deterministically per call — keyed on
        // the tier-wide audit length, so a sharded run allocates the same
        // ports as its single-controller twin.
        let src_port = 40_000 + (self.audit_len() as u16 % 20_000);
        let mut daemon = self
            .daemon_mut(src)
            .expect("start_app: source address has no daemon");
        daemon
            .host_mut()
            .open_connection(user, exe, src_port, dst, dst_port)
    }

    /// Runs a service (listening process) on `addr`.
    pub fn run_service(&mut self, addr: Ipv4Addr, user: &str, exe: Executable, port: u16) {
        let mut daemon = self
            .daemon_mut(addr)
            .expect("run_service: address has no daemon");
        let pid = daemon.host_mut().spawn(user, exe);
        daemon.host_mut().listen(pid, IpProtocol::Tcp, port);
    }

    fn apply_flow_mods(&mut self, mods: &[FlowMod], now: u64) {
        for m in mods {
            if let Some(switch) = self.switches.get_mut(&m.switch) {
                switch.apply_flow_mod(m, now);
            }
        }
    }

    /// Delivers the first packet of `flow` through the data plane at time
    /// `now`: switches consult their tables, a table miss raises a packet-in
    /// to the controller, the controller's decision is installed and the
    /// packet is released (or dropped).
    pub fn deliver_first_packet(&mut self, flow: &FiveTuple, now: u64) -> FlowOutcome {
        self.clock = self.clock.max(now);
        let mut outcome = FlowOutcome {
            flow: *flow,
            delivered: false,
            decision: None,
            from_cache: false,
            queries_issued: 0,
            entries_installed: 0,
            switches_traversed: 0,
        };

        let src_node = match self.map.topology().node_by_addr(flow.src_ip) {
            Some(n) => n.id,
            None => return outcome,
        };
        let dst_node = match self.map.topology().node_by_addr(flow.dst_ip) {
            Some(n) => n.id,
            None => return outcome,
        };
        let path: Vec<NodeId> = match self.map.routing().path(src_node, dst_node) {
            Some(p) => p.to_vec(),
            None => return outcome,
        };

        // Walk the packet along the switch path.
        let mut prev = src_node;
        for &node in &path[1..] {
            let kind = self.map.topology().node(node).unwrap().kind;
            match kind {
                NodeKind::Host | NodeKind::Controller => {
                    // Reached the destination host (controllers are never on a
                    // host-to-host shortest path in our topologies).
                    outcome.delivered = node == dst_node;
                    return outcome;
                }
                NodeKind::Switch => {
                    let switch_id = self.map.switch_id(node).unwrap();
                    let in_port = self.map.port_toward(node, prev).unwrap_or(0);
                    let header = PacketHeader::from_flow(flow, in_port);
                    outcome.switches_traversed += 1;
                    let result = {
                        let switch = self.switches.get_mut(&switch_id).unwrap();
                        switch.process(&header, 1500, self.clock)
                    };
                    match result {
                        ForwardingResult::Forwarded(_) | ForwardingResult::Flooded => {}
                        ForwardingResult::Dropped => return outcome,
                        ForwardingResult::SentToController(pin) => {
                            // The packet-in path through either tier: decide
                            // the flow, then wrap the decision exactly as
                            // `OpenFlowController::packet_in` does.
                            let pin_flow = pin.header.five_tuple();
                            let now = self.clock;
                            let decision = self.decide_at(&pin_flow, now);
                            outcome.decision = Some(decision.verdict.decision);
                            outcome.from_cache = decision.from_cache;
                            outcome.queries_issued = decision.queries_issued;
                            let directive = if decision.is_pass() {
                                ControllerDirective::allow(decision.flow_mods)
                            } else {
                                ControllerDirective::deny_with(decision.flow_mods)
                            };
                            outcome.entries_installed += directive.flow_mods.len();
                            self.apply_flow_mods(&directive.flow_mods, self.clock);
                            if !directive.forward_packet {
                                return outcome;
                            }
                            // The packet is released: re-process it at this
                            // switch, which now has an entry (or flood).
                            let switch = self.switches.get_mut(&switch_id).unwrap();
                            if let ForwardingResult::Dropped =
                                switch.process(&header, 1500, self.clock)
                            {
                                return outcome;
                            }
                        }
                    }
                    prev = node;
                }
            }
        }
        outcome.delivered = true;
        outcome
    }

    /// Convenience: run the full decision for a flow directly against the
    /// decision tier (no data-plane walk). Useful for policy-focused
    /// scenarios; on a sharded network the flow is routed to its shard.
    pub fn decide(&mut self, flow: &FiveTuple) -> FlowDecision {
        let now = self.clock;
        self.decide_at(flow, now)
    }

    fn decide_at(&mut self, flow: &FiveTuple, now: u64) -> FlowDecision {
        match &mut self.tier {
            DecisionTier::Single(controller) => controller.decide(flow, now),
            DecisionTier::Sharded { tier, .. } => tier.decide(flow, now),
        }
    }

    /// The event-driven timed reproduction of Fig. 1: measures how long the
    /// first packet of `flow` takes from the client to the server, including
    /// the packet-in, both ident++ query round trips, policy evaluation, and
    /// flow installation, and compares it with the latency of a subsequent
    /// packet that hits the installed entries.
    pub fn simulate_flow_setup(&mut self, flow: &FiveTuple) -> Option<FlowSetupReport> {
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        enum Phase {
            PacketAtFirstSwitch,
            PacketInAtController,
            ResponsesCollected,
            EntriesInstalled,
            PacketAtServer,
        }

        let topo = self.map.topology();
        let src_node = topo.node_by_addr(flow.src_ip)?.id;
        let dst_node = topo.node_by_addr(flow.dst_ip)?.id;
        let controller_node = topo
            .nodes_of_kind(NodeKind::Controller)
            .into_iter()
            .next()?;
        let path = self.map.routing().path(src_node, dst_node)?.to_vec();
        if path.len() < 2 {
            return None;
        }
        let first_switch = path[1];
        let path_switches = self.map.path_switch_count(flow);

        // One-way latencies derived from the topology.
        let client_to_first_switch = topo.path_latency(&path[..2])?;
        let full_path = topo.path_latency(&path)? + SWITCH_PROCESSING.times(path_switches as u64);
        let first_switch_to_controller = self
            .map
            .routing()
            .path(first_switch, controller_node)
            .and_then(|p| topo.path_latency(p))?;
        let controller_to_src = self
            .map
            .routing()
            .path(controller_node, src_node)
            .and_then(|p| topo.path_latency(p))?;
        let controller_to_dst = self
            .map
            .routing()
            .path(controller_node, dst_node)
            .and_then(|p| topo.path_latency(p))?;
        let first_switch_to_server =
            topo.path_latency(&path[1..])? + SWITCH_PROCESSING.times(path_switches as u64);

        // The decision tier's actual decision (drives rule-evaluation cost
        // and the number of flow-mods to install). Deciding needs `&mut
        // self`, so the topology borrow is re-acquired afterwards.
        let now = self.clock;
        let decision = self.decide_at(flow, now);
        let topo = self.map.topology();
        let eval_cost =
            CONTROLLER_OVERHEAD + PER_RULE_COST.times(decision.verdict.rules_evaluated as u64);
        let query_rtt_src = controller_to_src.times(2) + DAEMON_PROCESSING;
        let query_rtt_dst = controller_to_dst.times(2) + DAEMON_PROCESSING;
        let query_wait = if decision.from_cache || decision.queries_issued == 0 {
            Duration::ZERO
        } else {
            // Queries to both ends go out in parallel (Fig. 1 step 3).
            Duration::from_micros(query_rtt_src.as_micros().max(query_rtt_dst.as_micros()))
        };
        // Flow-mods are pushed to all path switches in parallel; the furthest
        // switch bounds the wait.
        let mut install_wait = Duration::ZERO;
        for m in &decision.flow_mods {
            if let Some(node) = self.map.switch_node(m.switch) {
                if let Some(latency) = self
                    .map
                    .routing()
                    .path(controller_node, node)
                    .and_then(|p| topo.path_latency(p))
                {
                    if latency > install_wait {
                        install_wait = latency;
                    }
                }
            }
        }
        self.apply_flow_mods(&decision.flow_mods, now);

        // Drive the phases through the event queue so the timing logic is the
        // discrete-event simulation, not ad-hoc arithmetic.
        let mut queue: EventQueue<Phase> = EventQueue::new();
        queue.schedule_after(
            client_to_first_switch + SWITCH_PROCESSING,
            Phase::PacketAtFirstSwitch,
        );
        let mut setup_latency = 0u64;
        let mut decision_kind = decision.verdict.decision;
        queue.run(64, |queue, at, phase| match phase {
            Phase::PacketAtFirstSwitch => {
                queue.schedule_after(first_switch_to_controller, Phase::PacketInAtController);
            }
            Phase::PacketInAtController => {
                queue.schedule_after(query_wait + eval_cost, Phase::ResponsesCollected);
            }
            Phase::ResponsesCollected => {
                queue.schedule_after(install_wait, Phase::EntriesInstalled);
            }
            Phase::EntriesInstalled => {
                if decision_kind == Decision::Pass {
                    queue.schedule_after(first_switch_to_server, Phase::PacketAtServer);
                } else {
                    // Denied flows never reach the server; setup "completes"
                    // when the drop entry is installed.
                    setup_latency = at.as_micros();
                }
            }
            Phase::PacketAtServer => {
                setup_latency = at.as_micros();
            }
        });
        // Keep clippy happy about the unused mutation pattern above.
        let _ = &mut decision_kind;

        let ident_exchanges = decision.queries_issued
            + decision.src_response.iter().count() as u32
            + decision.dst_response.iter().count() as u32;
        let openflow_messages = 1 + decision.flow_mods.len() as u32 + 1; // packet-in + mods + packet-out

        Some(FlowSetupReport {
            flow: *flow,
            decision: decision.verdict.decision,
            path_switches,
            setup_latency_us: setup_latency,
            cached_latency_us: full_path.as_micros(),
            ident_exchanges,
            openflow_messages,
        })
    }
}

impl std::fmt::Debug for EnterpriseNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnterpriseNetwork")
            .field("hosts", &self.host_addrs.len())
            .field("switches", &self.switches.len())
            .field("shards", &self.shard_count())
            .field("clock", &self.clock)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{firefox_app, skype_app};

    const APP_POLICY: &str =
        "block all\npass all with eq(@src[name], firefox) keep state\npass all with eq(@src[name], skype) with eq(@dst[name], skype) keep state\n";

    #[test]
    fn first_packet_miss_goes_to_controller_and_installs_path() {
        let mut net = EnterpriseNetwork::star(6, APP_POLICY).unwrap();
        let hosts = net.host_addrs();
        let flow = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
        let outcome = net.deliver_first_packet(&flow, 0);
        assert!(outcome.delivered);
        assert_eq!(outcome.decision, Some(Decision::Pass));
        assert_eq!(outcome.queries_issued, 2);
        assert!(outcome.entries_installed >= 2);
        assert_eq!(outcome.switches_traversed, 1);

        // A second packet of the same flow is forwarded without another
        // packet-in (the switch entry serves it).
        let audited_before = net.controller().audit().len();
        let second = net.deliver_first_packet(&flow, 100);
        assert!(second.delivered);
        assert_eq!(net.controller().audit().len(), audited_before);
    }

    #[test]
    fn blocked_application_never_reaches_the_server() {
        let mut net = EnterpriseNetwork::star(6, APP_POLICY).unwrap();
        let hosts = net.host_addrs();
        let malware = Executable::new("/tmp/malware", "malware", 1, "unknown", "unknown");
        let flow = net.start_app(hosts[2], hosts[3], 80, "guest", malware);
        let outcome = net.deliver_first_packet(&flow, 0);
        assert!(!outcome.delivered);
        assert_eq!(outcome.decision, Some(Decision::Block));
    }

    /// Builds a star network sharded `shards` ways with the app policy.
    fn sharded_star(shards: usize) -> EnterpriseNetwork {
        let config = ControllerConfig::new().with_control_file("00.control", APP_POLICY);
        EnterpriseNetwork::star_with_config_sharded(6, config, shards).unwrap()
    }

    #[test]
    fn sharded_network_decides_identically_to_single() {
        let mut single = EnterpriseNetwork::star(6, APP_POLICY).unwrap();
        let mut sharded = sharded_star(4);
        assert_eq!(single.shard_count(), 1);
        assert_eq!(sharded.shard_count(), 4);
        assert!(sharded.sharded().is_some());

        let hosts = single.host_addrs();
        assert_eq!(hosts, sharded.host_addrs());
        // A mixed workload: firefox (pass), malware (block), skype pair
        // staged on both tiers, plus repeats that must hit the cache.
        let malware = Executable::new("/tmp/malware", "malware", 1, "unknown", "unknown");
        let staged: Vec<(Ipv4Addr, Ipv4Addr, u16, &str, Executable)> = vec![
            (hosts[0], hosts[1], 80, "alice", firefox_app()),
            (hosts[2], hosts[3], 80, "guest", malware),
            (hosts[4], hosts[5], 80, "bob", skype_app(210)),
        ];
        for net in [&mut single, &mut sharded] {
            net.run_service(hosts[5], "bob", skype_app(210), 80);
        }
        let mut flows = Vec::new();
        for (src, dst, port, user, exe) in staged {
            let f1 = single.start_app(src, dst, port, user, exe.clone());
            let f2 = sharded.start_app(src, dst, port, user, exe);
            assert_eq!(f1, f2, "port allocation must match across tiers");
            flows.push(f1);
        }
        for flow in flows.iter().chain(flows.iter()) {
            let a = single.decide(flow);
            let b = sharded.decide(flow);
            assert_eq!(a.verdict.decision, b.verdict.decision);
            assert_eq!(a.from_cache, b.from_cache);
            assert_eq!(a.queries_issued, b.queries_issued);
        }
        assert_eq!(single.audit_len(), sharded.audit_len());
        assert_eq!(single.total_queries(), sharded.total_queries());
        assert!((single.cache_hit_ratio() - sharded.cache_hit_ratio()).abs() < 1e-9);
    }

    #[test]
    fn sharded_network_sees_daemon_mutations_on_every_shard() {
        // The shared-directory point: one mutation through the facade is
        // visible to whichever shard the flow routes to — no N diverging
        // daemon copies.
        let mut net = sharded_star(3);
        let hosts = net.host_addrs();
        let flow = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
        assert!(net.decide(&flow).is_pass());
        // Compromise the source daemon to forge an unknown application: the
        // next *fresh* flow (different host pair → possibly another shard)
        // must see the forgery.
        net.daemon_mut(hosts[0])
            .unwrap()
            .set_forged_response(Some(vec![("name".to_string(), "unknownd".to_string())]));
        for dst in &hosts[2..] {
            let fresh = net.start_app(hosts[0], *dst, 80, "alice", firefox_app());
            assert!(
                !net.decide(&fresh).is_pass(),
                "forged identity must be visible to the shard deciding {dst}"
            );
        }
    }

    #[test]
    fn sharded_network_delivers_first_packets_through_the_data_plane() {
        let mut net = sharded_star(2);
        let hosts = net.host_addrs();
        let flow = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
        let outcome = net.deliver_first_packet(&flow, 0);
        assert!(outcome.delivered);
        assert_eq!(outcome.decision, Some(Decision::Pass));
        assert_eq!(outcome.queries_issued, 2);
        // Fig. 1 timing simulation runs on the sharded tier too.
        let report = net.simulate_flow_setup(&flow).unwrap();
        assert_eq!(report.decision, Decision::Pass);
    }

    #[test]
    fn chain_flow_setup_report_scales_with_path_length() {
        let config = ControllerConfig::new().with_control_file(
            "00.control",
            "block all\npass all with eq(@src[name], firefox) keep state\n",
        );
        let mut short = EnterpriseNetwork::chain(1, config.clone()).unwrap();
        let mut long = EnterpriseNetwork::chain(8, config).unwrap();

        let report_for = |net: &mut EnterpriseNetwork| {
            let hosts = net.host_addrs();
            // client is 10.0.0.1, server 10.0.1.1 in the chain topology.
            let client = hosts
                .iter()
                .copied()
                .find(|a| *a == Ipv4Addr::new(10, 0, 0, 1))
                .unwrap();
            let server = hosts
                .iter()
                .copied()
                .find(|a| *a == Ipv4Addr::new(10, 0, 1, 1))
                .unwrap();
            let flow = net.start_app(client, server, 80, "alice", firefox_app());
            net.simulate_flow_setup(&flow).unwrap()
        };
        let short_report = report_for(&mut short);
        let long_report = report_for(&mut long);
        assert_eq!(short_report.decision, Decision::Pass);
        assert_eq!(short_report.path_switches, 1);
        assert_eq!(long_report.path_switches, 8);
        assert!(long_report.setup_latency_us > short_report.setup_latency_us);
        assert!(long_report.cached_latency_us > short_report.cached_latency_us);
        // Setup costs well more than the cached path (it includes queries).
        assert!(short_report.setup_overhead() > 2.0);
        assert_eq!(short_report.ident_exchanges, 4);
        assert!(short_report.openflow_messages >= 3);
    }

    #[test]
    fn cached_flows_skip_the_query_wait() {
        let mut net = EnterpriseNetwork::star(4, APP_POLICY).unwrap();
        let hosts = net.host_addrs();
        let flow = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
        let first = net.simulate_flow_setup(&flow).unwrap();
        let second = net.simulate_flow_setup(&flow).unwrap();
        assert!(second.setup_latency_us < first.setup_latency_us);
        assert_eq!(second.ident_exchanges, 0);
    }

    #[test]
    fn skype_pair_policy_needs_both_ends() {
        let mut net = EnterpriseNetwork::star(6, APP_POLICY).unwrap();
        let hosts = net.host_addrs();
        // Destination runs skype.
        net.run_service(hosts[5], "bob", skype_app(210), 80);
        let flow = net.start_app(hosts[4], hosts[5], 80, "alice", skype_app(210));
        assert!(net.decide(&flow).is_pass());
        // Destination without skype: blocked.
        let flow2 = net.start_app(hosts[4], hosts[3], 80, "alice", skype_app(210));
        assert!(!net.decide(&flow2).is_pass());
    }

    #[test]
    fn unknown_addresses_are_not_delivered() {
        let mut net = EnterpriseNetwork::star(3, APP_POLICY).unwrap();
        let stranger = FiveTuple::tcp([192, 168, 77, 1], 1, [192, 168, 77, 2], 80);
        let outcome = net.deliver_first_packet(&stranger, 0);
        assert!(!outcome.delivered);
        assert!(net.simulate_flow_setup(&stranger).is_none());
    }

    #[test]
    fn two_tier_topology_works_end_to_end() {
        let config = ControllerConfig::new().with_control_file(
            "00.control",
            "block all\npass all with eq(@src[name], firefox) keep state\n",
        );
        let mut net = EnterpriseNetwork::two_tier(3, 4, config).unwrap();
        let hosts = net.host_addrs();
        // Cross-edge flow traverses host→edge→core→edge→host = 3 switches.
        let flow = net.start_app(hosts[0], hosts[11], 80, "alice", firefox_app());
        let outcome = net.deliver_first_packet(&flow, 0);
        assert!(outcome.delivered);
        assert_eq!(outcome.switches_traversed, 3);
    }
}
