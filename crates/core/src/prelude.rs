//! Convenient re-exports for users of the ident++ reproduction.

pub use identxx_controller::{
    BackendStats, BreakerConfig, ControllerConfig, FlowDecision, IdentxxController,
    InProcessBackend, NetworkBackend, NetworkMap, QueryBackend, QueryTarget, RecordingBackend,
    ShardedController,
};
pub use identxx_daemon::{
    appconfig::signed_app_config, AppConfig, Daemon, FaultInjector, FaultPlan, Window,
};
pub use identxx_hostmodel::{Executable, Host, User};
pub use identxx_netsim::{LinkProps, Topology, WorkloadConfig, WorkloadGenerator};
pub use identxx_openflow::{FlowMatch, FlowTable, OfAction, Switch};
pub use identxx_pf::{parse_ruleset, Decision, EvalContext, Verdict};
pub use identxx_proto::{well_known, FiveTuple, IpProtocol, Ipv4Addr, Query, Response, Section};

pub use crate::network::EnterpriseNetwork;
pub use crate::scenario::{render_table, FlowOutcome, FlowSetupReport, ScenarioFlow};
pub use crate::{firefox_app, skype_app};
