//! Result and reporting types shared by scenarios, examples and benchmarks.

use identxx_pf::Decision;
use identxx_proto::FiveTuple;

/// A named flow inside a scenario, with the decision the paper's text says it
/// should receive.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFlow {
    /// Human-readable description ("skype → skype", "old skype → server", …).
    pub description: String,
    /// The 5-tuple.
    pub flow: FiveTuple,
    /// The decision the paper's prose expects for this flow.
    pub expected: Decision,
    /// The decision the implementation produced.
    pub actual: Decision,
}

impl ScenarioFlow {
    /// Whether the implementation matched the paper.
    pub fn matches(&self) -> bool {
        self.expected == self.actual
    }
}

/// The outcome of delivering a flow's first packet through the simulated
/// network.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// The flow.
    pub flow: FiveTuple,
    /// Whether the packet ultimately reached its destination host.
    pub delivered: bool,
    /// The controller's decision (None if the packet never reached the
    /// controller, e.g. a pre-installed drop entry).
    pub decision: Option<Decision>,
    /// Whether the controller answered from its state table.
    pub from_cache: bool,
    /// ident++ queries issued for this packet.
    pub queries_issued: u32,
    /// Number of flow-table entries installed as a result.
    pub entries_installed: usize,
    /// Number of switches the packet traversed on the data path.
    pub switches_traversed: usize,
}

/// The timed report of one flow setup (Fig. 1), produced by the event-driven
/// simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSetupReport {
    /// The flow being set up.
    pub flow: FiveTuple,
    /// The controller's decision.
    pub decision: Decision,
    /// Number of switches on the client→server path.
    pub path_switches: usize,
    /// Total setup latency: first packet sent → first packet arrives at the
    /// destination (microseconds of simulated time).
    pub setup_latency_us: u64,
    /// Latency a subsequent packet of the same flow experiences (pure data
    /// path, all switch tables populated).
    pub cached_latency_us: u64,
    /// Number of ident++ query/response message exchanges.
    pub ident_exchanges: u32,
    /// Number of OpenFlow control messages (packet-in + flow-mods).
    pub openflow_messages: u32,
}

impl FlowSetupReport {
    /// The multiplicative overhead of flow setup over the cached data path.
    pub fn setup_overhead(&self) -> f64 {
        if self.cached_latency_us == 0 {
            return 0.0;
        }
        self.setup_latency_us as f64 / self.cached_latency_us as f64
    }
}

/// Renders a list of scenario flows as an aligned text table (used by the
/// examples to print paper-style summaries).
pub fn render_table(flows: &[ScenarioFlow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>10} {:>10} {:>8}\n",
        "flow", "expected", "actual", "match"
    ));
    for f in flows {
        out.push_str(&format!(
            "{:<44} {:>10} {:>10} {:>8}\n",
            f.description,
            format!("{:?}", f.expected),
            format!("{:?}", f.actual),
            if f.matches() { "yes" } else { "NO" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 80)
    }

    #[test]
    fn scenario_flow_matching() {
        let ok = ScenarioFlow {
            description: "skype → skype".into(),
            flow: flow(),
            expected: Decision::Pass,
            actual: Decision::Pass,
        };
        let bad = ScenarioFlow {
            actual: Decision::Block,
            ..ok.clone()
        };
        assert!(ok.matches());
        assert!(!bad.matches());
        let table = render_table(&[ok, bad]);
        assert!(table.contains("skype → skype"));
        assert!(table.contains("NO"));
    }

    #[test]
    fn setup_overhead_computation() {
        let report = FlowSetupReport {
            flow: flow(),
            decision: Decision::Pass,
            path_switches: 3,
            setup_latency_us: 1200,
            cached_latency_us: 400,
            ident_exchanges: 4,
            openflow_messages: 7,
        };
        assert!((report.setup_overhead() - 3.0).abs() < 1e-9);
        let degenerate = FlowSetupReport {
            cached_latency_us: 0,
            ..report
        };
        assert_eq!(degenerate.setup_overhead(), 0.0);
    }
}
