//! Ed25519 signatures (RFC 8032), implemented from scratch.
//!
//! This is the real signature scheme behind the PF+=2 `verify` function; it
//! replaced the toy Schnorr construction (which survives only behind the
//! `legacy-toy` feature, for the cross-scheme equivalence tests). Like the
//! rest of this crate it is hermetic — no external crates — and validated
//! against the RFC 8032 §7.1 test vectors.
//!
//! Layout of the module, bottom up:
//!
//! * **Field arithmetic** over `p = 2^255 - 19` in radix-2^51 (five `u64`
//!   limbs, `u128` products). Stored limbs stay below 2^52; multiplication
//!   tolerates operands up to 2^54, so additions/subtractions feed into
//!   products without intermediate canonicalization.
//! * **Scalar arithmetic** modulo the group order
//!   `L = 2^252 + 27742317777372353535851937790883648493`. Reduction of
//!   512-bit values is binary shift-subtract long division — a few thousand
//!   word operations, irrelevant next to the curve math and chosen for
//!   obviousness over speed (the verify cache amortizes everything anyway).
//! * **Group arithmetic** in extended twisted Edwards coordinates
//!   `(X, Y, Z, T)` with the unified `a = -1` addition formula, which is
//!   complete on the curve and doubles as the doubling formula. Scalar
//!   multiplication is plain MSB-first double-and-add.
//! * **Sign/verify** per RFC 8032: `A = [clamp(h[..32])]B` with
//!   `h = SHA-512(seed)`, deterministic nonce `r = SHA-512(prefix ‖ M) mod L`,
//!   and verification via `encode([s]B + [k](-A)) == R` with a canonicity
//!   check `s < L` (rejecting the malleated `s + L` form).
//!
//! Timing side channels are out of scope for a reproduction (secret-dependent
//! branches exist in the scalar ladder); signature *comparisons* are
//! constant-time via [`crate::ct_eq`], which is the channel an attacker can
//! actually drive remotely in this system.

use std::sync::OnceLock;

use crate::ct_eq;
use crate::sha256::{from_hex, to_hex};
use crate::sha512::{sha512, Sha512};

/// An ed25519 signature: the encoded nonce point `R` followed by the response
/// scalar `s`, 64 bytes total (RFC 8032 §5.1.6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature(pub(crate) [u8; 64]);

impl Signature {
    /// Serializes the signature as a 128-character hex string (as it appears
    /// in the `req-sig` key of daemon configuration files).
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }

    /// Parses a signature from its hex form. Returns `None` for malformed
    /// input (wrong length or non-hex characters).
    pub fn from_hex(s: &str) -> Option<Signature> {
        let bytes = from_hex(s.trim())?;
        if bytes.len() != 64 {
            return None;
        }
        let mut out = [0u8; 64];
        out.copy_from_slice(&bytes);
        Some(Signature(out))
    }

    /// The raw 64-byte form.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0
    }

    /// Builds a signature from its raw 64-byte form.
    pub fn from_bytes(bytes: [u8; 64]) -> Signature {
        Signature(bytes)
    }
}

// --- field arithmetic mod p = 2^255 - 19, radix 2^51 -----------------------

const MASK51: u64 = (1u64 << 51) - 1;

/// A field element; limbs hold 51 bits each (value = Σ limb[i]·2^(51·i)),
/// kept loosely reduced below 2^52 between operations.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_u64(v: u64) -> Fe {
        Fe([v & MASK51, v >> 51, 0, 0, 0])
    }

    /// Loads 32 little-endian bytes, masking bit 255 (the sign bit of a
    /// compressed point rides there).
    fn from_bytes(b: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[i..i + 8]);
            u64::from_le_bytes(w)
        };
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    /// Canonical 32-byte little-endian encoding (value fully reduced mod p).
    fn to_bytes(self) -> [u8; 32] {
        let mut f = self.weak_reduce().0;
        // q = 1 iff f + 19 >= 2^255, i.e. iff f >= p.
        let mut q = (f[0] + 19) >> 51;
        q = (f[1] + q) >> 51;
        q = (f[2] + q) >> 51;
        q = (f[3] + q) >> 51;
        q = (f[4] + q) >> 51;
        f[0] += 19 * q;
        let mut c = f[0] >> 51;
        f[0] &= MASK51;
        f[1] += c;
        c = f[1] >> 51;
        f[1] &= MASK51;
        f[2] += c;
        c = f[2] >> 51;
        f[2] &= MASK51;
        f[3] += c;
        c = f[3] >> 51;
        f[3] &= MASK51;
        f[4] += c;
        f[4] &= MASK51; // discard the 2^255 carry: the value is now mod 2^255

        let words = [
            f[0] | (f[1] << 51),
            (f[1] >> 13) | (f[2] << 38),
            (f[2] >> 26) | (f[3] << 25),
            (f[3] >> 39) | (f[4] << 12),
        ];
        let mut out = [0u8; 32];
        for (i, w) in words.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// One carry pass folding the top carry back via ×19; output limbs are
    /// below 2^52 for any input limbs below 2^63.
    fn weak_reduce(self) -> Fe {
        let mut f = self.0;
        let mut c = f[0] >> 51;
        f[0] &= MASK51;
        f[1] += c;
        c = f[1] >> 51;
        f[1] &= MASK51;
        f[2] += c;
        c = f[2] >> 51;
        f[2] &= MASK51;
        f[3] += c;
        c = f[3] >> 51;
        f[3] &= MASK51;
        f[4] += c;
        c = f[4] >> 51;
        f[4] &= MASK51;
        f[0] += 19 * c;
        c = f[0] >> 51;
        f[0] &= MASK51;
        f[1] += c;
        Fe(f)
    }

    fn add(self, other: Fe) -> Fe {
        let a = self.0;
        let b = other.0;
        Fe([
            a[0] + b[0],
            a[1] + b[1],
            a[2] + b[2],
            a[3] + b[3],
            a[4] + b[4],
        ])
        .weak_reduce()
    }

    /// `self - other`, computed as `self + 4p - other` so limbs never
    /// underflow even when both operands are only loosely reduced.
    fn sub(self, other: Fe) -> Fe {
        const FOUR_P: [u64; 5] = [
            4 * ((1u64 << 51) - 19),
            4 * ((1u64 << 51) - 1),
            4 * ((1u64 << 51) - 1),
            4 * ((1u64 << 51) - 1),
            4 * ((1u64 << 51) - 1),
        ];
        let a = self.0;
        let b = other.0;
        Fe([
            a[0] + FOUR_P[0] - b[0],
            a[1] + FOUR_P[1] - b[1],
            a[2] + FOUR_P[2] - b[2],
            a[3] + FOUR_P[3] - b[3],
            a[4] + FOUR_P[4] - b[4],
        ])
        .weak_reduce()
    }

    fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    fn mul(self, other: Fe) -> Fe {
        let a = self.0.map(|x| x as u128);
        let b = other.0.map(|x| x as u128);
        // Products of limbs i and j contribute at 2^(51·(i+j)); terms at
        // 2^255 and above wrap down via 2^255 ≡ 19 (mod p).
        let mut r0 = a[0] * b[0] + 19 * (a[1] * b[4] + a[2] * b[3] + a[3] * b[2] + a[4] * b[1]);
        let mut r1 = a[0] * b[1] + a[1] * b[0] + 19 * (a[2] * b[4] + a[3] * b[3] + a[4] * b[2]);
        let mut r2 = a[0] * b[2] + a[1] * b[1] + a[2] * b[0] + 19 * (a[3] * b[4] + a[4] * b[3]);
        let mut r3 = a[0] * b[3] + a[1] * b[2] + a[2] * b[1] + a[3] * b[0] + 19 * (a[4] * b[4]);
        let mut r4 = a[0] * b[4] + a[1] * b[3] + a[2] * b[2] + a[3] * b[1] + a[4] * b[0];

        let m = MASK51 as u128;
        r1 += r0 >> 51;
        r0 &= m;
        r2 += r1 >> 51;
        r1 &= m;
        r3 += r2 >> 51;
        r2 &= m;
        r4 += r3 >> 51;
        r3 &= m;
        let carry = r4 >> 51;
        r4 &= m;
        r0 += 19 * carry;
        r1 += r0 >> 51;
        r0 &= m;

        Fe([r0 as u64, r1 as u64, r2 as u64, r3 as u64, r4 as u64])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    /// `self^exp` with the exponent as 32 little-endian bytes (MSB-first
    /// square-and-multiply). Used only for inversion and square roots.
    fn pow_bytes(self, exp_le: &[u8; 32]) -> Fe {
        let mut acc = Fe::ONE;
        for i in (0..256).rev() {
            acc = acc.square();
            if (exp_le[i / 8] >> (i % 8)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat: `self^(p-2)`. Returns zero for
    /// zero, which never reaches a division in the formulas used here.
    fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21, little-endian.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow_bytes(&exp)
    }

    /// `self^((p-5)/8)`, the exponent used in the combined square-root
    /// computation of point decompression (RFC 8032 §5.1.3).
    fn pow_p58(self) -> Fe {
        // (p - 5) / 8 = 2^252 - 3, little-endian.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow_bytes(&exp)
    }

    fn is_negative(self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    fn equals(self, other: Fe) -> bool {
        ct_eq(&self.to_bytes(), &other.to_bytes())
    }

    fn is_zero(self) -> bool {
        self.equals(Fe::ZERO)
    }
}

// --- group arithmetic: extended twisted Edwards coordinates ----------------

/// A curve point in extended coordinates: `x = X/Z`, `y = Y/Z`, `T = XY/Z`.
#[derive(Clone, Copy, Debug)]
struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl Point {
    const IDENTITY: Point = Point {
        x: Fe::ZERO,
        y: Fe::ONE,
        z: Fe::ONE,
        t: Fe::ZERO,
    };

    /// Unified addition for `a = -1` twisted Edwards curves
    /// ("Twisted Edwards Curves Revisited", add-2008-hwcd-3). Complete on
    /// ed25519 (d is non-square), so it also serves as the doubling formula.
    fn add(&self, other: &Point) -> Point {
        let k2d = consts().d2;
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let c = self.t.mul(k2d).mul(other.t);
        let zz = self.z.mul(other.z);
        let d = zz.add(zz);
        let e = b.sub(a);
        let f = d.sub(c);
        let g = d.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// `[k]self` with `k` as 32 little-endian bytes, MSB-first
    /// double-and-add.
    fn scalar_mul(&self, k: &[u8; 32]) -> Point {
        let mut acc = Point::IDENTITY;
        for i in (0..256).rev() {
            acc = acc.add(&acc);
            if (k[i / 8] >> (i % 8)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Canonical compressed encoding: `y` with the sign of `x` in bit 255.
    fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses an encoded point; `None` if the encoding names no point
    /// on the curve (RFC 8032 §5.1.3).
    fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let c = consts();
        let y = Fe::from_bytes(bytes);
        let sign = bytes[31] >> 7 == 1;
        let y2 = y.square();
        let u = y2.sub(Fe::ONE);
        let v = c.d.mul(y2).add(Fe::ONE);
        // Candidate root x = u·v^3·(u·v^7)^((p-5)/8).
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut x = u.mul(v3).mul(u.mul(v7).pow_p58());
        let vx2 = v.mul(x.square());
        if vx2.equals(u) {
            // x is already a square root.
        } else if vx2.equals(u.neg()) {
            x = x.mul(c.sqrt_m1);
        } else {
            return None;
        }
        if x.is_zero() && sign {
            return None; // "negative zero" encodes no point
        }
        if x.is_negative() != sign {
            x = x.neg();
        }
        Some(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }
}

/// Curve constants, derived arithmetically once rather than transcribed as
/// limb tables (limb-level typos would be invisible; `4/5` is not).
struct Consts {
    /// d = -121665/121666
    d: Fe,
    /// 2d, as used by the unified addition formula.
    d2: Fe,
    /// √-1 = 2^((p-1)/4)
    sqrt_m1: Fe,
    /// The base point B (y = 4/5, x positive).
    base: Point,
}

fn consts() -> &'static Consts {
    static CONSTS: OnceLock<Consts> = OnceLock::new();
    CONSTS.get_or_init(|| {
        let d = Fe::from_u64(121_665)
            .neg()
            .mul(Fe::from_u64(121_666).invert());
        // (p - 1) / 4 = 2^253 - 5, little-endian.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfb;
        exp[31] = 0x1f;
        let sqrt_m1 = Fe::from_u64(2).pow_bytes(&exp);
        // B compressed: y = 4/5 with x positive. decompress() only needs d
        // and sqrt_m1, which are already computed above; a temporary Consts
        // with a placeholder base lets us reuse it.
        let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
        let mut b_enc = y.to_bytes();
        b_enc[31] &= 0x7f; // x positive
        let boot = Consts {
            d,
            d2: d.add(d),
            sqrt_m1,
            base: Point::IDENTITY,
        };
        let base = decompress_with(&boot, &b_enc).expect("base point decompresses");
        Consts { base, ..boot }
    })
}

/// `Point::decompress` against an explicit constant set — needed once during
/// initialization, before the global `Consts` exists.
fn decompress_with(c: &Consts, bytes: &[u8; 32]) -> Option<Point> {
    let y = Fe::from_bytes(bytes);
    let sign = bytes[31] >> 7 == 1;
    let y2 = y.square();
    let u = y2.sub(Fe::ONE);
    let v = c.d.mul(y2).add(Fe::ONE);
    let v3 = v.square().mul(v);
    let v7 = v3.square().mul(v);
    let mut x = u.mul(v3).mul(u.mul(v7).pow_p58());
    let vx2 = v.mul(x.square());
    if vx2.equals(u) {
    } else if vx2.equals(u.neg()) {
        x = x.mul(c.sqrt_m1);
    } else {
        return None;
    }
    if x.is_zero() && sign {
        return None;
    }
    if x.is_negative() != sign {
        x = x.neg();
    }
    Some(Point {
        x,
        y,
        z: Fe::ONE,
        t: x.mul(y),
    })
}

// --- scalar arithmetic mod L ----------------------------------------------

/// The group order `L = 2^252 + 27742317777372353535851937790883648493` as
/// four little-endian 64-bit limbs.
const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0,
    0x1000_0000_0000_0000,
];

/// Reduces a 512-bit little-endian value modulo `L` by binary long division:
/// subtract `L << shift` whenever it fits, from the top shift down.
fn sc_reduce(bytes: &[u8; 64]) -> [u8; 32] {
    let mut n = [0u64; 9];
    for i in 0..8 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
        n[i] = u64::from_le_bytes(w);
    }
    // L has 253 significant bits; n has at most 512, so shifts above
    // 512 - 253 = 259 can never fit.
    for shift in (0..=259usize).rev() {
        let shifted = shifted_l(shift);
        if geq(&n, &shifted) {
            sub_assign(&mut n, &shifted);
        }
    }
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..i * 8 + 8].copy_from_slice(&n[i].to_le_bytes());
    }
    out
}

fn shifted_l(shift: usize) -> [u64; 9] {
    let word = shift / 64;
    let bit = shift % 64;
    let mut out = [0u64; 9];
    for i in 0..4 {
        out[i + word] |= L[i] << bit;
        if bit > 0 {
            out[i + word + 1] |= L[i] >> (64 - bit);
        }
    }
    out
}

fn geq(a: &[u64; 9], b: &[u64; 9]) -> bool {
    for i in (0..9).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub_assign(a: &mut [u64; 9], b: &[u64; 9]) {
    let mut borrow = 0u64;
    for i in 0..9 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 | b2) as u64;
    }
    debug_assert_eq!(borrow, 0, "sub_assign underflow");
}

/// `(a·b + c) mod L`, all scalars as 32 little-endian bytes.
fn sc_muladd(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    let limbs = |s: &[u8; 32]| -> [u64; 4] {
        let mut out = [0u64; 4];
        for i in 0..4 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&s[i * 8..i * 8 + 8]);
            out[i] = u64::from_le_bytes(w);
        }
        out
    };
    let av = limbs(a);
    let bv = limbs(b);
    let cv = limbs(c);

    // Schoolbook 256×256 → 512-bit product.
    let mut r = [0u64; 8];
    for i in 0..4 {
        let mut carry: u128 = 0;
        for j in 0..4 {
            let cur = r[i + j] as u128 + av[i] as u128 * bv[j] as u128 + carry;
            r[i + j] = cur as u64;
            carry = cur >> 64;
        }
        r[i + 4] = carry as u64;
    }
    // Add c.
    let mut carry: u128 = 0;
    for i in 0..8 {
        let cur = r[i] as u128 + if i < 4 { cv[i] as u128 } else { 0 } + carry;
        r[i] = cur as u64;
        carry = cur >> 64;
    }
    debug_assert_eq!(carry, 0);

    let mut bytes = [0u8; 64];
    for i in 0..8 {
        bytes[i * 8..i * 8 + 8].copy_from_slice(&r[i].to_le_bytes());
    }
    sc_reduce(&bytes)
}

/// `true` iff the 32 little-endian bytes name a scalar strictly below `L`
/// (RFC 8032's malleability check on `s`).
fn sc_is_canonical(s: &[u8; 32]) -> bool {
    let mut limbs = [0u64; 4];
    for i in 0..4 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&s[i * 8..i * 8 + 8]);
        limbs[i] = u64::from_le_bytes(w);
    }
    for i in (0..4).rev() {
        if limbs[i] != L[i] {
            return limbs[i] < L[i];
        }
    }
    false // equal to L
}

// --- RFC 8032 sign / verify ------------------------------------------------

/// RFC 8032 secret-scalar clamping.
fn clamp(a: &mut [u8; 32]) {
    a[0] &= 248;
    a[31] &= 127;
    a[31] |= 64;
}

/// Expands a 32-byte seed into `(secret scalar, nonce prefix)`.
fn expand_seed(seed: &[u8; 32]) -> ([u8; 32], [u8; 32]) {
    let h = sha512(seed);
    let mut a = [0u8; 32];
    a.copy_from_slice(&h[..32]);
    clamp(&mut a);
    let mut prefix = [0u8; 32];
    prefix.copy_from_slice(&h[32..]);
    (a, prefix)
}

/// Derives the 32-byte public key for a seed.
pub fn derive_public(seed: &[u8; 32]) -> [u8; 32] {
    let (a, _) = expand_seed(seed);
    consts().base.scalar_mul(&a).compress()
}

/// Signs `message` with the key pair derived from `seed`.
pub fn sign(seed: &[u8; 32], message: &[u8]) -> Signature {
    let (a, prefix) = expand_seed(seed);
    let public = consts().base.scalar_mul(&a).compress();

    let mut h = Sha512::new();
    h.update(&prefix);
    h.update(message);
    let r = sc_reduce(&h.finalize());
    let r_enc = consts().base.scalar_mul(&r).compress();

    let mut h = Sha512::new();
    h.update(&r_enc);
    h.update(&public);
    h.update(message);
    let k = sc_reduce(&h.finalize());

    let s = sc_muladd(&k, &a, &r);
    let mut sig = [0u8; 64];
    sig[..32].copy_from_slice(&r_enc);
    sig[32..].copy_from_slice(&s);
    Signature(sig)
}

/// Verifies `signature` over `message` against a compressed public key.
pub fn verify(public: &[u8; 32], message: &[u8], signature: &Signature) -> bool {
    let mut r_enc = [0u8; 32];
    r_enc.copy_from_slice(&signature.0[..32]);
    let mut s = [0u8; 32];
    s.copy_from_slice(&signature.0[32..]);
    if !sc_is_canonical(&s) {
        return false;
    }
    let a = match Point::decompress(public) {
        Some(p) => p,
        None => return false,
    };

    let mut h = Sha512::new();
    h.update(&r_enc);
    h.update(public);
    h.update(message);
    let k = sc_reduce(&h.finalize());

    // [s]B == R + [k]A  ⇔  encode([s]B + [k](-A)) == R
    let check = consts()
        .base
        .scalar_mul(&s)
        .add(&a.neg().scalar_mul(&k))
        .compress();
    ct_eq(&check, &r_enc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_from_hex(s: &str) -> [u8; 32] {
        let v = from_hex(s).unwrap();
        let mut out = [0u8; 32];
        out.copy_from_slice(&v);
        out
    }

    // --- field and group sanity -------------------------------------------

    #[test]
    fn field_invert_round_trips() {
        for v in [1u64, 2, 5, 121_666, u64::MAX] {
            let fe = Fe::from_u64(v);
            assert!(
                fe.mul(fe.invert()).equals(Fe::ONE),
                "inverse failed for {v}"
            );
        }
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let c = consts();
        assert!(c.sqrt_m1.square().equals(Fe::ONE.neg()));
    }

    #[test]
    fn base_point_is_on_the_curve() {
        // -x² + y² = 1 + d·x²·y²
        let c = consts();
        let b = &c.base;
        let zinv = b.z.invert();
        let x = b.x.mul(zinv);
        let y = b.y.mul(zinv);
        let lhs = y.square().sub(x.square());
        let rhs = Fe::ONE.add(c.d.mul(x.square()).mul(y.square()));
        assert!(lhs.equals(rhs));
    }

    #[test]
    fn field_encoding_round_trips() {
        let samples: [[u8; 32]; 3] = [
            [0u8; 32],
            {
                let mut b = [0u8; 32];
                b[0] = 42;
                b
            },
            {
                // p - 1, the largest canonical element.
                let mut b = [0xff; 32];
                b[0] = 0xec;
                b[31] = 0x7f;
                b
            },
        ];
        for b in samples {
            assert_eq!(Fe::from_bytes(&b).to_bytes(), b);
        }
        // p itself must canonicalize to zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert_eq!(Fe::from_bytes(&p_bytes).to_bytes(), [0u8; 32]);
    }

    #[test]
    fn scalar_reduce_agrees_with_small_values() {
        // A value already below L reduces to itself.
        let mut small = [0u8; 64];
        small[0] = 0x7b;
        assert_eq!(sc_reduce(&small)[0], 0x7b);
        // L reduces to zero.
        let mut l_bytes = [0u8; 64];
        for i in 0..4 {
            l_bytes[i * 8..i * 8 + 8].copy_from_slice(&L[i].to_le_bytes());
        }
        assert_eq!(sc_reduce(&l_bytes), [0u8; 32]);
    }

    // --- RFC 8032 §7.1 test vectors ---------------------------------------

    #[test]
    fn rfc8032_test_1_empty_message() {
        let seed =
            seed_from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
        let public = derive_public(&seed);
        assert_eq!(
            to_hex(&public),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = sign(&seed, b"");
        assert_eq!(
            sig.to_hex(),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
        );
        assert!(verify(&public, b"", &sig));
    }

    #[test]
    fn rfc8032_test_2_one_byte_message() {
        let seed =
            seed_from_hex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
        let public = derive_public(&seed);
        assert_eq!(
            to_hex(&public),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let msg = [0x72u8];
        let sig = sign(&seed, &msg);
        assert_eq!(
            sig.to_hex(),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        );
        assert!(verify(&public, &msg, &sig));
    }

    #[test]
    fn rfc8032_test_3_two_byte_message() {
        let seed =
            seed_from_hex("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
        let public = derive_public(&seed);
        assert_eq!(
            to_hex(&public),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
        );
        let msg = [0xafu8, 0x82];
        let sig = sign(&seed, &msg);
        assert_eq!(
            sig.to_hex(),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
        );
        assert!(verify(&public, &msg, &sig));
    }

    // --- rejection behaviour ----------------------------------------------

    #[test]
    fn tampered_message_or_signature_rejected() {
        let seed =
            seed_from_hex("00000000000000000000000000000000000000000000000000000000000000aa");
        let public = derive_public(&seed);
        let sig = sign(&seed, b"pass from research to research");
        assert!(verify(&public, b"pass from research to research", &sig));
        assert!(!verify(&public, b"pass from research to production", &sig));
        for i in [0usize, 31, 32, 63] {
            let mut bytes = sig.to_bytes();
            bytes[i] ^= 1;
            let bad = Signature::from_bytes(bytes);
            assert!(
                !verify(&public, b"pass from research to research", &bad),
                "flipping byte {i} still verified"
            );
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let sig = sign(&[1u8; 32], b"message");
        let other = derive_public(&[2u8; 32]);
        assert!(!verify(&other, b"message", &sig));
    }

    #[test]
    fn non_canonical_s_rejected() {
        // Replace s with L (≥ L): same curve equation, different encoding —
        // the malleability RFC 8032 forbids.
        let seed = [7u8; 32];
        let public = derive_public(&seed);
        let mut bytes = sign(&seed, b"m").to_bytes();
        for i in 0..4 {
            bytes[32 + i * 8..32 + i * 8 + 8].copy_from_slice(&L[i].to_le_bytes());
        }
        assert!(!verify(&public, b"m", &Signature::from_bytes(bytes)));
    }

    #[test]
    fn invalid_point_encoding_rejected() {
        // y = 2 gives x² = (y²-1)/(dy²+1) which is not a square on ed25519.
        let mut enc = [0u8; 32];
        enc[0] = 2;
        assert!(Point::decompress(&enc).is_none());
        let sig = sign(&[9u8; 32], b"m");
        assert!(!verify(&enc, b"m", &sig));
    }

    #[test]
    fn signature_hex_round_trip() {
        let sig = sign(&[3u8; 32], b"hex me");
        let hex = sig.to_hex();
        assert_eq!(hex.len(), 128);
        assert_eq!(Signature::from_hex(&hex), Some(sig));
        assert_eq!(Signature::from_hex("zz"), None);
        assert_eq!(Signature::from_hex("abcd"), None);
    }

    #[test]
    fn signing_is_deterministic() {
        let a = sign(&[5u8; 32], b"same message");
        let b = sign(&[5u8; 32], b"same message");
        assert_eq!(a, b);
        assert_ne!(a, sign(&[5u8; 32], b"different message"));
    }
}
