//! Modular arithmetic over the 61-bit Mersenne prime `p = 2^61 - 1`.
//!
//! The toy Schnorr signature scheme in [`crate::schnorr`] works in the
//! multiplicative group of this field. A 61-bit discrete-log group is far too
//! small for real-world security; it is used here only so that signature
//! creation, distribution, and verification — and in particular *tamper
//! detection* for delegated rules — are exercised with real group arithmetic
//! and no external dependencies. See `DESIGN.md` §2 for the substitution note.

/// The field modulus: the Mersenne prime `2^61 - 1`.
pub const P: u64 = (1u64 << 61) - 1;

/// The order of the multiplicative group, `p - 1`.
pub const GROUP_ORDER: u64 = P - 1;

/// A fixed generator of a large subgroup of `Z_p^*`.
///
/// 3 generates a subgroup of order dividing `p - 1`; for the purposes of the
/// toy scheme any element of large order works.
pub const GENERATOR: u64 = 3;

/// Reduces an arbitrary `u64` modulo `p`.
pub fn reduce(x: u64) -> u64 {
    x % P
}

/// Modular addition.
pub fn add(a: u64, b: u64) -> u64 {
    let (a, b) = (reduce(a), reduce(b));
    let s = a as u128 + b as u128;
    (s % P as u128) as u64
}

/// Modular subtraction.
pub fn sub(a: u64, b: u64) -> u64 {
    let (a, b) = (reduce(a), reduce(b));
    if a >= b {
        a - b
    } else {
        a + P - b
    }
}

/// Modular multiplication (via 128-bit intermediate).
pub fn mul(a: u64, b: u64) -> u64 {
    let prod = reduce(a) as u128 * reduce(b) as u128;
    (prod % P as u128) as u64
}

/// Modular exponentiation `base^exp mod p` by square-and-multiply.
pub fn pow(base: u64, mut exp: u64) -> u64 {
    let mut base = reduce(base);
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Modular inverse via Fermat's little theorem (`a^(p-2) mod p`).
///
/// Returns `None` for zero, which has no inverse.
pub fn inv(a: u64) -> Option<u64> {
    let a = reduce(a);
    if a == 0 {
        None
    } else {
        Some(pow(a, P - 2))
    }
}

/// Addition modulo the group order (used for Schnorr's `s = k + x*e`).
pub fn add_order(a: u64, b: u64) -> u64 {
    ((a as u128 + b as u128) % GROUP_ORDER as u128) as u64
}

/// Multiplication modulo the group order.
pub fn mul_order(a: u64, b: u64) -> u64 {
    ((a as u128 % GROUP_ORDER as u128) * (b as u128 % GROUP_ORDER as u128) % GROUP_ORDER as u128)
        as u64
}

/// Subtraction modulo the group order.
pub fn sub_order(a: u64, b: u64) -> u64 {
    let a = a % GROUP_ORDER;
    let b = b % GROUP_ORDER;
    if a >= b {
        a - b
    } else {
        a + GROUP_ORDER - b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_is_mersenne_61() {
        assert_eq!(P, 2_305_843_009_213_693_951);
    }

    #[test]
    fn add_sub_are_inverses() {
        let a = 123_456_789_012_345;
        let b = P - 5;
        assert_eq!(sub(add(a, b), b), reduce(a));
        assert_eq!(add(sub(a, b), b), reduce(a));
        assert_eq!(add(P - 1, 1), 0);
        assert_eq!(sub(0, 1), P - 1);
    }

    #[test]
    fn mul_matches_naive_for_small_values() {
        assert_eq!(mul(1000, 1000), 1_000_000);
        assert_eq!(mul(P - 1, 2), P - 2); // (-1)*2 = -2
        assert_eq!(mul(0, 12345), 0);
    }

    #[test]
    fn pow_basic_identities() {
        assert_eq!(pow(GENERATOR, 0), 1);
        assert_eq!(pow(GENERATOR, 1), GENERATOR);
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
        // Fermat: a^(p-1) == 1 for a != 0.
        for a in [2u64, 3, 65_537, P - 2] {
            assert_eq!(pow(a, P - 1), 1, "fermat failed for {a}");
        }
    }

    #[test]
    fn inverse_is_correct() {
        for a in [1u64, 2, 3, 999_983, P - 1] {
            let ai = inv(a).unwrap();
            assert_eq!(mul(a, ai), 1, "inverse failed for {a}");
        }
        assert_eq!(inv(0), None);
        assert_eq!(inv(P), None); // reduces to zero
    }

    #[test]
    fn pow_is_homomorphic() {
        // g^(a+b) == g^a * g^b  (exponents mod group order)
        let a = 987_654_321;
        let b = 123_456_789;
        assert_eq!(
            pow(GENERATOR, add_order(a, b)),
            mul(pow(GENERATOR, a), pow(GENERATOR, b))
        );
    }

    #[test]
    fn order_arithmetic_wraps() {
        assert_eq!(add_order(GROUP_ORDER - 1, 2), 1);
        assert_eq!(sub_order(0, 1), GROUP_ORDER - 1);
        assert_eq!(mul_order(GROUP_ORDER - 1, GROUP_ORDER - 1), 1); // (-1)^2
    }
}
