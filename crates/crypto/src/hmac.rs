//! HMAC-SHA256 (RFC 2104 / RFC 4231).
//!
//! Used by the network-collaboration scenario (§4 "Network Collaboration") to
//! let two branches of the same enterprise authenticate the rule sections they
//! add to intercepted responses with a shared key, and by tests that need a
//! keyed integrity check.

use crate::sha256::{sha256, Sha256};

const BLOCK_SIZE: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        let digest = sha256(key);
        key_block[..32].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_SIZE];
    let mut opad = [0u8; BLOCK_SIZE];
    for i in 0..BLOCK_SIZE {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time comparison of two MACs (via [`crate::ct_eq`]).
///
/// Timing side channels are largely irrelevant in a simulator, but verifying
/// MACs in constant time is the idiom the real system would use, and it is
/// cheap to do correctly.
pub fn verify_hmac(key: &[u8], message: &[u8], mac: &[u8]) -> bool {
    crate::ct_eq(&hmac_sha256(key, message), mac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = hmac_sha256(b"branch-shared-key", b"pass from any to any port 443");
        assert!(verify_hmac(
            b"branch-shared-key",
            b"pass from any to any port 443",
            &mac
        ));
        assert!(!verify_hmac(
            b"branch-shared-key",
            b"pass from any to any port 22",
            &mac
        ));
        assert!(!verify_hmac(
            b"wrong-key",
            b"pass from any to any port 443",
            &mac
        ));
        assert!(!verify_hmac(b"branch-shared-key", b"msg", &mac[..16]));
    }
}
