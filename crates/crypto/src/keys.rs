//! Key pairs and the named public-key registry.
//!
//! Controller configuration files declare the public keys they trust with the
//! PF+=2 `dict` construct, e.g. Fig. 5:
//!
//! ```text
//! dict <pubkeys> { \
//!     research : sk3ajf...fa932 \
//!     admin    : a923jx...a12kz \
//! }
//! ```
//!
//! [`KeyRegistry`] is the in-memory form of that dictionary; the PF+=2
//! evaluator resolves `@pubkeys[research]` against it (or against the literal
//! hex value, when the dictionary stores the key material inline).

use std::collections::BTreeMap;

use crate::schnorr;
use crate::sha256::{from_hex, sha256, to_hex};

/// A secret (signing) key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(pub(crate) u64);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print secret key material.
        write!(f, "SecretKey(..)")
    }
}

/// A public (verification) key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PublicKey(pub(crate) u64);

impl PublicKey {
    /// Hex form, as stored in `.control` files.
    pub fn to_hex(&self) -> String {
        to_hex(&self.0.to_be_bytes())
    }

    /// Parses the hex form. Returns `None` for malformed input.
    pub fn from_hex(s: &str) -> Option<PublicKey> {
        let bytes = from_hex(s.trim())?;
        if bytes.len() != 8 {
            return None;
        }
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes);
        Some(PublicKey(u64::from_be_bytes(w)))
    }

    /// The raw group element.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// A signing key pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a seed.
    ///
    /// Deterministic derivation keeps simulator runs and the paper-figure
    /// scenarios reproducible; a production deployment would draw the secret
    /// from a CSPRNG instead.
    pub fn from_seed(seed: &[u8]) -> KeyPair {
        let digest = sha256(&[b"identxx-keypair:", seed].concat());
        let mut w = [0u8; 8];
        w.copy_from_slice(&digest[..8]);
        let mut x = u64::from_be_bytes(w) % crate::field::GROUP_ORDER;
        if x == 0 {
            x = 1;
        }
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(schnorr::public_key(x)),
        }
    }

    /// Builds a key pair from a raw secret scalar.
    pub fn from_secret(x: u64) -> KeyPair {
        let x = if x.is_multiple_of(crate::field::GROUP_ORDER) {
            1
        } else {
            x % crate::field::GROUP_ORDER
        };
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(schnorr::public_key(x)),
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs a raw message.
    pub fn sign(&self, message: &[u8]) -> schnorr::Signature {
        schnorr::sign(self.secret.0, message)
    }
}

/// A named registry of trusted public keys (`dict <pubkeys> { … }`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyRegistry {
    keys: BTreeMap<String, PublicKey>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        KeyRegistry::default()
    }

    /// Registers (or replaces) a named key.
    pub fn insert(&mut self, name: impl Into<String>, key: PublicKey) {
        self.keys.insert(name.into(), key);
    }

    /// Looks up a key by name.
    pub fn get(&self, name: &str) -> Option<PublicKey> {
        self.keys.get(name).copied()
    }

    /// Resolves a PF+=2 key argument: either the name of a registered key or
    /// an inline hex-encoded public key.
    pub fn resolve(&self, name_or_hex: &str) -> Option<PublicKey> {
        self.get(name_or_hex)
            .or_else(|| PublicKey::from_hex(name_or_hex))
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over `(name, key)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, PublicKey)> {
        self.keys.iter().map(|(n, k)| (n.as_str(), *k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_pair_is_deterministic_per_seed() {
        let a = KeyPair::from_seed(b"research");
        let b = KeyPair::from_seed(b"research");
        let c = KeyPair::from_seed(b"admin");
        assert_eq!(a, b);
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn public_key_hex_round_trip() {
        let kp = KeyPair::from_seed(b"Secur");
        let hex = kp.public().to_hex();
        assert_eq!(PublicKey::from_hex(&hex), Some(kp.public()));
        assert_eq!(PublicKey::from_hex("nothex"), None);
        assert_eq!(PublicKey::from_hex("abcd"), None);
    }

    #[test]
    fn registry_lookup_and_resolve() {
        let research = KeyPair::from_seed(b"research");
        let mut reg = KeyRegistry::new();
        reg.insert("research", research.public());
        assert_eq!(reg.get("research"), Some(research.public()));
        assert_eq!(reg.get("admin"), None);
        assert_eq!(reg.resolve("research"), Some(research.public()));
        // Inline hex also resolves even if not registered by name.
        let secur = KeyPair::from_seed(b"Secur");
        assert_eq!(reg.resolve(&secur.public().to_hex()), Some(secur.public()));
        assert_eq!(reg.resolve("unknown"), None);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn secret_key_debug_does_not_leak() {
        let kp = KeyPair::from_secret(123456);
        let dbg = format!("{:?}", kp);
        assert!(!dbg.contains("123456"));
    }

    #[test]
    fn zero_secret_is_avoided() {
        let kp = KeyPair::from_secret(0);
        let msg = b"m";
        assert!(schnorr::verify(kp.public().raw(), msg, &kp.sign(msg)));
    }
}
