//! Key pairs and the named public-key registry.
//!
//! Controller configuration files declare the public keys they trust with the
//! PF+=2 `dict` construct, e.g. Fig. 5:
//!
//! ```text
//! dict <pubkeys> { \
//!     research : sk3ajf...fa932 \
//!     admin    : a923jx...a12kz \
//! }
//! ```
//!
//! [`KeyRegistry`] is the in-memory form of that dictionary; the PF+=2
//! evaluator resolves `@pubkeys[research]` against it (or against the literal
//! hex value, when the dictionary stores the key material inline).
//!
//! Keys are real ed25519 keys ([`crate::ed25519`]): the secret key is the
//! 32-byte RFC 8032 seed, the public key its 32-byte compressed curve point
//! (64 hex characters in `.control` files).

use std::collections::BTreeMap;

use crate::ed25519;
use crate::sha256::{from_hex, sha256, to_hex};

/// A secret (signing) key: the 32-byte ed25519 seed.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(pub(crate) [u8; 32]);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print secret key material.
        write!(f, "SecretKey(..)")
    }
}

/// A public (verification) key: a compressed ed25519 curve point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PublicKey(pub(crate) [u8; 32]);

impl PublicKey {
    /// Hex form, as stored in `.control` files (64 characters).
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }

    /// Parses the hex form. Returns `None` for malformed input.
    pub fn from_hex(s: &str) -> Option<PublicKey> {
        let bytes = from_hex(s.trim())?;
        if bytes.len() != 32 {
            return None;
        }
        let mut w = [0u8; 32];
        w.copy_from_slice(&bytes);
        Some(PublicKey(w))
    }

    /// The raw compressed-point bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// A signing key pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a seed.
    ///
    /// Deterministic derivation keeps simulator runs and the paper-figure
    /// scenarios reproducible; a production deployment would draw the 32-byte
    /// ed25519 seed from a CSPRNG instead.
    pub fn from_seed(seed: &[u8]) -> KeyPair {
        let digest = sha256(&[b"identxx-keypair:", seed].concat());
        KeyPair {
            secret: SecretKey(digest),
            public: PublicKey(ed25519::derive_public(&digest)),
        }
    }

    /// Builds a key pair deterministically from a raw `u64` (kept for
    /// callers that index key material numerically; the value is stretched
    /// into a full seed, it is *not* the secret scalar).
    pub fn from_secret(x: u64) -> KeyPair {
        KeyPair::from_seed(&x.to_be_bytes())
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs a raw message.
    pub fn sign(&self, message: &[u8]) -> ed25519::Signature {
        ed25519::sign(&self.secret.0, message)
    }
}

/// A named registry of trusted public keys (`dict <pubkeys> { … }`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyRegistry {
    keys: BTreeMap<String, PublicKey>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        KeyRegistry::default()
    }

    /// Registers (or replaces) a named key.
    pub fn insert(&mut self, name: impl Into<String>, key: PublicKey) {
        self.keys.insert(name.into(), key);
    }

    /// Looks up a key by name.
    pub fn get(&self, name: &str) -> Option<PublicKey> {
        self.keys.get(name).copied()
    }

    /// Resolves a PF+=2 key argument: either the name of a registered key or
    /// an inline hex-encoded public key.
    pub fn resolve(&self, name_or_hex: &str) -> Option<PublicKey> {
        self.get(name_or_hex)
            .or_else(|| PublicKey::from_hex(name_or_hex))
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over `(name, key)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, PublicKey)> {
        self.keys.iter().map(|(n, k)| (n.as_str(), *k))
    }

    /// The registered names, in order (used by the static analyzer's
    /// dangling-key check).
    pub fn names(&self) -> Vec<String> {
        self.keys.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_pair_is_deterministic_per_seed() {
        let a = KeyPair::from_seed(b"research");
        let b = KeyPair::from_seed(b"research");
        let c = KeyPair::from_seed(b"admin");
        assert_eq!(a, b);
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn public_key_hex_round_trip() {
        let kp = KeyPair::from_seed(b"Secur");
        let hex = kp.public().to_hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(PublicKey::from_hex(&hex), Some(kp.public()));
        assert_eq!(PublicKey::from_hex("nothex"), None);
        assert_eq!(PublicKey::from_hex("abcd"), None);
        // The old 8-byte toy-scheme key length no longer parses.
        assert_eq!(PublicKey::from_hex("0123456789abcdef"), None);
    }

    #[test]
    fn registry_lookup_and_resolve() {
        let research = KeyPair::from_seed(b"research");
        let mut reg = KeyRegistry::new();
        reg.insert("research", research.public());
        assert_eq!(reg.get("research"), Some(research.public()));
        assert_eq!(reg.get("admin"), None);
        assert_eq!(reg.resolve("research"), Some(research.public()));
        // Inline hex also resolves even if not registered by name.
        let secur = KeyPair::from_seed(b"Secur");
        assert_eq!(reg.resolve(&secur.public().to_hex()), Some(secur.public()));
        assert_eq!(reg.resolve("unknown"), None);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        assert_eq!(reg.names(), vec!["research".to_string()]);
    }

    #[test]
    fn secret_key_debug_does_not_leak() {
        let kp = KeyPair::from_secret(123_456);
        let dbg = format!("{:?}", kp);
        assert!(!dbg.contains("123456"));
        assert!(dbg.contains("SecretKey(..)"));
    }

    #[test]
    fn from_secret_signs_verifiably() {
        let kp = KeyPair::from_secret(0);
        let msg = b"m";
        let sig = kp.sign(msg);
        assert!(crate::ed25519::verify(kp.public().as_bytes(), msg, &sig));
    }
}
