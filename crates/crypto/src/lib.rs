//! # identxx-crypto — hashing and signatures for authenticated delegation
//!
//! The paper's PF+=2 language has a `verify` function: "verify tests if first
//! argument is the correct signature for public key specified in second
//! argument and data specified in remaining arguments" (§3.3). Combined with
//! `allowed`, this enables **authenticated delegation**: users and third
//! parties (such as the "Secur" security company of §4) sign the network
//! requirements of an application together with its name and executable hash,
//! and the controller enforces those requirements only if the signature
//! verifies against a public key it has been configured to trust.
//!
//! The paper does not specify a signature scheme. This crate provides:
//!
//! * [`mod@sha256`] — SHA-256 implemented from scratch and checked against the
//!   FIPS 180-4 test vectors (used for executable hashes and as the signature
//!   scheme's hash function),
//! * [`hmac`] — HMAC-SHA256 (used for keyed integrity in the simulator),
//! * [`field`] + [`schnorr`] — a *toy* Schnorr-style discrete-log signature
//!   over the 61-bit Mersenne prime field. **This is not cryptographically
//!   strong** (the field is far too small for real security); it exists so
//!   that the `verify` code path, key distribution, and tamper detection are
//!   exercised end to end without pulling in external crypto crates. The
//!   substitution is recorded in `DESIGN.md` §2.
//! * [`keys`] — key pairs and a named key registry mirroring the
//!   `dict <pubkeys> { research : …, admin : … }` construct of Fig. 5/7,
//! * [`signing`] — canonical encoding and signing of multi-part data (the
//!   `(exe-hash, app-name, requirements)` bundles that `verify` checks).
//!
//! ## Example
//!
//! ```
//! use identxx_crypto::{KeyPair, sign_bundle, verify_bundle};
//!
//! let researcher = KeyPair::from_seed(b"researcher key");
//! let data = ["deadbeef", "research-app", "block all\npass all"];
//! let sig = sign_bundle(&researcher, &data);
//! assert!(verify_bundle(&sig, &researcher.public(), &data));
//! let tampered = ["deadbeef", "research-app", "pass all"];
//! assert!(!verify_bundle(&sig, &researcher.public(), &tampered));
//! ```

pub mod field;
pub mod hmac;
pub mod keys;
pub mod schnorr;
pub mod sha256;
pub mod signing;

pub use keys::{KeyPair, KeyRegistry, PublicKey, SecretKey};
pub use schnorr::Signature;
pub use sha256::{sha256, sha256_hex, Sha256};
pub use signing::{sign_bundle, sign_bundle_hex, verify_bundle, verify_bundle_hex, CryptoError};
