//! # identxx-crypto — hashing and signatures for authenticated delegation
//!
//! The paper's PF+=2 language has a `verify` function: "verify tests if first
//! argument is the correct signature for public key specified in second
//! argument and data specified in remaining arguments" (§3.3). Combined with
//! `allowed`, this enables **authenticated delegation**: users and third
//! parties (such as the "Secur" security company of §4) sign the network
//! requirements of an application together with its name and executable hash,
//! and the controller enforces those requirements only if the signature
//! verifies against a public key it has been configured to trust.
//!
//! The paper does not specify a signature scheme. This crate provides:
//!
//! * [`mod@sha256`] / [`mod@sha512`] — both hashes implemented from scratch
//!   and checked against the FIPS 180-4 test vectors (SHA-256 for executable
//!   hashes and cache keys, SHA-512 inside ed25519),
//! * [`hmac`] — HMAC-SHA256 (used for keyed integrity in the simulator),
//! * [`ed25519`] — the real signature scheme (RFC 8032, hermetic in-tree),
//! * [`keys`] — key pairs and a named key registry mirroring the
//!   `dict <pubkeys> { research : …, admin : … }` construct of Fig. 5/7,
//! * [`signing`] — canonical encoding and signing of multi-part data bundles
//!   (the `(exe-hash, app-name, requirements)` bundles that `verify` checks),
//!   including **short-lived** bundles carrying a `not_before`/`not_after`
//!   validity window and a key id, so revocation is an expiry rather than a
//!   round trip,
//! * [`verify_cache`] — a sharded, capped LRU of verification verdicts keyed
//!   by bundle content hash, so the decision path pays curve math once per
//!   distinct bundle and a hash-plus-window-check thereafter.
//!
//! The original toy Schnorr scheme over a 61-bit field (the `field` +
//! `schnorr` modules) is compiled only under the `legacy-toy` cargo feature; it
//! exists solely for the cross-scheme equivalence tests, and `xtask lint`
//! flags any other use.
//!
//! ## Example
//!
//! ```
//! use identxx_crypto::{KeyPair, sign_bundle, verify_bundle};
//!
//! let researcher = KeyPair::from_seed(b"researcher key");
//! let data = ["deadbeef", "research-app", "block all\npass all"];
//! let sig = sign_bundle(&researcher, &data);
//! assert!(verify_bundle(&sig, &researcher.public(), &data));
//! let tampered = ["deadbeef", "research-app", "pass all"];
//! assert!(!verify_bundle(&sig, &researcher.public(), &tampered));
//! ```

pub mod ed25519;
#[cfg(feature = "legacy-toy")]
pub mod field;
pub mod hmac;
pub mod keys;
#[cfg(feature = "legacy-toy")]
pub mod schnorr;
pub mod sha256;
pub mod sha512;
pub mod signing;
pub mod verify_cache;

pub use ed25519::Signature;
pub use keys::{KeyPair, KeyRegistry, PublicKey, SecretKey};
pub use sha256::{sha256, sha256_hex, Sha256};
pub use sha512::{sha512, Sha512};
pub use signing::{
    sign_bundle, sign_bundle_hex, sign_bundle_windowed, verify_bundle, verify_bundle_hex,
    verify_bundle_hex_at, BundleParseError, SignedBundle, VerifyError,
};
pub use verify_cache::{VerifyCache, VerifyCacheStats, VerifyEvent, VerifyOutcome};

/// Constant-time equality of two byte strings.
///
/// Signature and digest comparisons must not leak *where* two values first
/// differ: an attacker who can submit guesses and time the rejection can
/// otherwise recover a MAC or signature byte by byte. Used by
/// [`ed25519::verify`], [`hmac::verify_hmac`], and the bundle helpers.
/// Lengths are public here (both sides are fixed-width digests), so an early
/// return on mismatched length leaks nothing.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn ct_eq_basics() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"\x00", b"\x01"));
    }
}
