//! A toy Schnorr-style signature scheme over the 61-bit Mersenne prime field.
//!
//! Scheme (all arithmetic in [`crate::field`]):
//!
//! * secret key `x ∈ [1, q)`, public key `y = g^x mod p` where `q = p - 1`,
//! * sign(m): derive a per-message nonce `k = H(x ‖ m) mod q` (deterministic,
//!   RFC-6979 style, so the simulator needs no CSPRNG at signing time),
//!   `r = g^k`, challenge `e = H(r ‖ m) mod q`, `s = k + x·e mod q`,
//! * verify(m, (e, s)): `r' = g^s · y^{-e}`, accept iff `H(r' ‖ m) mod q == e`.
//!
//! **Not secure for real use** — the group is only 61 bits — but the protocol
//! structure, serialization, and tamper-rejection behaviour match a real
//! deployment, which is what the ident++ `verify` function needs.

use crate::field::{self, GENERATOR, GROUP_ORDER};
use crate::sha256::{from_hex, sha256, to_hex};

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Signature {
    /// The challenge.
    pub e: u64,
    /// The response.
    pub s: u64,
}

impl Signature {
    /// Serializes the signature as a hex string (as it appears in the
    /// `req-sig` key of daemon configuration files).
    pub fn to_hex(&self) -> String {
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&self.e.to_be_bytes());
        bytes.extend_from_slice(&self.s.to_be_bytes());
        to_hex(&bytes)
    }

    /// Parses a signature from its hex form. Returns `None` for malformed
    /// input (wrong length or non-hex characters).
    pub fn from_hex(s: &str) -> Option<Signature> {
        let bytes = from_hex(s.trim())?;
        if bytes.len() != 16 {
            return None;
        }
        let mut e = [0u8; 8];
        let mut sv = [0u8; 8];
        e.copy_from_slice(&bytes[..8]);
        sv.copy_from_slice(&bytes[8..]);
        Some(Signature {
            e: u64::from_be_bytes(e),
            s: u64::from_be_bytes(sv),
        })
    }
}

fn hash_to_scalar(parts: &[&[u8]]) -> u64 {
    let mut buf = Vec::new();
    for p in parts {
        buf.extend_from_slice(&(p.len() as u64).to_be_bytes());
        buf.extend_from_slice(p);
    }
    let digest = sha256(&buf);
    let mut word = [0u8; 8];
    word.copy_from_slice(&digest[..8]);
    u64::from_be_bytes(word) % GROUP_ORDER
}

/// Signs `message` with secret key `x`, returning the signature.
pub fn sign(x: u64, message: &[u8]) -> Signature {
    let x = x % GROUP_ORDER;
    // Deterministic nonce bound to both the key and the message.
    let mut k = hash_to_scalar(&[b"identxx-nonce", &x.to_be_bytes(), message]);
    if k == 0 {
        k = 1;
    }
    let r = field::pow(GENERATOR, k);
    let e = hash_to_scalar(&[b"identxx-challenge", &r.to_be_bytes(), message]);
    let s = field::add_order(k, field::mul_order(x, e));
    Signature { e, s }
}

/// Verifies `signature` over `message` against public key `y = g^x`.
pub fn verify(y: u64, message: &[u8], signature: &Signature) -> bool {
    if signature.e >= GROUP_ORDER || signature.s >= GROUP_ORDER {
        return false;
    }
    if y == 0 || y >= field::P {
        return false;
    }
    // r' = g^s * y^{-e} = g^s * (y^e)^{-1}
    let y_e = field::pow(y, signature.e);
    let y_e_inv = match field::inv(y_e) {
        Some(v) => v,
        None => return false,
    };
    let r = field::mul(field::pow(GENERATOR, signature.s), y_e_inv);
    let e = hash_to_scalar(&[b"identxx-challenge", &r.to_be_bytes(), message]);
    e == signature.e
}

/// Derives the public key for secret key `x`.
pub fn public_key(x: u64) -> u64 {
    field::pow(GENERATOR, x % GROUP_ORDER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let x = 0x1234_5678_9abc_def0 % GROUP_ORDER;
        let y = public_key(x);
        let msg = b"block all; pass with eq(@src[name], research-app)";
        let sig = sign(x, msg);
        assert!(verify(y, msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let x = 42_424_242;
        let y = public_key(x);
        let sig = sign(x, b"pass from research to research");
        assert!(!verify(y, b"pass from research to production", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let sig = sign(1111, b"message");
        let other = public_key(2222);
        assert!(!verify(other, b"message", &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let a = sign(777, b"same message");
        let b = sign(777, b"same message");
        assert_eq!(a, b);
        let c = sign(777, b"different message");
        assert_ne!(a, c);
    }

    #[test]
    fn hex_round_trip() {
        let sig = sign(31337, b"hex me");
        let hex = sig.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Signature::from_hex(&hex), Some(sig));
        assert_eq!(Signature::from_hex("zz"), None);
        assert_eq!(Signature::from_hex("abcd"), None);
    }

    #[test]
    fn malformed_signature_values_rejected() {
        let x = 5555;
        let y = public_key(x);
        let msg = b"msg";
        let good = sign(x, msg);
        let bad_e = Signature {
            e: GROUP_ORDER,
            s: good.s,
        };
        let bad_s = Signature {
            e: good.e,
            s: GROUP_ORDER + 1,
        };
        assert!(!verify(y, msg, &bad_e));
        assert!(!verify(y, msg, &bad_s));
        assert!(!verify(0, msg, &good));
    }

    #[test]
    fn flipping_any_sig_component_rejects() {
        let x = 90210;
        let y = public_key(x);
        let msg = b"conforms to Secur rules";
        let sig = sign(x, msg);
        assert!(!verify(
            y,
            msg,
            &Signature {
                e: sig.e ^ 1,
                s: sig.s
            }
        ));
        assert!(!verify(
            y,
            msg,
            &Signature {
                e: sig.e,
                s: sig.s ^ 1
            }
        ));
    }
}
