//! Signing of multi-part data bundles, as used by the PF+=2 `verify` function.
//!
//! The paper's `verify` call takes a signature, a public key, and a *list* of
//! data items, e.g. Fig. 5:
//!
//! ```text
//! with verify(@dst[req-sig], @pubkeys[research],
//!             @dst[exe-hash], @dst[app-name], @dst[requirements])
//! ```
//!
//! The signature must bind all of the data items together — otherwise an
//! attacker could mix and match (say) the requirements of one application with
//! the executable hash of another. [`canonical_encoding`] length-prefixes each
//! item so the encoding is injective, and [`sign_bundle`]/[`verify_bundle`]
//! sign and verify that encoding.
//!
//! ## Short-lived bundles
//!
//! A **windowed** bundle ([`SignedBundle`], minted by [`sign_bundle_windowed`])
//! additionally binds a key id and a `[not_before, not_after)` validity
//! window into the signed encoding. The window is in the system's *logical*
//! microseconds — the same clock `decide(now)` carries; there is no wall
//! clock anywhere, so runs replay byte-identically. A bundle outside its
//! window is rejected regardless of the curve math, which makes revocation an
//! expiry instead of a round trip (the design move of "Short-Lived
//! Forward-Secure Delegation for TLS"). The wire form placed in the `req-sig`
//! key is hex of `IDB2 ‖ key-id ‖ window ‖ signature`; a bare 64-byte hex
//! signature is still accepted as a legacy unwindowed bundle.

use std::fmt;

use crate::ed25519::{self, Signature};
use crate::keys::{KeyPair, PublicKey};
use crate::sha256::{from_hex, to_hex};

/// Magic prefix of the windowed-bundle wire blob.
const BUNDLE_MAGIC: &[u8; 4] = b"IDB2";

/// A raw ed25519 signature is 64 bytes; anything else hex-decoding to a
/// different length must carry the `IDB2` frame.
const RAW_SIG_LEN: usize = 64;

/// Why a bundle string could not be parsed at all (as opposed to parsing
/// fine and failing verification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleParseError {
    /// The string is not valid hex.
    NotHex,
    /// Hex decoded, but the blob is neither a raw 64-byte signature nor an
    /// `IDB2` windowed bundle.
    UnknownFormat {
        /// Decoded blob length in bytes.
        len: usize,
    },
    /// An `IDB2` blob with inconsistent framing.
    Malformed(&'static str),
}

impl fmt::Display for BundleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleParseError::NotHex => write!(f, "not valid hex"),
            BundleParseError::UnknownFormat { len } => {
                write!(
                    f,
                    "{len}-byte blob is neither a raw signature nor an IDB2 bundle"
                )
            }
            BundleParseError::Malformed(what) => write!(f, "malformed IDB2 bundle: {what}"),
        }
    }
}

impl std::error::Error for BundleParseError {}

/// Why bundle verification failed. The controller maps each variant to a
/// distinct audit note (`verify-expired` vs `verify-forged` vs
/// `verify-unparseable`), because an operator debugging a deny needs to know
/// whether the bundle was stale, hostile, or garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The signature string could not be parsed.
    Unparseable(BundleParseError),
    /// The public key string could not be parsed.
    MalformedPublicKey(String),
    /// The bundle's validity window starts after `now`.
    NotYetValid {
        /// Window start (logical µs).
        not_before: u64,
        /// Evaluation time (logical µs).
        now: u64,
    },
    /// The bundle's validity window ended at or before `now`.
    Expired {
        /// Window end (logical µs, exclusive).
        not_after: u64,
        /// Evaluation time (logical µs).
        now: u64,
    },
    /// The window (if any) is fine but the signature does not verify.
    Forged,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Unparseable(err) => write!(f, "unparseable bundle: {err}"),
            VerifyError::MalformedPublicKey(s) => write!(f, "malformed public key: {s:?}"),
            VerifyError::NotYetValid { not_before, now } => {
                write!(f, "bundle not valid before t={not_before} (now t={now})")
            }
            VerifyError::Expired { not_after, now } => {
                write!(f, "bundle expired at t={not_after} (now t={now})")
            }
            VerifyError::Forged => write!(f, "signature does not verify"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Injective canonical encoding of a list of data items (the legacy,
/// unwindowed v1 form).
///
/// Each item is prefixed with its length so that `["ab", "c"]` and
/// `["a", "bc"]` encode differently.
pub fn canonical_encoding<S: AsRef<str>>(items: &[S]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"identxx-bundle-v1");
    out.extend_from_slice(&(items.len() as u64).to_be_bytes());
    for item in items {
        let bytes = item.as_ref().as_bytes();
        out.extend_from_slice(&(bytes.len() as u64).to_be_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Injective canonical encoding of a *windowed* bundle: binds the key id and
/// the validity window together with the data items, so neither can be
/// transplanted onto other data. The `v2` prefix keeps the two encodings
/// disjoint — a v1 signature can never verify as a v2 bundle or vice versa.
pub fn windowed_encoding<S: AsRef<str>>(
    key_id: &str,
    not_before: u64,
    not_after: u64,
    items: &[S],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"identxx-bundle-v2");
    out.extend_from_slice(&(key_id.len() as u64).to_be_bytes());
    out.extend_from_slice(key_id.as_bytes());
    out.extend_from_slice(&not_before.to_be_bytes());
    out.extend_from_slice(&not_after.to_be_bytes());
    out.extend_from_slice(&(items.len() as u64).to_be_bytes());
    for item in items {
        let bytes = item.as_ref().as_bytes();
        out.extend_from_slice(&(bytes.len() as u64).to_be_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Signs a data bundle with a key pair (legacy unwindowed form).
pub fn sign_bundle<S: AsRef<str>>(keypair: &KeyPair, items: &[S]) -> Signature {
    keypair.sign(&canonical_encoding(items))
}

/// Signs a data bundle and returns the hex form (the value placed in the
/// `req-sig` configuration key).
pub fn sign_bundle_hex<S: AsRef<str>>(keypair: &KeyPair, items: &[S]) -> String {
    sign_bundle(keypair, items).to_hex()
}

/// Verifies a signed data bundle (legacy unwindowed form).
pub fn verify_bundle<S: AsRef<str>>(sig: &Signature, key: &PublicKey, items: &[S]) -> bool {
    ed25519::verify(key.as_bytes(), &canonical_encoding(items), sig)
}

/// A short-lived signed bundle: a signature over
/// [`windowed_encoding`]`(key_id, not_before, not_after, items)`, carried on
/// the wire with the metadata it was bound to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedBundle {
    /// Name of the signing key in the verifier's `KeyRegistry` (informational
    /// on the wire, but *bound under the signature*, so it cannot be swapped).
    pub key_id: String,
    /// Window start, logical µs (inclusive).
    pub not_before: u64,
    /// Window end, logical µs (exclusive): the bundle is already invalid at
    /// exactly `not_after`.
    pub not_after: u64,
    /// Signature over the windowed encoding.
    pub signature: Signature,
}

impl SignedBundle {
    /// `true` iff `now` falls inside `[not_before, not_after)`.
    pub fn window_contains(&self, now: u64) -> bool {
        self.not_before <= now && now < self.not_after
    }

    /// Hex wire form, as placed in the `req-sig` key:
    /// `IDB2 ‖ key-id-len(u16 BE) ‖ key-id ‖ not_before(u64 BE) ‖
    /// not_after(u64 BE) ‖ signature(64)`, hex encoded.
    pub fn to_hex(&self) -> String {
        let mut blob = Vec::with_capacity(4 + 2 + self.key_id.len() + 16 + 64);
        blob.extend_from_slice(BUNDLE_MAGIC);
        blob.extend_from_slice(&(self.key_id.len() as u16).to_be_bytes());
        blob.extend_from_slice(self.key_id.as_bytes());
        blob.extend_from_slice(&self.not_before.to_be_bytes());
        blob.extend_from_slice(&self.not_after.to_be_bytes());
        blob.extend_from_slice(&self.signature.to_bytes());
        to_hex(&blob)
    }

    /// Parses the hex wire form.
    pub fn from_hex(s: &str) -> Result<SignedBundle, BundleParseError> {
        let blob = from_hex(s.trim()).ok_or(BundleParseError::NotHex)?;
        if blob.len() < 4 || &blob[..4] != BUNDLE_MAGIC {
            return Err(BundleParseError::UnknownFormat { len: blob.len() });
        }
        let rest = &blob[4..];
        if rest.len() < 2 {
            return Err(BundleParseError::Malformed("missing key-id length"));
        }
        let key_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
        let rest = &rest[2..];
        if rest.len() != key_len + 16 + 64 {
            return Err(BundleParseError::Malformed("length mismatch"));
        }
        let key_id = std::str::from_utf8(&rest[..key_len])
            .map_err(|_| BundleParseError::Malformed("key id is not UTF-8"))?
            .to_string();
        let word = |at: usize| -> u64 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&rest[at..at + 8]);
            u64::from_be_bytes(w)
        };
        let not_before = word(key_len);
        let not_after = word(key_len + 8);
        let mut sig = [0u8; 64];
        sig.copy_from_slice(&rest[key_len + 16..]);
        Ok(SignedBundle {
            key_id,
            not_before,
            not_after,
            signature: Signature::from_bytes(sig),
        })
    }
}

/// Mints a short-lived bundle: signs `items` bound to `key_id` and the
/// `[not_before, not_after)` window.
pub fn sign_bundle_windowed<S: AsRef<str>>(
    keypair: &KeyPair,
    key_id: &str,
    not_before: u64,
    not_after: u64,
    items: &[S],
) -> SignedBundle {
    SignedBundle {
        key_id: key_id.to_string(),
        not_before,
        not_after,
        signature: keypair.sign(&windowed_encoding(key_id, not_before, not_after, items)),
    }
}

/// A parsed `req-sig` value: either a legacy raw signature or a windowed
/// bundle. Shared with the verify cache, which needs the window separately
/// from the curve math.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParsedSig {
    Raw(Signature),
    Windowed(SignedBundle),
}

impl ParsedSig {
    /// The validity window, if any.
    pub(crate) fn window(&self) -> Option<(u64, u64)> {
        match self {
            ParsedSig::Raw(_) => None,
            ParsedSig::Windowed(b) => Some((b.not_before, b.not_after)),
        }
    }

    /// The key id the bundle claims, if any.
    pub(crate) fn key_id(&self) -> Option<&str> {
        match self {
            ParsedSig::Raw(_) => None,
            ParsedSig::Windowed(b) => Some(&b.key_id),
        }
    }

    /// Runs the curve math only (no window check).
    pub(crate) fn signature_valid<S: AsRef<str>>(&self, key: &PublicKey, items: &[S]) -> bool {
        match self {
            ParsedSig::Raw(sig) => verify_bundle(sig, key, items),
            ParsedSig::Windowed(b) => ed25519::verify(
                key.as_bytes(),
                &windowed_encoding(&b.key_id, b.not_before, b.not_after, items),
                &b.signature,
            ),
        }
    }
}

/// Parses a `req-sig` value in either wire form.
pub(crate) fn parse_sig_hex(sig_hex: &str) -> Result<ParsedSig, BundleParseError> {
    let blob = from_hex(sig_hex.trim()).ok_or(BundleParseError::NotHex)?;
    if blob.len() == RAW_SIG_LEN {
        let mut bytes = [0u8; 64];
        bytes.copy_from_slice(&blob);
        return Ok(ParsedSig::Raw(Signature::from_bytes(bytes)));
    }
    SignedBundle::from_hex(sig_hex).map(ParsedSig::Windowed)
}

/// Verifies a bundle in its textual wire/config form at logical time `now`,
/// with a typed error distinguishing *why* it failed. The window is checked
/// before the signature, so an expired bundle costs no curve math.
pub fn verify_bundle_hex_at<S: AsRef<str>>(
    sig_hex: &str,
    key_hex: &str,
    items: &[S],
    now: u64,
) -> Result<(), VerifyError> {
    let parsed = parse_sig_hex(sig_hex).map_err(VerifyError::Unparseable)?;
    let key = PublicKey::from_hex(key_hex)
        .ok_or_else(|| VerifyError::MalformedPublicKey(key_hex.to_string()))?;
    if let Some((not_before, not_after)) = parsed.window() {
        if now < not_before {
            return Err(VerifyError::NotYetValid { not_before, now });
        }
        if now >= not_after {
            return Err(VerifyError::Expired { not_after, now });
        }
    }
    if parsed.signature_valid(&key, items) {
        Ok(())
    } else {
        Err(VerifyError::Forged)
    }
}

/// Verifies a bundle where the signature and key are given in their textual
/// (hex) wire/config form, at logical time zero. Kept as the boolean
/// convenience for unwindowed call sites; [`verify_bundle_hex_at`] is the
/// typed, clock-aware entry point the decision path uses.
pub fn verify_bundle_hex<S: AsRef<str>>(sig_hex: &str, key_hex: &str, items: &[S]) -> bool {
    verify_bundle_hex_at(sig_hex, key_hex, items, 0).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn research_bundle() -> [&'static str; 3] {
        [
            "9f2c7a11deadbeef", // exe-hash
            "research-app",
            "block all\npass all with eq(@src[name], research-app) with eq(@dst[name], research-app)",
        ]
    }

    #[test]
    fn bundle_round_trip() {
        let kp = KeyPair::from_seed(b"researcher-alice");
        let sig = sign_bundle(&kp, &research_bundle());
        assert!(verify_bundle(&sig, &kp.public(), &research_bundle()));
    }

    #[test]
    fn any_modified_item_is_rejected() {
        let kp = KeyPair::from_seed(b"researcher-alice");
        let sig = sign_bundle(&kp, &research_bundle());
        let mut tampered = research_bundle();
        tampered[0] = "0000000000000000";
        assert!(!verify_bundle(&sig, &kp.public(), &tampered));
        let mut tampered = research_bundle();
        tampered[1] = "evil-app";
        assert!(!verify_bundle(&sig, &kp.public(), &tampered));
        let mut tampered = research_bundle();
        tampered[2] = "pass all";
        assert!(!verify_bundle(&sig, &kp.public(), &tampered));
    }

    #[test]
    fn item_boundaries_matter() {
        // ["ab","c"] must not verify as ["a","bc"].
        let kp = KeyPair::from_seed(b"boundary");
        let sig = sign_bundle(&kp, &["ab", "c"]);
        assert!(!verify_bundle(&sig, &kp.public(), &["a", "bc"]));
        assert!(verify_bundle(&sig, &kp.public(), &["ab", "c"]));
        // Differing item counts also matter.
        let sig2 = sign_bundle(&kp, &["abc"]);
        assert!(!verify_bundle(&sig2, &kp.public(), &["abc", ""]));
    }

    #[test]
    fn hex_forms_verify() {
        let kp = KeyPair::from_seed(b"Secur");
        let items = ["cafebabe", "thunderbird", "block all\npass from any ..."];
        let sig_hex = sign_bundle_hex(&kp, &items);
        let key_hex = kp.public().to_hex();
        assert!(verify_bundle_hex(&sig_hex, &key_hex, &items));
        assert!(!verify_bundle_hex(&sig_hex, &key_hex, &["x", "y", "z"]));
        assert!(!verify_bundle_hex("nothex", &key_hex, &items));
        assert!(!verify_bundle_hex(&sig_hex, "nothex", &items));
    }

    #[test]
    fn typed_errors_distinguish_failure_modes() {
        let kp = KeyPair::from_seed(b"Secur");
        let items = ["cafebabe", "thunderbird", "pass all"];
        let sig_hex = sign_bundle_hex(&kp, &items);
        let key_hex = kp.public().to_hex();
        assert_eq!(verify_bundle_hex_at(&sig_hex, &key_hex, &items, 0), Ok(()));
        assert_eq!(
            verify_bundle_hex_at("nothex", &key_hex, &items, 0),
            Err(VerifyError::Unparseable(BundleParseError::NotHex))
        );
        // 1-byte blob: hex but no known format.
        assert_eq!(
            verify_bundle_hex_at("ab", &key_hex, &items, 0),
            Err(VerifyError::Unparseable(BundleParseError::UnknownFormat {
                len: 1
            }))
        );
        assert_eq!(
            verify_bundle_hex_at(&sig_hex, "nothex", &items, 0),
            Err(VerifyError::MalformedPublicKey("nothex".to_string()))
        );
        assert_eq!(
            verify_bundle_hex_at(&sig_hex, &key_hex, &["x", "y", "z"], 0),
            Err(VerifyError::Forged)
        );
    }

    #[test]
    fn wrong_signer_is_rejected() {
        let secur = KeyPair::from_seed(b"Secur");
        let attacker = KeyPair::from_seed(b"attacker");
        let items = ["cafebabe", "thunderbird", "pass all"];
        let sig = sign_bundle(&attacker, &items);
        assert!(!verify_bundle(&sig, &secur.public(), &items));
    }

    #[test]
    fn canonical_encoding_is_prefixed_and_versioned() {
        let enc = canonical_encoding(&["a"]);
        assert!(enc.starts_with(b"identxx-bundle-v1"));
        assert_ne!(canonical_encoding(&["a"]), canonical_encoding(&["a", ""]));
        let wenc = windowed_encoding("k", 0, 1, &["a"]);
        assert!(wenc.starts_with(b"identxx-bundle-v2"));
    }

    // --- windowed bundles --------------------------------------------------

    #[test]
    fn windowed_bundle_round_trips_and_respects_window() {
        let kp = KeyPair::from_seed(b"Secur");
        let items = research_bundle();
        let bundle = sign_bundle_windowed(&kp, "secur", 100, 200, &items);
        let hex = bundle.to_hex();
        let key_hex = kp.public().to_hex();
        assert_eq!(SignedBundle::from_hex(&hex), Ok(bundle.clone()));

        assert_eq!(verify_bundle_hex_at(&hex, &key_hex, &items, 100), Ok(()));
        assert_eq!(verify_bundle_hex_at(&hex, &key_hex, &items, 199), Ok(()));
        assert_eq!(
            verify_bundle_hex_at(&hex, &key_hex, &items, 99),
            Err(VerifyError::NotYetValid {
                not_before: 100,
                now: 99
            })
        );
        assert_eq!(
            verify_bundle_hex_at(&hex, &key_hex, &items, 201),
            Err(VerifyError::Expired {
                not_after: 200,
                now: 201
            })
        );
    }

    #[test]
    fn bundle_expires_at_exactly_not_after() {
        // The window is half-open: `not_after` itself is already outside.
        let kp = KeyPair::from_seed(b"boundary-clock");
        let items = ["h", "app", "pass all"];
        let bundle = sign_bundle_windowed(&kp, "k", 0, 500, &items);
        let key_hex = kp.public().to_hex();
        assert_eq!(
            verify_bundle_hex_at(&bundle.to_hex(), &key_hex, &items, 499),
            Ok(())
        );
        assert_eq!(
            verify_bundle_hex_at(&bundle.to_hex(), &key_hex, &items, 500),
            Err(VerifyError::Expired {
                not_after: 500,
                now: 500
            })
        );
    }

    #[test]
    fn window_and_key_id_are_bound_under_the_signature() {
        let kp = KeyPair::from_seed(b"Secur");
        let items = ["h", "app", "pass all"];
        let bundle = sign_bundle_windowed(&kp, "secur", 0, 100, &items);
        let key_hex = kp.public().to_hex();

        // Stretching the window on the wire must invalidate the signature.
        let mut stretched = bundle.clone();
        stretched.not_after = u64::MAX;
        assert_eq!(
            verify_bundle_hex_at(&stretched.to_hex(), &key_hex, &items, 50_000),
            Err(VerifyError::Forged)
        );
        // So must renaming the key id.
        let mut renamed = bundle.clone();
        renamed.key_id = "admin".to_string();
        assert_eq!(
            verify_bundle_hex_at(&renamed.to_hex(), &key_hex, &items, 50),
            Err(VerifyError::Forged)
        );
        // And a v1 signature over the same items is not a v2 bundle.
        let raw = sign_bundle(&kp, &items);
        let mut cross = bundle.clone();
        cross.signature = raw;
        assert_eq!(
            verify_bundle_hex_at(&cross.to_hex(), &key_hex, &items, 50),
            Err(VerifyError::Forged)
        );
    }

    #[test]
    fn malformed_idb2_blobs_report_framing_errors() {
        let kp = KeyPair::from_seed(b"Secur");
        let bundle = sign_bundle_windowed(&kp, "secur", 0, 10, &["a"]);
        let hex = bundle.to_hex();
        // Truncate the blob.
        assert!(matches!(
            SignedBundle::from_hex(&hex[..hex.len() - 4]),
            Err(BundleParseError::Malformed(_))
        ));
        // Corrupt the magic: decodes as an unknown format.
        let mut corrupted = hex.clone();
        corrupted.replace_range(0..2, "00");
        assert!(matches!(
            SignedBundle::from_hex(&corrupted),
            Err(BundleParseError::UnknownFormat { .. })
        ));
    }
}
