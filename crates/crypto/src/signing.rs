//! Signing of multi-part data bundles, as used by the PF+=2 `verify` function.
//!
//! The paper's `verify` call takes a signature, a public key, and a *list* of
//! data items, e.g. Fig. 5:
//!
//! ```text
//! with verify(@dst[req-sig], @pubkeys[research],
//!             @dst[exe-hash], @dst[app-name], @dst[requirements])
//! ```
//!
//! The signature must bind all of the data items together — otherwise an
//! attacker could mix and match (say) the requirements of one application with
//! the executable hash of another. [`canonical_encoding`] length-prefixes each
//! item so the encoding is injective, and [`sign_bundle`]/[`verify_bundle`]
//! sign and verify that encoding.

use std::fmt;

use crate::keys::{KeyPair, PublicKey};
use crate::schnorr::{self, Signature};

/// Errors from the signing helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The signature string could not be parsed.
    MalformedSignature(String),
    /// The public key string could not be parsed or resolved.
    MalformedPublicKey(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MalformedSignature(s) => write!(f, "malformed signature: {s:?}"),
            CryptoError::MalformedPublicKey(s) => write!(f, "malformed public key: {s:?}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Injective canonical encoding of a list of data items.
///
/// Each item is prefixed with its length so that `["ab", "c"]` and
/// `["a", "bc"]` encode differently.
pub fn canonical_encoding<S: AsRef<str>>(items: &[S]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"identxx-bundle-v1");
    out.extend_from_slice(&(items.len() as u64).to_be_bytes());
    for item in items {
        let bytes = item.as_ref().as_bytes();
        out.extend_from_slice(&(bytes.len() as u64).to_be_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Signs a data bundle with a key pair.
pub fn sign_bundle<S: AsRef<str>>(keypair: &KeyPair, items: &[S]) -> Signature {
    keypair.sign(&canonical_encoding(items))
}

/// Signs a data bundle and returns the hex form (the value placed in the
/// `req-sig` configuration key).
pub fn sign_bundle_hex<S: AsRef<str>>(keypair: &KeyPair, items: &[S]) -> String {
    sign_bundle(keypair, items).to_hex()
}

/// Verifies a signed data bundle.
pub fn verify_bundle<S: AsRef<str>>(sig: &Signature, key: &PublicKey, items: &[S]) -> bool {
    schnorr::verify(key.raw(), &canonical_encoding(items), sig)
}

/// Verifies a bundle where the signature and key are given in their textual
/// (hex) wire/config form. Malformed inputs verify as `false` rather than
/// erroring — a controller must treat unparseable attacker-supplied data as
/// simply "not verified".
pub fn verify_bundle_hex<S: AsRef<str>>(sig_hex: &str, key_hex: &str, items: &[S]) -> bool {
    let sig = match Signature::from_hex(sig_hex) {
        Some(s) => s,
        None => return false,
    };
    let key = match PublicKey::from_hex(key_hex) {
        Some(k) => k,
        None => return false,
    };
    verify_bundle(&sig, &key, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn research_bundle() -> [&'static str; 3] {
        [
            "9f2c7a11deadbeef", // exe-hash
            "research-app",
            "block all\npass all with eq(@src[name], research-app) with eq(@dst[name], research-app)",
        ]
    }

    #[test]
    fn bundle_round_trip() {
        let kp = KeyPair::from_seed(b"researcher-alice");
        let sig = sign_bundle(&kp, &research_bundle());
        assert!(verify_bundle(&sig, &kp.public(), &research_bundle()));
    }

    #[test]
    fn any_modified_item_is_rejected() {
        let kp = KeyPair::from_seed(b"researcher-alice");
        let sig = sign_bundle(&kp, &research_bundle());
        let mut tampered = research_bundle();
        tampered[0] = "0000000000000000";
        assert!(!verify_bundle(&sig, &kp.public(), &tampered));
        let mut tampered = research_bundle();
        tampered[1] = "evil-app";
        assert!(!verify_bundle(&sig, &kp.public(), &tampered));
        let mut tampered = research_bundle();
        tampered[2] = "pass all";
        assert!(!verify_bundle(&sig, &kp.public(), &tampered));
    }

    #[test]
    fn item_boundaries_matter() {
        // ["ab","c"] must not verify as ["a","bc"].
        let kp = KeyPair::from_seed(b"boundary");
        let sig = sign_bundle(&kp, &["ab", "c"]);
        assert!(!verify_bundle(&sig, &kp.public(), &["a", "bc"]));
        assert!(verify_bundle(&sig, &kp.public(), &["ab", "c"]));
        // Differing item counts also matter.
        let sig2 = sign_bundle(&kp, &["abc"]);
        assert!(!verify_bundle(&sig2, &kp.public(), &["abc", ""]));
    }

    #[test]
    fn hex_forms_verify() {
        let kp = KeyPair::from_seed(b"Secur");
        let items = ["cafebabe", "thunderbird", "block all\npass from any ..."];
        let sig_hex = sign_bundle_hex(&kp, &items);
        let key_hex = kp.public().to_hex();
        assert!(verify_bundle_hex(&sig_hex, &key_hex, &items));
        assert!(!verify_bundle_hex(&sig_hex, &key_hex, &["x", "y", "z"]));
        assert!(!verify_bundle_hex("nothex", &key_hex, &items));
        assert!(!verify_bundle_hex(&sig_hex, "nothex", &items));
    }

    #[test]
    fn wrong_signer_is_rejected() {
        let secur = KeyPair::from_seed(b"Secur");
        let attacker = KeyPair::from_seed(b"attacker");
        let items = ["cafebabe", "thunderbird", "pass all"];
        let sig = sign_bundle(&attacker, &items);
        assert!(!verify_bundle(&sig, &secur.public(), &items));
    }

    #[test]
    fn canonical_encoding_is_prefixed_and_versioned() {
        let enc = canonical_encoding(&["a"]);
        assert!(enc.starts_with(b"identxx-bundle-v1"));
        assert_ne!(canonical_encoding(&["a"]), canonical_encoding(&["a", ""]));
    }
}
