//! Amortized bundle verification: a sharded, capped LRU of verdicts.
//!
//! A full ed25519 verification costs two scalar multiplications — hundreds of
//! microseconds of curve math. But controllers see the *same* delegation
//! bundle over and over: every flow from the same application presents the
//! identical `(req-sig, key, exe-hash, app-name, requirements)` tuple. The
//! verdict for a given bundle is immutable (a signature either verifies or it
//! doesn't; only the *window* check depends on `now`), so it can be cached by
//! content hash.
//!
//! [`VerifyCache::verify_hex_at`] therefore:
//!
//! 1. parses the signature (raw or windowed form),
//! 2. checks the validity window against `now` — **before** any cache or
//!    curve work, so an expired bundle costs a parse and two compares,
//! 3. hashes `(sig, key, items)` with SHA-256 and looks the digest up in one
//!    of eight lock-sharded maps,
//! 4. on a miss, runs the curve math *outside* the shard lock and inserts the
//!    boolean verdict (negative verdicts are cached too: a forged bundle
//!    replayed a million times should cost a million hashes, not a million
//!    scalar multiplications).
//!
//! A hit costs one SHA-256 of the bundle text plus two integer compares — the
//! "one hash + expiry check" fast path the roadmap asks for. The cache is
//! capped (default [`DEFAULT_VERIFY_CACHE_CAPACITY`]) with oldest-use
//! eviction per shard, and every outcome is counted and optionally recorded
//! as a [`VerifyEvent`] so the controller can attach `verify-cached` /
//! `verify-fresh` / `verify-expired` / `verify-forged` audit notes to the
//! decisions that triggered them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::keys::PublicKey;
use crate::sha256::Sha256;
use crate::signing::{parse_sig_hex, VerifyError};

/// Default total capacity (entries across all shards), matching the flow/state
/// table cap used elsewhere in the controller.
pub const DEFAULT_VERIFY_CACHE_CAPACITY: usize = 1024;

/// Number of lock shards. Eight keeps contention negligible at the
/// controller's worker counts without bloating the per-cache footprint.
const SHARDS: usize = 8;

/// Cap on the pending audit-event buffer; if the controller stops draining,
/// recording stops rather than growing without bound.
const EVENT_BUFFER_CAP: usize = 4096;

/// How a single verification was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Valid signature, verdict served from the cache (no curve math).
    CachedValid,
    /// Valid signature, verified fresh (curve math paid, verdict cached).
    FreshValid,
    /// Validity window ended at or before `now`.
    Expired,
    /// Validity window starts after `now`.
    NotYetValid,
    /// Signature does not verify for the key and data (cached or fresh).
    Forged,
    /// The signature or key string could not be parsed at all.
    Unparseable,
}

impl VerifyOutcome {
    /// Whether the bundle should be treated as valid.
    pub fn is_valid(self) -> bool {
        matches!(self, VerifyOutcome::CachedValid | VerifyOutcome::FreshValid)
    }

    /// The audit-note label for this outcome.
    pub fn as_str(self) -> &'static str {
        match self {
            VerifyOutcome::CachedValid => "verify-cached",
            VerifyOutcome::FreshValid => "verify-fresh",
            VerifyOutcome::Expired => "verify-expired",
            VerifyOutcome::NotYetValid => "verify-not-yet-valid",
            VerifyOutcome::Forged => "verify-forged",
            VerifyOutcome::Unparseable => "verify-unparseable",
        }
    }
}

/// One recorded verification, drained by the controller into audit notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyEvent {
    /// How the verification resolved.
    pub outcome: VerifyOutcome,
    /// The key id the bundle claimed (windowed bundles only).
    pub key_id: Option<String>,
}

/// Counter snapshot, shaped like the controller's other `*_stats()` accessors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyCacheStats {
    /// Verifications answered from the cache. Prewarm lookups are not
    /// counted (their verdicts are served — and counted — by the
    /// evaluations that follow); only the curve math a prewarm miss runs
    /// shows up, under `misses`.
    pub hits: u64,
    /// Lookups that had to run curve math (prewarm misses included — that
    /// work really ran).
    pub misses: u64,
    /// Entries evicted to stay under the capacity cap.
    pub evictions: u64,
    /// Verifications that returned a valid verdict (cached or fresh).
    pub valid: u64,
    /// Bundles rejected because their window had expired.
    pub expired: u64,
    /// Bundles rejected because their window had not started.
    pub not_yet_valid: u64,
    /// Bundles rejected because the signature did not verify.
    pub forged: u64,
    /// Bundles that could not be parsed.
    pub unparseable: u64,
}

/// A cached verdict. `sig_ok` never changes for a given content hash; the
/// window is re-checked on every hit because it depends on `now`.
#[derive(Clone, Copy)]
struct Entry {
    sig_ok: bool,
    /// Last-touched logical tick, for oldest-first eviction.
    tick: u64,
}

struct Shard {
    map: HashMap<[u8; 32], Entry>,
}

/// Sharded, capped cache of bundle-verification verdicts.
pub struct VerifyCache {
    shards: [Mutex<Shard>; SHARDS],
    per_shard_cap: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    valid: AtomicU64,
    expired: AtomicU64,
    not_yet_valid: AtomicU64,
    forged: AtomicU64,
    unparseable: AtomicU64,
    events: Mutex<Vec<VerifyEvent>>,
}

impl VerifyCache {
    /// Creates a cache with the default capacity.
    pub fn new() -> VerifyCache {
        VerifyCache::with_capacity(DEFAULT_VERIFY_CACHE_CAPACITY)
    }

    /// Creates a cache holding at most `capacity` verdicts (split evenly
    /// across the shards; rounded up so a tiny capacity still caches).
    pub fn with_capacity(capacity: usize) -> VerifyCache {
        let per_shard_cap = capacity.div_ceil(SHARDS).max(1);
        VerifyCache {
            shards: std::array::from_fn(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                })
            }),
            per_shard_cap,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            valid: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            not_yet_valid: AtomicU64::new(0),
            forged: AtomicU64::new(0),
            unparseable: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Verifies a bundle at logical time `now`, amortized through the cache,
    /// and records a [`VerifyEvent`] for the controller's audit notes.
    pub fn verify_hex_at<S: AsRef<str>>(
        &self,
        sig_hex: &str,
        key_hex: &str,
        items: &[S],
        now: u64,
    ) -> VerifyOutcome {
        self.verify_inner(sig_hex, key_hex, items, now, true)
    }

    /// Like [`VerifyCache::verify_hex_at`] but without recording an audit
    /// event or outcome/hit counters — used by `decide_batch` to prewarm
    /// distinct bundles before the per-decision evaluations run (the
    /// evaluations record the real events and outcomes). Only the work a
    /// prewarm actually performs is counted: a cache miss's curve math and
    /// any eviction it causes.
    pub fn prewarm_hex_at<S: AsRef<str>>(
        &self,
        sig_hex: &str,
        key_hex: &str,
        items: &[S],
        now: u64,
    ) -> VerifyOutcome {
        self.verify_inner(sig_hex, key_hex, items, now, false)
    }

    fn verify_inner<S: AsRef<str>>(
        &self,
        sig_hex: &str,
        key_hex: &str,
        items: &[S],
        now: u64,
        record: bool,
    ) -> VerifyOutcome {
        let parsed = match parse_sig_hex(sig_hex) {
            Ok(p) => p,
            Err(_) => {
                if record {
                    self.unparseable.fetch_add(1, Ordering::Relaxed);
                    self.record(VerifyOutcome::Unparseable, None);
                }
                return VerifyOutcome::Unparseable;
            }
        };
        let key_id = parsed.key_id().map(|s| s.to_string());
        // Window first: an expired bundle must not cost curve math, and its
        // rejection must not depend on whether it was ever cached.
        if let Some((not_before, not_after)) = parsed.window() {
            if now < not_before {
                if record {
                    self.not_yet_valid.fetch_add(1, Ordering::Relaxed);
                    self.record(VerifyOutcome::NotYetValid, key_id);
                }
                return VerifyOutcome::NotYetValid;
            }
            if now >= not_after {
                if record {
                    self.expired.fetch_add(1, Ordering::Relaxed);
                    self.record(VerifyOutcome::Expired, key_id);
                }
                return VerifyOutcome::Expired;
            }
        }
        let key = match PublicKey::from_hex(key_hex) {
            Some(k) => k,
            None => {
                if record {
                    self.unparseable.fetch_add(1, Ordering::Relaxed);
                    self.record(VerifyOutcome::Unparseable, key_id);
                }
                return VerifyOutcome::Unparseable;
            }
        };

        let digest = cache_key(sig_hex, key_hex, items);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(digest[0] as usize) % SHARDS];

        if let Some(sig_ok) = {
            let mut guard = shard.lock().unwrap();
            guard.map.get_mut(&digest).map(|e| {
                e.tick = tick;
                e.sig_ok
            })
        } {
            let outcome = if sig_ok {
                VerifyOutcome::CachedValid
            } else {
                VerifyOutcome::Forged
            };
            if record {
                self.hits.fetch_add(1, Ordering::Relaxed);
                match outcome {
                    VerifyOutcome::Forged => self.forged.fetch_add(1, Ordering::Relaxed),
                    _ => self.valid.fetch_add(1, Ordering::Relaxed),
                };
                self.record(outcome, key_id);
            }
            return outcome;
        }

        // Miss: run the curve math outside any lock.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let sig_ok = parsed.signature_valid(&key, items);
        {
            let mut guard = shard.lock().unwrap();
            if guard.map.len() >= self.per_shard_cap && !guard.map.contains_key(&digest) {
                // Evict the least recently touched entry in this shard.
                if let Some(oldest) = guard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.tick)
                    .map(|(k, _)| *k)
                {
                    guard.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            guard.map.insert(digest, Entry { sig_ok, tick });
        }
        let outcome = if sig_ok {
            VerifyOutcome::FreshValid
        } else {
            VerifyOutcome::Forged
        };
        if record {
            match outcome {
                VerifyOutcome::Forged => self.forged.fetch_add(1, Ordering::Relaxed),
                _ => self.valid.fetch_add(1, Ordering::Relaxed),
            };
            self.record(outcome, key_id);
        }
        outcome
    }

    fn record(&self, outcome: VerifyOutcome, key_id: Option<String>) {
        let mut events = self.events.lock().unwrap();
        if events.len() < EVENT_BUFFER_CAP {
            events.push(VerifyEvent { outcome, key_id });
        }
    }

    /// Drains the recorded verification events (controller audit plumbing).
    pub fn drain_events(&self) -> Vec<VerifyEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> VerifyCacheStats {
        VerifyCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            valid: self.valid.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            not_yet_valid: self.not_yet_valid.load(Ordering::Relaxed),
            forged: self.forged.load(Ordering::Relaxed),
            unparseable: self.unparseable.load(Ordering::Relaxed),
        }
    }

    /// Number of cached verdicts across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total verdict capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * SHARDS
    }
}

impl Default for VerifyCache {
    fn default() -> Self {
        VerifyCache::new()
    }
}

impl std::fmt::Debug for VerifyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Content hash of a verification request: SHA-256 over the length-prefixed
/// signature hex, key hex, and items, so distinct requests can't collide by
/// concatenation.
fn cache_key<S: AsRef<str>>(sig_hex: &str, key_hex: &str, items: &[S]) -> [u8; 32] {
    let mut h = Sha256::new();
    let mut feed = |bytes: &[u8]| {
        h.update(&(bytes.len() as u64).to_be_bytes());
        h.update(bytes);
    };
    feed(sig_hex.as_bytes());
    feed(key_hex.as_bytes());
    h.update(&(items.len() as u64).to_be_bytes());
    for item in items {
        let bytes = item.as_ref().as_bytes();
        h.update(&(bytes.len() as u64).to_be_bytes());
        h.update(bytes);
    }
    h.finalize()
}

impl From<&VerifyError> for VerifyOutcome {
    fn from(err: &VerifyError) -> VerifyOutcome {
        match err {
            VerifyError::Unparseable(_) | VerifyError::MalformedPublicKey(_) => {
                VerifyOutcome::Unparseable
            }
            VerifyError::NotYetValid { .. } => VerifyOutcome::NotYetValid,
            VerifyError::Expired { .. } => VerifyOutcome::Expired,
            VerifyError::Forged => VerifyOutcome::Forged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use crate::signing::{sign_bundle_hex, sign_bundle_windowed};

    fn kp() -> KeyPair {
        KeyPair::from_seed(b"cache-tests")
    }

    #[test]
    fn second_lookup_hits_the_cache() {
        let cache = VerifyCache::new();
        let items = ["h", "app", "pass all"];
        let sig = sign_bundle_hex(&kp(), &items);
        let key = kp().public().to_hex();
        assert_eq!(
            cache.verify_hex_at(&sig, &key, &items, 0),
            VerifyOutcome::FreshValid
        );
        assert_eq!(
            cache.verify_hex_at(&sig, &key, &items, 0),
            VerifyOutcome::CachedValid
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.valid, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn forged_verdicts_are_cached_and_stay_forged() {
        let cache = VerifyCache::new();
        let items = ["h", "app", "pass all"];
        let sig = sign_bundle_hex(&kp(), &items);
        let key = kp().public().to_hex();
        let tampered = ["h", "app", "block all"];
        assert_eq!(
            cache.verify_hex_at(&sig, &key, &tampered, 0),
            VerifyOutcome::Forged
        );
        assert_eq!(
            cache.verify_hex_at(&sig, &key, &tampered, 0),
            VerifyOutcome::Forged
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "forged verdict should be cached too");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.forged, 2);
    }

    #[test]
    fn window_is_checked_before_the_cache() {
        let cache = VerifyCache::new();
        let items = ["h", "app", "pass all"];
        let bundle = sign_bundle_windowed(&kp(), "k", 100, 200, &items);
        let hex = bundle.to_hex();
        let key = kp().public().to_hex();
        // Warm the cache inside the window.
        assert_eq!(
            cache.verify_hex_at(&hex, &key, &items, 150),
            VerifyOutcome::FreshValid
        );
        assert_eq!(
            cache.verify_hex_at(&hex, &key, &items, 150),
            VerifyOutcome::CachedValid
        );
        // The cached verdict must NOT outlive the window.
        assert_eq!(
            cache.verify_hex_at(&hex, &key, &items, 200),
            VerifyOutcome::Expired
        );
        assert_eq!(
            cache.verify_hex_at(&hex, &key, &items, 50),
            VerifyOutcome::NotYetValid
        );
        let stats = cache.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.not_yet_valid, 1);
    }

    #[test]
    fn unparseable_is_distinguished_and_uncached() {
        let cache = VerifyCache::new();
        let key = kp().public().to_hex();
        assert_eq!(
            cache.verify_hex_at("zz-not-hex", &key, &["a"], 0),
            VerifyOutcome::Unparseable
        );
        let sig = sign_bundle_hex(&kp(), &["a"]);
        assert_eq!(
            cache.verify_hex_at(&sig, "zz-not-hex", &["a"], 0),
            VerifyOutcome::Unparseable
        );
        assert_eq!(cache.stats().unparseable, 2);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn capacity_is_enforced_with_eviction() {
        let cache = VerifyCache::with_capacity(16);
        assert_eq!(cache.capacity(), 16);
        let key = kp().public().to_hex();
        for i in 0..64 {
            let items = [format!("item-{i}")];
            let sig = sign_bundle_hex(&kp(), &items);
            cache.verify_hex_at(&sig, &key, &items, 0);
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn events_record_outcomes_and_key_ids() {
        let cache = VerifyCache::new();
        let items = ["h", "app", "pass all"];
        let bundle = sign_bundle_windowed(&kp(), "secur", 0, 100, &items);
        let key = kp().public().to_hex();
        cache.verify_hex_at(&bundle.to_hex(), &key, &items, 10);
        cache.verify_hex_at(&bundle.to_hex(), &key, &items, 10);
        cache.verify_hex_at(&bundle.to_hex(), &key, &items, 100);
        let events = cache.drain_events();
        assert_eq!(
            events.iter().map(|e| e.outcome).collect::<Vec<_>>(),
            vec![
                VerifyOutcome::FreshValid,
                VerifyOutcome::CachedValid,
                VerifyOutcome::Expired
            ]
        );
        assert!(events.iter().all(|e| e.key_id.as_deref() == Some("secur")));
        // Drained: buffer is empty now.
        assert!(cache.drain_events().is_empty());
    }

    #[test]
    fn prewarm_does_not_record_events() {
        let cache = VerifyCache::new();
        let items = ["h"];
        let sig = sign_bundle_hex(&kp(), &items);
        let key = kp().public().to_hex();
        assert_eq!(
            cache.prewarm_hex_at(&sig, &key, &items, 0),
            VerifyOutcome::FreshValid
        );
        assert!(cache.drain_events().is_empty());
        // But the verdict is cached for the real lookup.
        assert_eq!(
            cache.verify_hex_at(&sig, &key, &items, 0),
            VerifyOutcome::CachedValid
        );
    }

    #[test]
    fn outcome_labels_match_audit_notes() {
        assert_eq!(VerifyOutcome::CachedValid.as_str(), "verify-cached");
        assert_eq!(VerifyOutcome::FreshValid.as_str(), "verify-fresh");
        assert_eq!(VerifyOutcome::Expired.as_str(), "verify-expired");
        assert_eq!(VerifyOutcome::Forged.as_str(), "verify-forged");
        assert!(VerifyOutcome::CachedValid.is_valid());
        assert!(!VerifyOutcome::Expired.is_valid());
    }
}
