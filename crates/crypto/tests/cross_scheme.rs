//! Cross-scheme equivalence: the legacy toy Schnorr scheme and the real
//! ed25519 scheme must agree on which bundles they accept and which tampered
//! variants they reject. This is the only place the toy scheme is still
//! exercised; it compiles only under the `legacy-toy` feature
//! (`cargo test -p identxx-crypto --features legacy-toy`).
#![cfg(feature = "legacy-toy")]

use identxx_crypto::signing::canonical_encoding;
use identxx_crypto::{ed25519, schnorr, KeyPair};

/// A tamper suite: the original bundle plus every single-item mutation,
/// item-boundary shift, and truncation/extension we check signatures against.
fn tamper_suite() -> Vec<(&'static str, Vec<String>)> {
    let original = vec![
        "9f2c7a11deadbeef".to_string(),
        "research-app".to_string(),
        "block all\npass all with eq(@src[name], research-app)".to_string(),
    ];
    let mut suite = vec![("original", original.clone())];
    for (i, label) in [
        (0usize, "tampered-exe-hash"),
        (1, "tampered-app-name"),
        (2, "tampered-requirements"),
    ] {
        let mut v = original.clone();
        v[i].push('x');
        suite.push((label, v));
    }
    // Item-boundary shift: move the last char of item 0 onto item 1.
    let mut shifted = original.clone();
    let c = shifted[0].pop().unwrap();
    shifted[1].insert(0, c);
    suite.push(("boundary-shift", shifted));
    // Dropped and appended items.
    suite.push(("dropped-item", original[..2].to_vec()));
    let mut extended = original.clone();
    extended.push(String::new());
    suite.push(("appended-empty-item", extended));
    suite
}

#[test]
fn toy_and_ed25519_agree_on_the_tamper_suite() {
    let suite = tamper_suite();
    let (_, original) = &suite[0];

    // Sign the original bundle's canonical encoding under both schemes.
    let toy_secret = 0x5eed_u64;
    let toy_public = schnorr::public_key(toy_secret);
    let toy_sig = schnorr::sign(toy_secret, &canonical_encoding(original));

    let kp = KeyPair::from_seed(b"cross-scheme");
    let ed_sig = kp.sign(&canonical_encoding(original));

    for (label, items) in &suite {
        let enc = canonical_encoding(items);
        let toy_ok = schnorr::verify(toy_public, &enc, &toy_sig);
        let ed_ok = ed25519::verify(kp.public().as_bytes(), &enc, &ed_sig);
        let expect = *label == "original";
        assert_eq!(toy_ok, expect, "toy scheme disagrees on {label}");
        assert_eq!(ed_ok, expect, "ed25519 disagrees on {label}");
    }
}

#[test]
fn both_schemes_reject_wrong_keys() {
    let msg = canonical_encoding(&["a", "b"]);

    let toy_sig = schnorr::sign(7, &msg);
    assert!(schnorr::verify(schnorr::public_key(7), &msg, &toy_sig));
    assert!(!schnorr::verify(schnorr::public_key(8), &msg, &toy_sig));

    let kp = KeyPair::from_seed(b"right");
    let other = KeyPair::from_seed(b"wrong");
    let ed_sig = kp.sign(&msg);
    assert!(ed25519::verify(kp.public().as_bytes(), &msg, &ed_sig));
    assert!(!ed25519::verify(other.public().as_bytes(), &msg, &ed_sig));
}
