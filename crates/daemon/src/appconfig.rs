//! `@app` daemon configuration blocks.
//!
//! The daemon's configuration files (Fig. 3, 4 and 6 of the paper) consist of
//! blocks keyed by executable path:
//!
//! ```text
//! @app /usr/bin/skype {
//!     name : skype
//!     version : 210
//!     vendor : skype.com
//!     type : voip
//!     requirements : \
//!         pass from any port http \
//!             with eq(@src[name], skype) \
//!         pass from any port https \
//!             with eq(@src[name], skype)
//!     req-sig : 21oir...w3eda
//! }
//! ```
//!
//! A trailing backslash continues the value onto the next line (so the
//! multi-rule `requirements` value stays a single key). The pairs of the block
//! matching a flow's executable are added, in file order, to the daemon's
//! response.

use identxx_crypto::{sign_bundle_hex, sign_bundle_windowed, KeyPair};
use identxx_hostmodel::Executable;

use crate::error::DaemonError;

/// One `@app` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppConfig {
    /// The executable path the block applies to.
    pub exe_path: String,
    /// The key-value pairs, in file order.
    pub pairs: Vec<(String, String)>,
}

impl AppConfig {
    /// Creates an empty block for an executable path.
    pub fn new(exe_path: impl Into<String>) -> AppConfig {
        AppConfig {
            exe_path: exe_path.into(),
            pairs: Vec::new(),
        }
    }

    /// Adds a pair (builder style).
    pub fn with_pair(mut self, key: impl Into<String>, value: impl Into<String>) -> AppConfig {
        self.pairs.push((key.into(), value.into()));
        self
    }

    /// Looks up the last value for a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders the block back into the configuration-file syntax.
    pub fn render(&self) -> String {
        let mut out = format!("@app {} {{\n", self.exe_path);
        for (k, v) in &self.pairs {
            if v.contains('\n') {
                let folded = v.replace('\n', " \\\n    ");
                out.push_str(&format!("{k} : \\\n    {folded}\n"));
            } else {
                out.push_str(&format!("{k} : {v}\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Parses every `@app` block from a configuration file's text.
pub fn parse_app_configs(text: &str) -> Result<Vec<AppConfig>, DaemonError> {
    // Fold line continuations first, tracking original line numbers.
    let mut folded: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim_end();
        let (content, continues) = match line.strip_suffix('\\') {
            Some(rest) => (rest.trim_end(), true),
            None => (line, false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                if !content.trim().is_empty() {
                    if !acc.is_empty() {
                        acc.push('\n');
                    }
                    acc.push_str(content.trim_start());
                }
                if continues {
                    pending = Some((start, acc));
                } else {
                    folded.push((start, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((line_no, content.to_string()));
                } else {
                    folded.push((line_no, content.to_string()));
                }
            }
        }
    }
    if let Some((line, acc)) = pending {
        folded.push((line, acc));
    }

    let mut configs = Vec::new();
    let mut current: Option<AppConfig> = None;
    for (line_no, line) in folded {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("@app") {
            if current.is_some() {
                return Err(DaemonError::BadConfig {
                    line: line_no,
                    message: "nested @app block".to_string(),
                });
            }
            let rest = rest.trim();
            let path = rest.trim_end_matches('{').trim();
            if path.is_empty() || !rest.ends_with('{') {
                return Err(DaemonError::BadConfig {
                    line: line_no,
                    message: "expected `@app <path> {`".to_string(),
                });
            }
            current = Some(AppConfig::new(path));
            continue;
        }
        if trimmed == "}" {
            match current.take() {
                Some(config) => configs.push(config),
                None => {
                    return Err(DaemonError::BadConfig {
                        line: line_no,
                        message: "unmatched '}'".to_string(),
                    })
                }
            }
            continue;
        }
        match current.as_mut() {
            Some(config) => {
                // `key : value` — the key never contains ':', values may.
                let (key, value) = trimmed.split_once(':').ok_or(DaemonError::BadConfig {
                    line: line_no,
                    message: format!("expected `key : value`, found {trimmed:?}"),
                })?;
                config
                    .pairs
                    .push((key.trim().to_string(), value.trim().to_string()));
            }
            None => {
                return Err(DaemonError::BadConfig {
                    line: line_no,
                    message: format!("text outside an @app block: {trimmed:?}"),
                })
            }
        }
    }
    if current.is_some() {
        return Err(DaemonError::BadConfig {
            line: 0,
            message: "unterminated @app block".to_string(),
        });
    }
    Ok(configs)
}

/// Builds a *signed* `@app` block for an executable: the requirements are
/// bound to the executable's name and content hash with the signer's key, as
/// the research-application (Fig. 4) and Secur (Fig. 6) examples do.
///
/// `rule_maker` is recorded under the `rule-maker` key when given (the Secur
/// pattern); the signature is always placed under `req-sig`.
pub fn signed_app_config(
    exe: &Executable,
    requirements: &str,
    signer: &KeyPair,
    rule_maker: Option<&str>,
) -> AppConfig {
    let exe_hash = exe.content_hash();
    let sig = sign_bundle_hex(
        signer,
        &[exe_hash.as_str(), exe.name.as_str(), requirements],
    );
    app_config_with_sig(exe, requirements, rule_maker, sig)
}

/// [`signed_app_config`] with a **bounded lifetime**: the `req-sig` value is
/// a windowed bundle naming `key_id` and valid for
/// `not_before <= now < not_after` on the controller's logical clock. A
/// stolen or leaked block stops working on its own once the window closes —
/// the delegation has to be actively renewed (see [`resign_app_config`])
/// rather than actively revoked.
///
/// # Panics
///
/// Panics when `not_before >= not_after` (an empty window would mint a
/// bundle no controller ever accepts — always an issuer bug, never input).
pub fn signed_app_config_windowed(
    exe: &Executable,
    requirements: &str,
    signer: &KeyPair,
    key_id: &str,
    not_before: u64,
    not_after: u64,
    rule_maker: Option<&str>,
) -> AppConfig {
    assert!(
        not_before < not_after,
        "empty validity window [{not_before}, {not_after})"
    );
    let exe_hash = exe.content_hash();
    let bundle = sign_bundle_windowed(
        signer,
        key_id,
        not_before,
        not_after,
        &[exe_hash.as_str(), exe.name.as_str(), requirements],
    );
    app_config_with_sig(exe, requirements, rule_maker, bundle.to_hex())
}

/// Rolls an `@app` block's delegation over to a fresh validity window: the
/// existing `requirements` value is re-signed (the rules themselves don't
/// change — only the window and possibly the key), and every `req-sig` pair
/// is replaced with the new bundle. This is the expiry-rollover path an
/// issuer runs on a timer; it errors when the block carries no
/// `requirements` to re-sign.
///
/// # Panics
///
/// Panics when `not_before >= not_after`, like
/// [`signed_app_config_windowed`].
pub fn resign_app_config(
    config: &mut AppConfig,
    exe: &Executable,
    signer: &KeyPair,
    key_id: &str,
    not_before: u64,
    not_after: u64,
) -> Result<(), DaemonError> {
    assert!(
        not_before < not_after,
        "empty validity window [{not_before}, {not_after})"
    );
    let requirements = config
        .get("requirements")
        .ok_or_else(|| DaemonError::BadConfig {
            line: 0,
            message: format!("@app {} has no requirements to re-sign", config.exe_path),
        })?
        .to_string();
    let exe_hash = exe.content_hash();
    let bundle = sign_bundle_windowed(
        signer,
        key_id,
        not_before,
        not_after,
        &[exe_hash.as_str(), exe.name.as_str(), requirements.as_str()],
    );
    let hex = bundle.to_hex();
    let mut replaced = false;
    for (k, v) in &mut config.pairs {
        if k == "req-sig" {
            *v = hex.clone();
            replaced = true;
        }
    }
    if !replaced {
        config.pairs.push(("req-sig".to_string(), hex));
    }
    Ok(())
}

/// The shared tail of the `signed_app_config*` constructors: the standard
/// identity pairs, the optional rule-maker, and the signature.
fn app_config_with_sig(
    exe: &Executable,
    requirements: &str,
    rule_maker: Option<&str>,
    sig: String,
) -> AppConfig {
    let mut config = AppConfig::new(&exe.path)
        .with_pair("name", &exe.name)
        .with_pair("version", exe.version.to_string())
        .with_pair("vendor", &exe.vendor)
        .with_pair("type", &exe.app_type);
    if let Some(maker) = rule_maker {
        config = config.with_pair("rule-maker", maker);
    }
    config
        .with_pair("requirements", requirements)
        .with_pair("req-sig", sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_crypto::verify_bundle_hex;

    const SKYPE_CONFIG: &str = r#"
@app /usr/bin/skype {
name : skype
version : 210
vendor : skype.com
type : voip
requirements : \
pass from any port http \
with eq(@src[name], skype) \
pass from any port https \
with eq(@src[name], skype)
req-sig : 21oirw3eda
}
"#;

    #[test]
    fn parses_figure3_skype_block() {
        let configs = parse_app_configs(SKYPE_CONFIG).unwrap();
        assert_eq!(configs.len(), 1);
        let skype = &configs[0];
        assert_eq!(skype.exe_path, "/usr/bin/skype");
        assert_eq!(skype.get("name"), Some("skype"));
        assert_eq!(skype.get("version"), Some("210"));
        assert_eq!(skype.get("type"), Some("voip"));
        assert_eq!(skype.get("req-sig"), Some("21oirw3eda"));
        let requirements = skype.get("requirements").unwrap();
        assert!(requirements.contains("pass from any port http"));
        assert!(requirements.contains("pass from any port https"));
        // The folded requirements parse as PF+=2.
        assert!(identxx_pf::parse_ruleset(requirements).is_ok());
    }

    #[test]
    fn parses_multiple_blocks_and_comments() {
        let text = r#"
# research application policy
@app /usr/bin/research-app {
name : research-app
requirements : block all
}

@app /usr/bin/thunderbird {
name : thunderbird
type : email-client
rule-maker : Secur
}
"#;
        let configs = parse_app_configs(text).unwrap();
        assert_eq!(configs.len(), 2);
        assert_eq!(configs[1].get("rule-maker"), Some("Secur"));
    }

    #[test]
    fn malformed_blocks_are_rejected() {
        assert!(parse_app_configs("@app {\n}").is_err());
        assert!(parse_app_configs("@app /usr/bin/x\nname : x\n}").is_err());
        assert!(parse_app_configs("@app /usr/bin/x {\nname x\n}").is_err());
        assert!(parse_app_configs("name : x\n").is_err());
        assert!(parse_app_configs("@app /usr/bin/x {\nname : x\n").is_err());
        assert!(parse_app_configs("}").is_err());
        assert!(parse_app_configs("@app /a {\n@app /b {\n}\n}").is_err());
    }

    #[test]
    fn empty_input_is_ok() {
        assert_eq!(parse_app_configs("").unwrap().len(), 0);
        assert_eq!(parse_app_configs("# only a comment\n").unwrap().len(), 0);
    }

    #[test]
    fn render_round_trips() {
        let configs = parse_app_configs(SKYPE_CONFIG).unwrap();
        let rendered = configs[0].render();
        let reparsed = parse_app_configs(&rendered).unwrap();
        assert_eq!(reparsed.len(), 1);
        assert_eq!(reparsed[0].get("name"), Some("skype"));
        assert_eq!(
            reparsed[0]
                .get("requirements")
                .map(|r| r.replace('\n', " ")),
            configs[0].get("requirements").map(|r| r.replace('\n', " "))
        );
    }

    #[test]
    fn signed_config_verifies_against_signer() {
        let exe = Executable::new(
            "/usr/bin/research-app",
            "research-app",
            1,
            "lab",
            "research",
        );
        let researcher = KeyPair::from_seed(b"alice-research-key");
        let requirements = "block all\npass all with eq(@src[name], research-app) with eq(@dst[name], research-app)";
        let config = signed_app_config(&exe, requirements, &researcher, None);
        assert_eq!(config.get("name"), Some("research-app"));
        let sig = config.get("req-sig").unwrap();
        assert!(verify_bundle_hex(
            sig,
            &researcher.public().to_hex(),
            &[exe.content_hash().as_str(), "research-app", requirements]
        ));
        // Rule-maker appears only when requested.
        assert_eq!(config.get("rule-maker"), None);
        let secur = KeyPair::from_seed(b"Secur");
        let with_maker = signed_app_config(&exe, requirements, &secur, Some("Secur"));
        assert_eq!(with_maker.get("rule-maker"), Some("Secur"));
    }

    #[test]
    fn windowed_config_expires_and_names_its_key() {
        use identxx_crypto::{verify_bundle_hex_at, SignedBundle};

        let exe = Executable::new(
            "/usr/bin/research-app",
            "research-app",
            1,
            "lab",
            "research",
        );
        let secur = KeyPair::from_seed(b"Secur");
        let requirements = "block all\npass all with eq(@src[name], research-app)";
        let config = signed_app_config_windowed(
            &exe,
            requirements,
            &secur,
            "Secur",
            1_000,
            2_000,
            Some("Secur"),
        );
        let sig = config.get("req-sig").unwrap();
        // The bundle names its key and window on the wire.
        let bundle = SignedBundle::from_hex(sig).unwrap();
        assert_eq!(bundle.key_id, "Secur");
        assert_eq!((bundle.not_before, bundle.not_after), (1_000, 2_000));
        let key = secur.public().to_hex();
        let items = [
            exe.content_hash(),
            "research-app".to_string(),
            requirements.to_string(),
        ];
        // Valid strictly inside the window, rejected on either side.
        assert!(verify_bundle_hex_at(sig, &key, &items, 1_000).is_ok());
        assert!(verify_bundle_hex_at(sig, &key, &items, 1_999).is_ok());
        assert!(verify_bundle_hex_at(sig, &key, &items, 999).is_err());
        assert!(verify_bundle_hex_at(sig, &key, &items, 2_000).is_err());
        // The windowed block still parses back from its rendered form.
        let reparsed = parse_app_configs(&config.render()).unwrap();
        assert_eq!(reparsed[0].get("req-sig"), Some(sig));
    }

    #[test]
    fn resigning_rolls_the_window_forward() {
        use identxx_crypto::{verify_bundle_hex_at, SignedBundle};

        let exe = Executable::new(
            "/usr/bin/research-app",
            "research-app",
            1,
            "lab",
            "research",
        );
        let secur = KeyPair::from_seed(b"Secur");
        let requirements = "block all";
        let mut config =
            signed_app_config_windowed(&exe, requirements, &secur, "Secur", 0, 1_000, None);
        let key = secur.public().to_hex();
        let items = [
            exe.content_hash(),
            "research-app".to_string(),
            requirements.to_string(),
        ];
        let old_sig = config.get("req-sig").unwrap().to_string();
        assert!(verify_bundle_hex_at(&old_sig, &key, &items, 1_500).is_err());
        // Roll the delegation over; the rules are unchanged, the window new.
        resign_app_config(&mut config, &exe, &secur, "Secur", 1_000, 2_000).unwrap();
        let new_sig = config.get("req-sig").unwrap();
        assert_ne!(new_sig, old_sig);
        assert!(verify_bundle_hex_at(new_sig, &key, &items, 1_500).is_ok());
        assert_eq!(SignedBundle::from_hex(new_sig).unwrap().not_after, 2_000);
        // Exactly one req-sig pair remains.
        assert_eq!(
            config.pairs.iter().filter(|(k, _)| k == "req-sig").count(),
            1
        );
        // A block with no requirements cannot be re-signed.
        let mut bare = AppConfig::new("/usr/bin/x").with_pair("name", "x");
        assert!(resign_app_config(&mut bare, &exe, &secur, "Secur", 0, 10).is_err());
    }

    #[test]
    #[should_panic(expected = "empty validity window")]
    fn empty_window_is_an_issuer_bug() {
        let exe = Executable::new("/usr/bin/x", "x", 1, "v", "t");
        let signer = KeyPair::from_seed(b"k");
        let _ = signed_app_config_windowed(&exe, "block all", &signer, "k", 5, 5, None);
    }
}
