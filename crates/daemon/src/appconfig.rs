//! `@app` daemon configuration blocks.
//!
//! The daemon's configuration files (Fig. 3, 4 and 6 of the paper) consist of
//! blocks keyed by executable path:
//!
//! ```text
//! @app /usr/bin/skype {
//!     name : skype
//!     version : 210
//!     vendor : skype.com
//!     type : voip
//!     requirements : \
//!         pass from any port http \
//!             with eq(@src[name], skype) \
//!         pass from any port https \
//!             with eq(@src[name], skype)
//!     req-sig : 21oir...w3eda
//! }
//! ```
//!
//! A trailing backslash continues the value onto the next line (so the
//! multi-rule `requirements` value stays a single key). The pairs of the block
//! matching a flow's executable are added, in file order, to the daemon's
//! response.

use identxx_crypto::{sign_bundle_hex, KeyPair};
use identxx_hostmodel::Executable;

use crate::error::DaemonError;

/// One `@app` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppConfig {
    /// The executable path the block applies to.
    pub exe_path: String,
    /// The key-value pairs, in file order.
    pub pairs: Vec<(String, String)>,
}

impl AppConfig {
    /// Creates an empty block for an executable path.
    pub fn new(exe_path: impl Into<String>) -> AppConfig {
        AppConfig {
            exe_path: exe_path.into(),
            pairs: Vec::new(),
        }
    }

    /// Adds a pair (builder style).
    pub fn with_pair(mut self, key: impl Into<String>, value: impl Into<String>) -> AppConfig {
        self.pairs.push((key.into(), value.into()));
        self
    }

    /// Looks up the last value for a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders the block back into the configuration-file syntax.
    pub fn render(&self) -> String {
        let mut out = format!("@app {} {{\n", self.exe_path);
        for (k, v) in &self.pairs {
            if v.contains('\n') {
                let folded = v.replace('\n', " \\\n    ");
                out.push_str(&format!("{k} : \\\n    {folded}\n"));
            } else {
                out.push_str(&format!("{k} : {v}\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Parses every `@app` block from a configuration file's text.
pub fn parse_app_configs(text: &str) -> Result<Vec<AppConfig>, DaemonError> {
    // Fold line continuations first, tracking original line numbers.
    let mut folded: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim_end();
        let (content, continues) = match line.strip_suffix('\\') {
            Some(rest) => (rest.trim_end(), true),
            None => (line, false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                if !content.trim().is_empty() {
                    if !acc.is_empty() {
                        acc.push('\n');
                    }
                    acc.push_str(content.trim_start());
                }
                if continues {
                    pending = Some((start, acc));
                } else {
                    folded.push((start, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((line_no, content.to_string()));
                } else {
                    folded.push((line_no, content.to_string()));
                }
            }
        }
    }
    if let Some((line, acc)) = pending {
        folded.push((line, acc));
    }

    let mut configs = Vec::new();
    let mut current: Option<AppConfig> = None;
    for (line_no, line) in folded {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("@app") {
            if current.is_some() {
                return Err(DaemonError::BadConfig {
                    line: line_no,
                    message: "nested @app block".to_string(),
                });
            }
            let rest = rest.trim();
            let path = rest.trim_end_matches('{').trim();
            if path.is_empty() || !rest.ends_with('{') {
                return Err(DaemonError::BadConfig {
                    line: line_no,
                    message: "expected `@app <path> {`".to_string(),
                });
            }
            current = Some(AppConfig::new(path));
            continue;
        }
        if trimmed == "}" {
            match current.take() {
                Some(config) => configs.push(config),
                None => {
                    return Err(DaemonError::BadConfig {
                        line: line_no,
                        message: "unmatched '}'".to_string(),
                    })
                }
            }
            continue;
        }
        match current.as_mut() {
            Some(config) => {
                // `key : value` — the key never contains ':', values may.
                let (key, value) = trimmed.split_once(':').ok_or(DaemonError::BadConfig {
                    line: line_no,
                    message: format!("expected `key : value`, found {trimmed:?}"),
                })?;
                config
                    .pairs
                    .push((key.trim().to_string(), value.trim().to_string()));
            }
            None => {
                return Err(DaemonError::BadConfig {
                    line: line_no,
                    message: format!("text outside an @app block: {trimmed:?}"),
                })
            }
        }
    }
    if current.is_some() {
        return Err(DaemonError::BadConfig {
            line: 0,
            message: "unterminated @app block".to_string(),
        });
    }
    Ok(configs)
}

/// Builds a *signed* `@app` block for an executable: the requirements are
/// bound to the executable's name and content hash with the signer's key, as
/// the research-application (Fig. 4) and Secur (Fig. 6) examples do.
///
/// `rule_maker` is recorded under the `rule-maker` key when given (the Secur
/// pattern); the signature is always placed under `req-sig`.
pub fn signed_app_config(
    exe: &Executable,
    requirements: &str,
    signer: &KeyPair,
    rule_maker: Option<&str>,
) -> AppConfig {
    let exe_hash = exe.content_hash();
    let sig = sign_bundle_hex(
        signer,
        &[exe_hash.as_str(), exe.name.as_str(), requirements],
    );
    let mut config = AppConfig::new(&exe.path)
        .with_pair("name", &exe.name)
        .with_pair("version", exe.version.to_string())
        .with_pair("vendor", &exe.vendor)
        .with_pair("type", &exe.app_type);
    if let Some(maker) = rule_maker {
        config = config.with_pair("rule-maker", maker);
    }
    config
        .with_pair("requirements", requirements)
        .with_pair("req-sig", sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_crypto::verify_bundle_hex;

    const SKYPE_CONFIG: &str = r#"
@app /usr/bin/skype {
name : skype
version : 210
vendor : skype.com
type : voip
requirements : \
pass from any port http \
with eq(@src[name], skype) \
pass from any port https \
with eq(@src[name], skype)
req-sig : 21oirw3eda
}
"#;

    #[test]
    fn parses_figure3_skype_block() {
        let configs = parse_app_configs(SKYPE_CONFIG).unwrap();
        assert_eq!(configs.len(), 1);
        let skype = &configs[0];
        assert_eq!(skype.exe_path, "/usr/bin/skype");
        assert_eq!(skype.get("name"), Some("skype"));
        assert_eq!(skype.get("version"), Some("210"));
        assert_eq!(skype.get("type"), Some("voip"));
        assert_eq!(skype.get("req-sig"), Some("21oirw3eda"));
        let requirements = skype.get("requirements").unwrap();
        assert!(requirements.contains("pass from any port http"));
        assert!(requirements.contains("pass from any port https"));
        // The folded requirements parse as PF+=2.
        assert!(identxx_pf::parse_ruleset(requirements).is_ok());
    }

    #[test]
    fn parses_multiple_blocks_and_comments() {
        let text = r#"
# research application policy
@app /usr/bin/research-app {
name : research-app
requirements : block all
}

@app /usr/bin/thunderbird {
name : thunderbird
type : email-client
rule-maker : Secur
}
"#;
        let configs = parse_app_configs(text).unwrap();
        assert_eq!(configs.len(), 2);
        assert_eq!(configs[1].get("rule-maker"), Some("Secur"));
    }

    #[test]
    fn malformed_blocks_are_rejected() {
        assert!(parse_app_configs("@app {\n}").is_err());
        assert!(parse_app_configs("@app /usr/bin/x\nname : x\n}").is_err());
        assert!(parse_app_configs("@app /usr/bin/x {\nname x\n}").is_err());
        assert!(parse_app_configs("name : x\n").is_err());
        assert!(parse_app_configs("@app /usr/bin/x {\nname : x\n").is_err());
        assert!(parse_app_configs("}").is_err());
        assert!(parse_app_configs("@app /a {\n@app /b {\n}\n}").is_err());
    }

    #[test]
    fn empty_input_is_ok() {
        assert_eq!(parse_app_configs("").unwrap().len(), 0);
        assert_eq!(parse_app_configs("# only a comment\n").unwrap().len(), 0);
    }

    #[test]
    fn render_round_trips() {
        let configs = parse_app_configs(SKYPE_CONFIG).unwrap();
        let rendered = configs[0].render();
        let reparsed = parse_app_configs(&rendered).unwrap();
        assert_eq!(reparsed.len(), 1);
        assert_eq!(reparsed[0].get("name"), Some("skype"));
        assert_eq!(
            reparsed[0]
                .get("requirements")
                .map(|r| r.replace('\n', " ")),
            configs[0].get("requirements").map(|r| r.replace('\n', " "))
        );
    }

    #[test]
    fn signed_config_verifies_against_signer() {
        let exe = Executable::new(
            "/usr/bin/research-app",
            "research-app",
            1,
            "lab",
            "research",
        );
        let researcher = KeyPair::from_seed(b"alice-research-key");
        let requirements = "block all\npass all with eq(@src[name], research-app) with eq(@dst[name], research-app)";
        let config = signed_app_config(&exe, requirements, &researcher, None);
        assert_eq!(config.get("name"), Some("research-app"));
        let sig = config.get("req-sig").unwrap();
        assert!(verify_bundle_hex(
            sig,
            &researcher.public().to_hex(),
            &[exe.content_hash().as_str(), "research-app", requirements]
        ));
        // Rule-maker appears only when requested.
        assert_eq!(config.get("rule-maker"), None);
        let secur = KeyPair::from_seed(b"Secur");
        let with_maker = signed_app_config(&exe, requirements, &secur, Some("Secur"));
        assert_eq!(with_maker.get("rule-maker"), Some("Secur"));
    }
}
