//! Deterministic daemon-population churn schedules.
//!
//! E12 already churns *availability* (silence windows over a fixed
//! population, [`crate::fault`]); the sustained-load harness churns the
//! **population itself**: daemons arrive and depart mid-run, the way hosts
//! join and leave a real enterprise network. Like the fault layer, the
//! schedule is pure data on a logical microsecond clock — no wall clock, no
//! shared RNG — so a run with the same [`ChurnPlan`] replays the same
//! arrivals and departures at the same points in the flow stream, and churn
//! tests can assert decision identity across replays.
//!
//! The plan says *when* and *how many*; the driver owns *who*. Departures
//! are picked from the live population with the schedule's own deterministic
//! [`ChurnSchedule::pick`] draw, and arrivals are minted by the driver
//! (fresh addresses, fresh daemons). Splitting it this way keeps the plan
//! independent of any directory type: the E11 harness applies it to the
//! shard tier's shared [`DaemonDirectory`], tests apply it to plain vectors.
//!
//! [`DaemonDirectory`]: ../identxx_controller/querier/struct.DaemonDirectory.html

use crate::fault::Window;

/// A deterministic arrival/departure schedule: every `interval_micros` of
/// logical time inside `active`, `arrivals` new daemons join and
/// `departures` live ones leave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Logical microseconds between churn ticks.
    pub interval_micros: u64,
    /// Daemons arriving per tick.
    pub arrivals: usize,
    /// Daemons departing per tick.
    pub departures: usize,
    /// The window of logical time during which the plan is active.
    pub active: Window,
    /// Seed for the departure-pick stream.
    pub seed: u64,
}

impl ChurnPlan {
    /// A steady plan: `arrivals`/`departures` every `interval_micros`, for
    /// the whole run.
    pub fn steady(interval_micros: u64, arrivals: usize, departures: usize) -> ChurnPlan {
        assert!(interval_micros > 0, "churn interval must be positive");
        ChurnPlan {
            interval_micros,
            arrivals,
            departures,
            active: Window::always(),
            seed: 0xC4A2_11E5,
        }
    }

    /// The same plan restricted to a window of logical time.
    pub fn within(mut self, active: Window) -> ChurnPlan {
        self.active = active;
        self
    }

    /// The same plan with a different pick seed.
    pub fn with_seed(mut self, seed: u64) -> ChurnPlan {
        self.seed = seed;
        self
    }

    /// Compiles the plan into a replayable schedule.
    pub fn schedule(&self) -> ChurnSchedule {
        ChurnSchedule {
            plan: *self,
            next_tick: self.interval_micros,
            rng: self.seed | 1,
        }
    }
}

/// One due churn tick: at logical time `at`, apply `arrivals` joins and
/// `departures` leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnTick {
    /// The logical microsecond the tick fires at.
    pub at: u64,
    /// Daemons to mint and register.
    pub arrivals: usize,
    /// Daemons to pick (via [`ChurnSchedule::pick`]) and unregister.
    pub departures: usize,
}

/// A [`ChurnPlan`] in motion: the driver advances it with
/// [`ChurnSchedule::ticks_until`] in lock-step with the flow clock and
/// resolves each departure with [`ChurnSchedule::pick`].
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    plan: ChurnPlan,
    next_tick: u64,
    rng: u64,
}

impl ChurnSchedule {
    /// Every tick due at or before logical time `now`, in order. Ticks
    /// outside the plan's window are skipped, not deferred, so a driver
    /// that advances the clock coarsely stays aligned with one that
    /// advances it finely.
    pub fn ticks_until(&mut self, now: u64) -> Vec<ChurnTick> {
        let mut due = Vec::new();
        while self.next_tick <= now {
            let at = self.next_tick;
            self.next_tick += self.plan.interval_micros;
            if !self.plan.active.contains(at) {
                continue;
            }
            due.push(ChurnTick {
                at,
                arrivals: self.plan.arrivals,
                departures: self.plan.departures,
            });
        }
        due
    }

    /// A deterministic index draw in `[0, bound)` for choosing which live
    /// daemon departs (xorshift over the plan seed). Returns 0 for an empty
    /// bound so callers can use it unconditionally on `len()`.
    pub fn pick(&mut self, bound: usize) -> usize {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        if bound == 0 {
            0
        } else {
            (self.rng % bound as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_plan_replays_identically() {
        let plan = ChurnPlan::steady(1_000, 2, 1).with_seed(7);
        let mut a = plan.schedule();
        let mut b = plan.schedule();
        let ticks_a: Vec<ChurnTick> = (1..=10).flat_map(|i| a.ticks_until(i * 1_500)).collect();
        let ticks_b = b.ticks_until(15_000);
        assert_eq!(ticks_a, ticks_b, "coarse and fine clocks must agree");
        let picks_a: Vec<usize> = (0..32).map(|_| a.pick(17)).collect();
        let picks_b: Vec<usize> = (0..32).map(|_| b.pick(17)).collect();
        assert_eq!(picks_a, picks_b, "pick streams must replay");
        assert!(picks_a.iter().all(|&p| p < 17));
    }

    #[test]
    fn ticks_fire_once_per_interval_inside_the_window() {
        let plan = ChurnPlan::steady(1_000, 3, 2).within(Window::between(2_500, 6_500));
        let mut schedule = plan.schedule();
        let ticks = schedule.ticks_until(10_000);
        // Ticks land on the interval grid; only 3000..=6000 fall inside.
        assert_eq!(
            ticks.iter().map(|t| t.at).collect::<Vec<_>>(),
            vec![3_000, 4_000, 5_000, 6_000]
        );
        assert!(ticks.iter().all(|t| t.arrivals == 3 && t.departures == 2));
        // The clock never goes backwards: everything due was consumed.
        assert!(schedule.ticks_until(10_000).is_empty());
    }

    #[test]
    fn pick_handles_empty_and_singleton_bounds() {
        let mut schedule = ChurnPlan::steady(10, 0, 1).schedule();
        assert_eq!(schedule.pick(0), 0);
        assert_eq!(schedule.pick(1), 0);
    }
}
