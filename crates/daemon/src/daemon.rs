//! The ident++ daemon itself: query answering.

use std::sync::Arc;

use identxx_proto::{well_known, FiveTuple, Query, Response, Section};

use identxx_hostmodel::{FlowOwner, Host};

use crate::appconfig::{parse_app_configs, AppConfig};
use crate::error::DaemonError;
use crate::fault::FaultInjector;

/// Whether the queried host is the source or the destination of the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryDirection {
    /// The host originated the flow.
    Source,
    /// The host is (or would be) the receiver of the flow.
    Destination,
}

/// The ident++ daemon running on one end-host.
///
/// The daemon owns the simulated [`Host`]; scenarios manipulate the host
/// through [`Daemon::host_mut`] (spawning processes, opening connections,
/// installing configuration files) and the controller queries the daemon with
/// [`Daemon::answer`].
#[derive(Debug, Clone)]
pub struct Daemon {
    host: Host,
    app_configs: Vec<AppConfig>,
    /// When set (compromised host), every query is answered with this exact
    /// set of key-value pairs instead of the truth.
    forged_pairs: Option<Vec<(String, String)>>,
    /// When true the daemon simply does not answer (models a host with no
    /// ident++ support, or a daemon killed by an attacker).
    silent: bool,
    /// Artificial per-answer latency, honoured by transports that model time
    /// (the TCP server sleeps this long before writing the response; the
    /// in-process path ignores it). Used by the query-overhead experiments
    /// to make round-trip costs visible.
    response_delay_micros: u64,
    /// Number of queries answered (for the experiments' accounting).
    queries_answered: u64,
    /// Scripted faults from a failure drill (DESIGN.md §9): silence windows,
    /// brownout delays, and response drops consulted on every answer. `None`
    /// outside drills — the common case pays one branch.
    fault_injector: Option<Arc<FaultInjector>>,
}

impl Daemon {
    /// Creates a daemon for a host, loading `@app` blocks from every file in
    /// the host's configuration store.
    pub fn new(host: Host) -> Result<Daemon, DaemonError> {
        let mut app_configs = Vec::new();
        for (_, entry) in host.config.files() {
            app_configs.extend(parse_app_configs(&entry.contents)?);
        }
        Ok(Daemon {
            host,
            app_configs,
            forged_pairs: None,
            silent: false,
            response_delay_micros: 0,
            queries_answered: 0,
            fault_injector: None,
        })
    }

    /// Creates a daemon for a host with no configuration files.
    pub fn bare(host: Host) -> Daemon {
        Daemon {
            host,
            app_configs: Vec::new(),
            forged_pairs: None,
            silent: false,
            response_delay_micros: 0,
            queries_answered: 0,
            fault_injector: None,
        }
    }

    /// Read access to the underlying host.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Mutable access to the underlying host.
    pub fn host_mut(&mut self) -> &mut Host {
        &mut self.host
    }

    /// Adds an `@app` configuration block directly (equivalent to dropping a
    /// file into `/etc/identxx/` or a user's `.identxx/` directory and
    /// re-reading it).
    pub fn add_app_config(&mut self, config: AppConfig) {
        self.app_configs.push(config);
    }

    /// Reloads `@app` blocks from the host's configuration store, replacing
    /// the currently loaded set.
    pub fn reload_configs(&mut self) -> Result<(), DaemonError> {
        let mut app_configs = Vec::new();
        for (_, entry) in self.host.config.files() {
            app_configs.extend(parse_app_configs(&entry.contents)?);
        }
        self.app_configs = app_configs;
        Ok(())
    }

    /// The loaded `@app` blocks.
    pub fn app_configs(&self) -> &[AppConfig] {
        &self.app_configs
    }

    /// Makes the daemon return forged pairs for every query (a compromised
    /// host, §5.3), or restores honesty with `None`.
    pub fn set_forged_response(&mut self, pairs: Option<Vec<(String, String)>>) {
        self.forged_pairs = pairs;
    }

    /// Makes the daemon stop answering queries entirely (no ident++ support or
    /// daemon killed). The controller then has to decide with partial
    /// information (§4 "Incremental Benefit").
    pub fn set_silent(&mut self, silent: bool) {
        self.silent = silent;
    }

    /// Whether this daemon answers queries at all.
    pub fn is_silent(&self) -> bool {
        self.silent
    }

    /// Sets an artificial latency (microseconds) added before each answer by
    /// transports that model time, such as the `DaemonServer` in
    /// `identxx-net`.
    pub fn set_response_delay_micros(&mut self, micros: u64) {
        self.response_delay_micros = micros;
    }

    /// The artificial per-answer latency in microseconds (0 = answer at once).
    pub fn response_delay_micros(&self) -> u64 {
        self.response_delay_micros
    }

    /// The latency transports should actually charge right now: the
    /// configured delay plus any active brownout from the fault injector.
    pub fn effective_response_delay_micros(&self) -> u64 {
        let extra = self
            .fault_injector
            .as_ref()
            .map_or(0, |injector| injector.extra_delay_micros(self.host.addr));
        self.response_delay_micros.saturating_add(extra)
    }

    /// Attaches (or clears) a failure-drill fault injector. Silence windows,
    /// brownouts, and response drops scripted for this host take effect on
    /// subsequent answers.
    pub fn set_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        self.fault_injector = injector;
    }

    /// The attached fault injector, if any (transports consult it for
    /// frame-level faults like batch reordering).
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.fault_injector.clone()
    }

    /// How many queries this daemon has answered.
    pub fn queries_answered(&self) -> u64 {
        self.queries_answered
    }

    /// Determines whether the queried flow involves this host and in which
    /// role.
    pub fn direction_for(&self, flow: &FiveTuple) -> Result<QueryDirection, DaemonError> {
        if flow.src_ip == self.host.addr {
            Ok(QueryDirection::Source)
        } else if flow.dst_ip == self.host.addr {
            Ok(QueryDirection::Destination)
        } else {
            Err(DaemonError::NotOurFlow)
        }
    }

    /// Answers a query. Returns `Ok(None)` if the daemon is silent.
    ///
    /// The response always echoes the queried 5-tuple; its sections are, in
    /// order: OS-derived facts, `@app` configuration pairs for the owning
    /// executable, and dynamic pairs registered by the owning process. A
    /// query about a flow the host cannot attribute to a process still gets a
    /// (host-level) response — the controller learns the OS and patch level
    /// but no user or application, and its policy decides what to do with the
    /// missing information.
    pub fn answer(&mut self, query: &Query) -> Result<Option<Response>, DaemonError> {
        if self.silent {
            return Ok(None);
        }
        if let Some(injector) = &self.fault_injector {
            // A scripted silence window (daemon killed / churned out) looks
            // exactly like a configured-silent daemon: no answer, no count.
            if injector.silenced(self.host.addr) {
                return Ok(None);
            }
        }
        let direction = self.direction_for(&query.flow)?;
        self.queries_answered += 1;
        if let Some(injector) = &self.fault_injector {
            // A dropped response: the daemon did the work (the query counts)
            // but the answer never makes it out.
            if injector.drop_response(self.host.addr) {
                return Ok(None);
            }
        }

        let mut response = Response::new(query.flow);

        if let Some(forged) = &self.forged_pairs {
            let mut section = Section::new();
            for (k, v) in forged {
                section.push(k, v.as_str());
            }
            response.push_section(section);
            return Ok(Some(response));
        }

        let owner = match direction {
            QueryDirection::Source => self.host.owner_of_outbound(&query.flow),
            QueryDirection::Destination => self.host.owner_of_inbound(&query.flow),
        };

        // Section 1: facts derived from the operating system.
        let mut os_section = Section::new();
        os_section.push(well_known::HOSTNAME, self.host.name.as_str());
        os_section.push(well_known::OS, self.host.os.as_str());
        os_section.push(well_known::OS_PATCH, self.host.patch_list());
        if let Some(owner) = &owner {
            os_section.push(well_known::USER_ID, owner.user.name.as_str());
            os_section.push(well_known::GROUP_ID, owner.user.group_list());
            os_section.push(well_known::PID, format!("{}", owner.pid.0));
            os_section.push(well_known::APP_NAME, owner.exe.name.as_str());
            // Some controller rules (Fig. 5/7) spell the key `app-name`.
            os_section.push(well_known::APP_NAME_ALT, owner.exe.name.as_str());
            os_section.push(well_known::EXE_PATH, owner.exe.path.as_str());
            os_section.push(well_known::EXE_HASH, owner.exe.content_hash());
            os_section.push(well_known::VERSION, owner.exe.version.to_string());
            os_section.push(well_known::VENDOR, owner.exe.vendor.as_str());
            os_section.push(well_known::APP_TYPE, owner.exe.app_type.as_str());
        }
        response.push_section(os_section);

        // Section 2: `@app` configuration pairs for the owning executable.
        if let Some(owner) = &owner {
            let mut config_section = Section::new();
            for config in self.configs_for(&owner.exe.path) {
                for (k, v) in &config.pairs {
                    config_section.push(k, v.as_str());
                }
            }
            response.push_section(config_section);
        }

        // Section 3: dynamic pairs registered by the application at run time.
        if let Some(owner) = &owner {
            if !owner.dynamic_pairs.is_empty() {
                let mut dyn_section = Section::new();
                for (k, v) in &owner.dynamic_pairs {
                    dyn_section.push(k, v.as_str());
                }
                response.push_section(dyn_section);
            }
        }

        Ok(Some(response))
    }

    fn configs_for(&self, exe_path: &str) -> Vec<&AppConfig> {
        self.app_configs
            .iter()
            .filter(|c| c.exe_path == exe_path)
            .collect()
    }

    #[allow(dead_code)]
    fn owner_for(&self, flow: &FiveTuple, direction: QueryDirection) -> Option<FlowOwner> {
        match direction {
            QueryDirection::Source => self.host.owner_of_outbound(flow),
            QueryDirection::Destination => self.host.owner_of_inbound(flow),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_crypto::KeyPair;
    use identxx_hostmodel::Executable;
    use identxx_proto::{IpProtocol, Ipv4Addr};

    fn skype() -> Executable {
        Executable::new("/usr/bin/skype", "skype", 210, "skype.com", "voip")
    }

    fn host(addr: [u8; 4]) -> Host {
        Host::new("h1", Ipv4Addr::from(addr))
    }

    #[test]
    fn answers_source_queries_with_os_facts() {
        let mut h = host([10, 0, 0, 1]);
        h.install_patch("MS08-067");
        let mut daemon = Daemon::bare(h);
        let flow = daemon.host_mut().open_connection(
            "alice",
            skype(),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        let query = Query::for_all_well_known(flow);
        let response = daemon.answer(&query).unwrap().unwrap();
        assert_eq!(response.latest(well_known::USER_ID), Some("alice"));
        assert_eq!(response.latest(well_known::APP_NAME), Some("skype"));
        assert_eq!(response.latest(well_known::APP_NAME_ALT), Some("skype"));
        assert_eq!(response.latest(well_known::VERSION), Some("210"));
        assert_eq!(response.latest(well_known::OS_PATCH), Some("MS08-067"));
        assert_eq!(
            response.latest(well_known::EXE_HASH),
            Some(skype().content_hash().as_str())
        );
        assert_eq!(daemon.queries_answered(), 1);
    }

    #[test]
    fn answers_destination_queries_for_listeners() {
        let server = Executable::new(
            "/windows/system32/services.exe",
            "Server",
            6,
            "microsoft",
            "file-service",
        );
        let mut daemon = Daemon::bare(host([10, 0, 0, 2]));
        daemon.host_mut().run_service("system", server, 445);
        // Flow from a remote client toward this host's port 445.
        let flow = FiveTuple::tcp([10, 0, 0, 9], 51000, [10, 0, 0, 2], 445);
        let response = daemon.answer(&Query::new(flow)).unwrap().unwrap();
        assert_eq!(response.latest(well_known::USER_ID), Some("system"));
        assert_eq!(response.latest(well_known::APP_NAME), Some("Server"));
    }

    #[test]
    fn unknown_flow_still_gets_host_facts_but_no_user() {
        let mut daemon = Daemon::bare(host([10, 0, 0, 2]));
        let flow = FiveTuple::tcp([10, 0, 0, 9], 51000, [10, 0, 0, 2], 6666);
        let response = daemon.answer(&Query::new(flow)).unwrap().unwrap();
        assert_eq!(response.latest(well_known::HOSTNAME), Some("h1"));
        assert_eq!(response.latest(well_known::USER_ID), None);
        assert_eq!(response.latest(well_known::APP_NAME), None);
    }

    #[test]
    fn rejects_queries_about_unrelated_flows() {
        let mut daemon = Daemon::bare(host([10, 0, 0, 2]));
        let flow = FiveTuple::tcp([10, 0, 0, 8], 1, [10, 0, 0, 9], 2);
        assert_eq!(
            daemon.answer(&Query::new(flow)),
            Err(DaemonError::NotOurFlow)
        );
    }

    #[test]
    fn app_config_pairs_appear_in_their_own_section() {
        let mut h = host([10, 0, 0, 1]);
        h.config.write_admin(
            "/etc/identxx/50-skype.conf",
            "@app /usr/bin/skype {\nname : skype\nrequirements : block all\nreq-sig : abcd\n}\n",
        );
        let mut daemon = Daemon::new(h).unwrap();
        let flow = daemon.host_mut().open_connection(
            "alice",
            skype(),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        let response = daemon.answer(&Query::new(flow)).unwrap().unwrap();
        assert_eq!(response.section_count(), 2);
        assert_eq!(response.latest(well_known::REQUIREMENTS), Some("block all"));
        assert_eq!(response.latest(well_known::REQ_SIG), Some("abcd"));
        // The OS section and the config section both carry `name`.
        assert_eq!(response.all(well_known::APP_NAME).len(), 2);
    }

    #[test]
    fn config_for_other_executables_does_not_leak() {
        let mut h = host([10, 0, 0, 1]);
        h.config.write_admin(
            "/etc/identxx/50-skype.conf",
            "@app /usr/bin/skype {\nrequirements : block all\n}\n",
        );
        let mut daemon = Daemon::new(h).unwrap();
        let firefox = Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser");
        let flow = daemon.host_mut().open_connection(
            "bob",
            firefox,
            40001,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        let response = daemon.answer(&Query::new(flow)).unwrap().unwrap();
        assert_eq!(response.latest(well_known::REQUIREMENTS), None);
    }

    #[test]
    fn dynamic_pairs_form_third_section() {
        let mut daemon = Daemon::bare(host([10, 0, 0, 1]));
        let pid = daemon.host_mut().spawn("alice", skype());
        daemon
            .host_mut()
            .register_dynamic_pair(pid, "user-initiated", "true");
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        daemon.host_mut().connect_flow(pid, flow);
        let response = daemon.answer(&Query::new(flow)).unwrap().unwrap();
        assert_eq!(response.latest(well_known::USER_INITIATED), Some("true"));
        assert_eq!(response.section_count(), 2); // OS + dynamic (no app config)
    }

    #[test]
    fn silent_daemon_does_not_answer() {
        let mut daemon = Daemon::bare(host([10, 0, 0, 1]));
        daemon.set_silent(true);
        assert!(daemon.is_silent());
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        assert_eq!(daemon.answer(&Query::new(flow)).unwrap(), None);
        assert_eq!(daemon.queries_answered(), 0);
    }

    #[test]
    fn forged_responses_replace_the_truth() {
        let mut daemon = Daemon::bare(host([10, 0, 0, 1]));
        let flow = daemon.host_mut().open_connection(
            "mallory",
            skype(),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        daemon.set_forged_response(Some(vec![
            ("userID".to_string(), "system".to_string()),
            ("name".to_string(), "Server".to_string()),
        ]));
        let response = daemon.answer(&Query::new(flow)).unwrap().unwrap();
        assert_eq!(response.latest(well_known::USER_ID), Some("system"));
        assert_eq!(response.latest(well_known::APP_NAME), Some("Server"));
        assert_eq!(response.section_count(), 1);
        // Restoring honesty brings the real answer back.
        daemon.set_forged_response(None);
        let response = daemon.answer(&Query::new(flow)).unwrap().unwrap();
        assert_eq!(response.latest(well_known::USER_ID), Some("mallory"));
    }

    #[test]
    fn signed_config_round_trip_through_daemon() {
        let exe = Executable::new(
            "/usr/bin/research-app",
            "research-app",
            1,
            "lab",
            "research",
        );
        let alice_key = KeyPair::from_seed(b"alice");
        let requirements = "block all\npass all with eq(@src[name], research-app)";
        let config = crate::appconfig::signed_app_config(&exe, requirements, &alice_key, None);

        let mut daemon = Daemon::bare(host([10, 0, 0, 5]));
        daemon.add_app_config(config);
        let flow = daemon.host_mut().open_connection(
            "alice",
            exe.clone(),
            45000,
            Ipv4Addr::new(10, 0, 0, 6),
            7000,
        );
        let response = daemon.answer(&Query::new(flow)).unwrap().unwrap();
        assert_eq!(
            response.latest(well_known::REQUIREMENTS),
            Some(requirements)
        );
        let sig = response.latest(well_known::REQ_SIG).unwrap();
        assert!(identxx_crypto::verify_bundle_hex(
            sig,
            &alice_key.public().to_hex(),
            &[exe.content_hash().as_str(), "research-app", requirements]
        ));
    }

    #[test]
    fn reload_configs_picks_up_new_files() {
        let mut daemon = Daemon::bare(host([10, 0, 0, 1]));
        assert!(daemon.app_configs().is_empty());
        daemon.host_mut().config.write_user(
            "alice",
            "/home/alice/.identxx/app.conf",
            "@app /usr/bin/skype {\nname : skype\n}\n",
        );
        daemon.reload_configs().unwrap();
        assert_eq!(daemon.app_configs().len(), 1);
        // A malformed file makes reload fail without changing behaviour of answer().
        daemon
            .host_mut()
            .config
            .write_admin("/etc/identxx/broken.conf", "@app {\n}");
        assert!(daemon.reload_configs().is_err());
    }

    #[test]
    fn udp_listener_resolution() {
        let dns = Executable::new("/usr/sbin/dnsd", "dnsd", 2, "isc", "dns-server");
        let mut daemon = Daemon::bare(host([10, 0, 0, 3]));
        let pid = daemon.host_mut().spawn("system", dns);
        daemon.host_mut().listen(pid, IpProtocol::Udp, 53);
        let flow = FiveTuple::udp([10, 0, 0, 9], 53000, [10, 0, 0, 3], 53);
        let response = daemon.answer(&Query::new(flow)).unwrap().unwrap();
        assert_eq!(response.latest(well_known::APP_NAME), Some("dnsd"));
    }
}
