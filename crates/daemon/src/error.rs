//! Daemon error types.

use std::fmt;

/// Errors produced by the ident++ daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaemonError {
    /// A daemon configuration file (`@app` block) is malformed.
    BadConfig { line: usize, message: String },
    /// The queried flow does not involve this host at all (neither source nor
    /// destination address matches).
    NotOurFlow,
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::BadConfig { line, message } => {
                write!(f, "bad daemon configuration at line {line}: {message}")
            }
            DaemonError::NotOurFlow => {
                write!(f, "query is about a flow that does not involve this host")
            }
        }
    }
}

impl std::error::Error for DaemonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DaemonError::BadConfig {
            line: 4,
            message: "missing '{'".to_string(),
        };
        assert!(e.to_string().contains("line 4"));
        assert!(DaemonError::NotOurFlow.to_string().contains("not involve"));
    }
}
