//! Deterministic fault injection for failure drills.
//!
//! The E12 drill suite (DESIGN.md §9) needs to kill daemons, partition the
//! network, brown hosts out, and corrupt batch frames — *reproducibly*. A
//! [`FaultPlan`] is a seedable script of faults, each active over a window of
//! **logical time** (the same microsecond clock the controller's `decide`
//! calls carry), compiled into a shared [`FaultInjector`] that the daemon,
//! the TCP server, and the controller's query backends consult at their
//! respective choke points:
//!
//! * [`FaultInjector::silenced`] — the daemon answers nothing (daemon killed,
//!   churned out of the population),
//! * [`FaultInjector::unreachable`] — the *controller side* refuses to reach
//!   the host (network partition: connectivity loss, not host death),
//! * [`FaultInjector::extra_delay_micros`] — inflated processing latency
//!   (brownout: the host answers, but slower than the decision budget),
//! * [`FaultInjector::drop_response`] — every `one_in`-th answer vanishes,
//! * [`FaultInjector::duplicate_batch`] / [`FaultInjector::reorder_seed`] —
//!   `RESPONSE-BATCH` frames carry duplicated / shuffled answers (the client
//!   must re-match by flow, so neither may change a decision).
//!
//! There is **no wall clock** anywhere: the drill driver advances the
//! injector's logical clock with [`FaultInjector::advance_to`] in lock-step
//! with the flow timestamps it feeds the controller, and every probabilistic
//! draw is a pure hash of `(seed, fault, event-counter)` — the same plan
//! replays the same faults, which is what lets drills assert byte-identical
//! decisions across runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use identxx_proto::Ipv4Addr;

/// A half-open window `[from, until)` of logical microseconds during which a
/// fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First microsecond the fault is active.
    pub from: u64,
    /// First microsecond the fault is no longer active (`u64::MAX` = open).
    pub until: u64,
}

impl Window {
    /// A window covering `[from, until)`.
    pub fn between(from: u64, until: u64) -> Window {
        Window { from, until }
    }

    /// A window from `from` that never ends.
    pub fn from(from: u64) -> Window {
        Window {
            from,
            until: u64::MAX,
        }
    }

    /// The whole run.
    pub fn always() -> Window {
        Window {
            from: 0,
            until: u64::MAX,
        }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: u64) -> bool {
        self.from <= now && now < self.until
    }
}

/// One scripted fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The host's daemon answers nothing: killed daemon, or a host churned
    /// out of the population. The host is still reachable (connections open
    /// and close without an answer — the silent-daemon wire shape).
    Silence { host: Ipv4Addr, window: Window },
    /// The controller cannot reach the host at all (network partition seen
    /// from the query plane). The daemon itself is healthy.
    Partition { host: Ipv4Addr, window: Window },
    /// The host answers, but `extra_delay_micros` slower — a brownout that
    /// turns answers into deadline misses without killing anything.
    Brownout {
        host: Ipv4Addr,
        extra_delay_micros: u64,
        window: Window,
    },
    /// Every `one_in`-th answer from the host is dropped before it is sent.
    DropResponse {
        host: Ipv4Addr,
        one_in: u64,
        window: Window,
    },
    /// `RESPONSE-BATCH` frames from the host carry a duplicated answer.
    DuplicateBatchAnswer { host: Ipv4Addr, window: Window },
    /// `RESPONSE-BATCH` frames from the host arrive with their answers
    /// shuffled (the protocol matches by flow, so order must not matter).
    ReorderBatch { host: Ipv4Addr, window: Window },
}

impl Fault {
    fn host(&self) -> Ipv4Addr {
        match self {
            Fault::Silence { host, .. }
            | Fault::Partition { host, .. }
            | Fault::Brownout { host, .. }
            | Fault::DropResponse { host, .. }
            | Fault::DuplicateBatchAnswer { host, .. }
            | Fault::ReorderBatch { host, .. } => *host,
        }
    }

    fn window(&self) -> Window {
        match self {
            Fault::Silence { window, .. }
            | Fault::Partition { window, .. }
            | Fault::Brownout { window, .. }
            | Fault::DropResponse { window, .. }
            | Fault::DuplicateBatchAnswer { window, .. }
            | Fault::ReorderBatch { window, .. } => *window,
        }
    }
}

/// A seedable script of faults. Build one with the fluent methods, then
/// compile it into the shared [`FaultInjector`] with [`FaultPlan::injector`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan with the given jitter/draw seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds an arbitrary fault.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Silences `host` (daemon killed / churned out) during `window`.
    pub fn silence(self, host: Ipv4Addr, window: Window) -> FaultPlan {
        self.with(Fault::Silence { host, window })
    }

    /// Partitions `host` away from the controller during `window`.
    pub fn partition(self, host: Ipv4Addr, window: Window) -> FaultPlan {
        self.with(Fault::Partition { host, window })
    }

    /// Browns `host` out by `extra_delay_micros` during `window`.
    pub fn brownout(self, host: Ipv4Addr, extra_delay_micros: u64, window: Window) -> FaultPlan {
        self.with(Fault::Brownout {
            host,
            extra_delay_micros,
            window,
        })
    }

    /// Drops every `one_in`-th answer from `host` during `window`.
    pub fn drop_responses(self, host: Ipv4Addr, one_in: u64, window: Window) -> FaultPlan {
        self.with(Fault::DropResponse {
            host,
            one_in: one_in.max(1),
            window,
        })
    }

    /// Duplicates an answer in every batch frame from `host` during `window`.
    pub fn duplicate_batch_answers(self, host: Ipv4Addr, window: Window) -> FaultPlan {
        self.with(Fault::DuplicateBatchAnswer { host, window })
    }

    /// Shuffles the answers of every batch frame from `host` during `window`.
    pub fn reorder_batches(self, host: Ipv4Addr, window: Window) -> FaultPlan {
        self.with(Fault::ReorderBatch { host, window })
    }

    /// The scripted faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Compiles the plan into a shareable injector (logical clock at 0).
    pub fn injector(self) -> Arc<FaultInjector> {
        let counters = self.faults.iter().map(|_| AtomicU64::new(0)).collect();
        Arc::new(FaultInjector {
            seed: self.seed,
            faults: self.faults,
            counters,
            clock: AtomicU64::new(0),
        })
    }
}

/// The compiled, shareable form of a [`FaultPlan`]: one logical clock, one
/// monotone event counter per fault, and pure-hash draws — everything a
/// daemon, server, or backend asks is a deterministic function of the plan
/// and the sequence of events so far.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    faults: Vec<Fault>,
    /// One event counter per fault (drop draws, reorder shuffles).
    counters: Vec<AtomicU64>,
    /// Logical time in microseconds; only ever moves forward.
    clock: AtomicU64,
}

impl FaultInjector {
    /// An injector with no faults (everything healthy). Useful as a default.
    pub fn none() -> Arc<FaultInjector> {
        FaultPlan::new(0).injector()
    }

    /// Advances the logical clock to `now_micros` (monotone: going backwards
    /// is a no-op). Drill drivers call this in lock-step with the flow
    /// timestamps they feed the controller.
    pub fn advance_to(&self, now_micros: u64) {
        self.clock.fetch_max(now_micros, Ordering::Release);
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    fn active(&self, now: u64) -> impl Iterator<Item = (usize, &Fault)> {
        self.faults
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.window().contains(now))
    }

    /// Whether `host`'s daemon is silenced right now.
    pub fn silenced(&self, host: Ipv4Addr) -> bool {
        let now = self.now();
        self.active(now)
            .any(|(_, f)| matches!(f, Fault::Silence { .. }) && f.host() == host)
    }

    /// Whether the controller is partitioned away from `host` right now.
    pub fn unreachable(&self, host: Ipv4Addr) -> bool {
        let now = self.now();
        self.active(now)
            .any(|(_, f)| matches!(f, Fault::Partition { .. }) && f.host() == host)
    }

    /// The total brownout delay currently inflicted on `host`.
    pub fn extra_delay_micros(&self, host: Ipv4Addr) -> u64 {
        let now = self.now();
        self.active(now)
            .filter(|(_, f)| f.host() == host)
            .map(|(_, f)| match f {
                Fault::Brownout {
                    extra_delay_micros, ..
                } => *extra_delay_micros,
                _ => 0,
            })
            .sum()
    }

    /// Whether the next answer from `host` should be dropped. Consumes one
    /// event from the drop fault's counter: the decision sequence is
    /// deterministic in the plan seed and the number of prior answers.
    pub fn drop_response(&self, host: Ipv4Addr) -> bool {
        let now = self.now();
        for (i, fault) in self.active(now) {
            if let Fault::DropResponse { one_in, .. } = fault {
                if fault.host() == host {
                    let n = self.counters[i].fetch_add(1, Ordering::Relaxed);
                    let draw = splitmix64(self.seed ^ hash_host(host) ^ n);
                    if draw.is_multiple_of(*one_in) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Whether batch frames from `host` should carry a duplicated answer.
    pub fn duplicate_batch(&self, host: Ipv4Addr) -> bool {
        let now = self.now();
        self.active(now)
            .any(|(_, f)| matches!(f, Fault::DuplicateBatchAnswer { .. }) && f.host() == host)
    }

    /// When batch frames from `host` should be shuffled, a fresh per-frame
    /// shuffle seed (deterministic in the plan seed and frame count);
    /// otherwise `None`.
    pub fn reorder_seed(&self, host: Ipv4Addr) -> Option<u64> {
        let now = self.now();
        for (i, fault) in self.active(now) {
            if matches!(fault, Fault::ReorderBatch { .. }) && fault.host() == host {
                let n = self.counters[i].fetch_add(1, Ordering::Relaxed);
                return Some(splitmix64(self.seed ^ hash_host(host).rotate_left(23) ^ n));
            }
        }
        None
    }

    /// Fisher–Yates shuffle with a deterministic seed — the helper servers
    /// use to scramble batch answers under a [`Fault::ReorderBatch`].
    pub fn shuffle<T>(items: &mut [T], mut seed: u64) {
        for i in (1..items.len()).rev() {
            seed = splitmix64(seed);
            items.swap(i, (seed % (i as u64 + 1)) as usize);
        }
    }
}

fn hash_host(host: Ipv4Addr) -> u64 {
    let o = host.octets();
    u64::from(o[0]) << 24 | u64::from(o[1]) << 16 | u64::from(o[2]) << 8 | u64::from(o[3])
}

/// The splitmix64 finalizer: a cheap, well-mixed pure hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn windows_gate_faults_on_the_logical_clock() {
        let injector = FaultPlan::new(7)
            .silence(host(1), Window::between(100, 200))
            .partition(host(2), Window::from(500))
            .brownout(host(3), 40_000, Window::always())
            .injector();
        assert!(!injector.silenced(host(1)), "fault not active at t=0");
        injector.advance_to(150);
        assert!(injector.silenced(host(1)));
        assert!(!injector.silenced(host(2)), "faults are per-host");
        assert!(!injector.unreachable(host(2)), "partition starts at 500");
        assert_eq!(injector.extra_delay_micros(host(3)), 40_000);
        injector.advance_to(200);
        assert!(!injector.silenced(host(1)), "window is half-open");
        injector.advance_to(500);
        assert!(injector.unreachable(host(2)));
        // The clock never goes backwards.
        injector.advance_to(100);
        assert_eq!(injector.now(), 500);
        assert!(injector.unreachable(host(2)));
    }

    #[test]
    fn drop_draws_are_deterministic_and_roughly_proportional() {
        let drops = |seed: u64| -> Vec<bool> {
            let injector = FaultPlan::new(seed)
                .drop_responses(host(1), 4, Window::always())
                .injector();
            (0..64).map(|_| injector.drop_response(host(1))).collect()
        };
        assert_eq!(drops(42), drops(42), "same seed replays the same drops");
        assert_ne!(drops(42), drops(43), "different seeds differ");
        let dropped = drops(42).iter().filter(|d| **d).count();
        assert!(
            (4..=32).contains(&dropped),
            "one-in-4 over 64 draws should drop a plausible share, got {dropped}"
        );
        // Other hosts are untouched and consume no draws.
        let injector = FaultPlan::new(42)
            .drop_responses(host(1), 2, Window::always())
            .injector();
        assert!(!injector.drop_response(host(9)));
    }

    #[test]
    fn shuffle_is_deterministic_and_a_permutation() {
        let mut a: Vec<u32> = (0..16).collect();
        let mut b: Vec<u32> = (0..16).collect();
        FaultInjector::shuffle(&mut a, 99);
        FaultInjector::shuffle(&mut b, 99);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u32>>());
        assert_ne!(a, sorted, "a 16-element shuffle should actually move");
    }

    #[test]
    fn reorder_seed_changes_per_frame_but_replays_per_plan() {
        let build = || {
            FaultPlan::new(5)
                .reorder_batches(host(4), Window::always())
                .injector()
        };
        let one = build();
        let s1 = one.reorder_seed(host(4)).unwrap();
        let s2 = one.reorder_seed(host(4)).unwrap();
        assert_ne!(s1, s2, "each frame gets its own shuffle");
        let two = build();
        assert_eq!(two.reorder_seed(host(4)).unwrap(), s1);
        assert_eq!(two.reorder_seed(host(4)).unwrap(), s2);
        assert!(one.reorder_seed(host(9)).is_none());
    }
}
