//! # identxx-daemon — the end-host ident++ daemon
//!
//! "End-hosts run a simple userspace ident++ daemon that responds with the
//! key-value pairs to controller queries. The daemon can answer queries both
//! when the end-host is the source and when it is a destination that has yet
//! to accept a connection" (§3.5).
//!
//! The daemon assembles its response from three sources, each becoming a
//! section of the response:
//!
//! 1. **The operating system**: the lsof-style lookup of the flow's process,
//!    user, groups, executable hash/version/vendor, OS and patch level
//!    (provided by `identxx-hostmodel`).
//! 2. **Configuration files**: `@app` blocks keyed by executable path
//!    (Fig. 3/4/6) supplying additional pairs such as signed `requirements`
//!    and `req-sig`, written by users, administrators, software distributors,
//!    or third parties.
//! 3. **The application itself**: dynamic pairs registered at run time over a
//!    local socket (e.g. a browser marking a flow as user-initiated).
//!
//! A compromised host (§5.3) controls its daemon and may return arbitrary
//! forged responses; [`Daemon::set_forged_response`] models that capability
//! for the security-analysis experiments.

pub mod appconfig;
pub mod churn;
pub mod daemon;
pub mod error;
pub mod fault;

pub use appconfig::{
    parse_app_configs, resign_app_config, signed_app_config, signed_app_config_windowed, AppConfig,
};
pub use churn::{ChurnPlan, ChurnSchedule, ChurnTick};
pub use daemon::{Daemon, QueryDirection};
pub use error::DaemonError;
pub use fault::{Fault, FaultInjector, FaultPlan, Window};
