//! The host's ident++ configuration "filesystem".
//!
//! "Like the controller, the ident++ daemon has a number of configuration
//! files residing in well known locations on the end-host. … Some
//! configuration files can be modified by users to insert their inputs to the
//! system, while others reside in the system's configuration directory (such
//! as `/etc/identxx` for Linux) and are only modifiable by the local end-host
//! administrator" (§3.5).
//!
//! [`ConfigFs`] stores those files in memory with their owner so tests can
//! model the difference between an attacker with a user account and one with
//! local administrator rights.

use std::collections::BTreeMap;

/// Who owns (and may modify) a configuration file.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConfigOwner {
    /// The local end-host administrator (`/etc/identxx/...`).
    Admin,
    /// A specific user (`~user/.identxx/...`).
    User(String),
}

/// A configuration file with ownership metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigEntry {
    /// File contents.
    pub contents: String,
    /// Owner.
    pub owner: ConfigOwner,
}

/// The in-memory configuration store of one host.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfigFs {
    files: BTreeMap<String, ConfigEntry>,
}

impl ConfigFs {
    /// Creates an empty store.
    pub fn new() -> Self {
        ConfigFs::default()
    }

    /// Writes an admin-owned file (e.g. `/etc/identxx/50-skype.conf`).
    pub fn write_admin(&mut self, path: impl Into<String>, contents: impl Into<String>) {
        self.files.insert(
            path.into(),
            ConfigEntry {
                contents: contents.into(),
                owner: ConfigOwner::Admin,
            },
        );
    }

    /// Writes a user-owned file (e.g. `~alice/.identxx/research-app.conf`).
    pub fn write_user(
        &mut self,
        user: impl Into<String>,
        path: impl Into<String>,
        contents: impl Into<String>,
    ) {
        self.files.insert(
            path.into(),
            ConfigEntry {
                contents: contents.into(),
                owner: ConfigOwner::User(user.into()),
            },
        );
    }

    /// Attempts to overwrite a file as `actor`. Admin files can only be
    /// modified by the admin (`actor == None` means acting as admin); a user
    /// may only modify their own files. Returns whether the write happened.
    pub fn try_overwrite(&mut self, actor: Option<&str>, path: &str, contents: &str) -> bool {
        match self.files.get_mut(path) {
            Some(entry) => {
                let permitted = match (&entry.owner, actor) {
                    (_, None) => true, // admin can touch everything
                    (ConfigOwner::Admin, Some(_)) => false,
                    (ConfigOwner::User(owner), Some(actor)) => owner == actor,
                };
                if permitted {
                    entry.contents = contents.to_string();
                }
                permitted
            }
            None => false,
        }
    }

    /// Reads a file's contents.
    pub fn read(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(|e| e.contents.as_str())
    }

    /// Returns every file (path, contents) in path order.
    pub fn files(&self) -> impl Iterator<Item = (&str, &ConfigEntry)> {
        self.files.iter().map(|(p, e)| (p.as_str(), e))
    }

    /// Removes a file.
    pub fn remove(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read() {
        let mut fs = ConfigFs::new();
        fs.write_admin("/etc/identxx/00-base.conf", "name: base");
        fs.write_user(
            "alice",
            "/home/alice/.identxx/app.conf",
            "name: research-app",
        );
        assert_eq!(fs.read("/etc/identxx/00-base.conf"), Some("name: base"));
        assert_eq!(fs.len(), 2);
        assert!(!fs.is_empty());
        assert!(fs.read("/nonexistent").is_none());
        assert_eq!(fs.files().count(), 2);
    }

    #[test]
    fn ownership_enforced_on_overwrite() {
        let mut fs = ConfigFs::new();
        fs.write_admin("/etc/identxx/00-base.conf", "admin content");
        fs.write_user("alice", "/home/alice/.identxx/app.conf", "alice content");

        // A user cannot modify admin files.
        assert!(!fs.try_overwrite(Some("alice"), "/etc/identxx/00-base.conf", "evil"));
        assert_eq!(fs.read("/etc/identxx/00-base.conf"), Some("admin content"));
        // A user can modify their own file.
        assert!(fs.try_overwrite(Some("alice"), "/home/alice/.identxx/app.conf", "updated"));
        assert_eq!(fs.read("/home/alice/.identxx/app.conf"), Some("updated"));
        // Another user cannot.
        assert!(!fs.try_overwrite(Some("mallory"), "/home/alice/.identxx/app.conf", "evil"));
        // The admin can modify anything.
        assert!(fs.try_overwrite(None, "/home/alice/.identxx/app.conf", "admin edit"));
        // Overwriting a missing file fails.
        assert!(!fs.try_overwrite(None, "/missing", "x"));
    }

    #[test]
    fn remove_files() {
        let mut fs = ConfigFs::new();
        fs.write_admin("/etc/identxx/a.conf", "x");
        assert!(fs.remove("/etc/identxx/a.conf"));
        assert!(!fs.remove("/etc/identxx/a.conf"));
        assert!(fs.is_empty());
    }
}
