//! Executable images.
//!
//! The daemon reports the hash and version of the executable behind a flow
//! (`exe-hash`, `version` keys). In the simulator an executable's "contents"
//! are synthesized deterministically from its path and version so that hashes
//! are stable across runs, change when the version changes, and can be
//! recomputed by signers (users, vendors, the "Secur" third party) when they
//! sign requirement bundles.

use identxx_crypto::sha256_hex;

/// An executable image installed on a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executable {
    /// Absolute path, e.g. `/usr/bin/skype` (configuration files are keyed by
    /// this path, see Fig. 3).
    pub path: String,
    /// Short name, e.g. `skype`.
    pub name: String,
    /// Version number (integer, as in the paper's `lt(@src[version], 200)`).
    pub version: i64,
    /// Vendor string.
    pub vendor: String,
    /// Application type (`voip`, `email-client`, …).
    pub app_type: String,
}

impl Executable {
    /// Creates an executable description.
    pub fn new(
        path: impl Into<String>,
        name: impl Into<String>,
        version: i64,
        vendor: impl Into<String>,
        app_type: impl Into<String>,
    ) -> Executable {
        Executable {
            path: path.into(),
            name: name.into(),
            version,
            vendor: vendor.into(),
            app_type: app_type.into(),
        }
    }

    /// The synthetic image bytes (deterministic function of path + version).
    pub fn image_bytes(&self) -> Vec<u8> {
        format!("ELF-IMAGE:{}:{}:{}", self.path, self.name, self.version).into_bytes()
    }

    /// The content hash reported as `exe-hash`.
    pub fn content_hash(&self) -> String {
        sha256_hex(&self.image_bytes())
    }

    /// A tampered copy (same path/name/version metadata but different image
    /// contents), used by tests that model a trojaned binary.
    pub fn tampered(&self) -> TamperedExecutable {
        TamperedExecutable {
            original: self.clone(),
        }
    }
}

/// An executable whose on-disk image no longer matches what was signed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperedExecutable {
    original: Executable,
}

impl TamperedExecutable {
    /// Metadata still claims to be the original.
    pub fn claimed(&self) -> &Executable {
        &self.original
    }

    /// The hash of the *actual* (tampered) image.
    pub fn actual_hash(&self) -> String {
        sha256_hex(&[self.original.image_bytes().as_slice(), b":backdoor"].concat())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_version_sensitive() {
        let skype_210 = Executable::new("/usr/bin/skype", "skype", 210, "skype.com", "voip");
        let skype_210_again = Executable::new("/usr/bin/skype", "skype", 210, "skype.com", "voip");
        let skype_150 = Executable::new("/usr/bin/skype", "skype", 150, "skype.com", "voip");
        assert_eq!(skype_210.content_hash(), skype_210_again.content_hash());
        assert_ne!(skype_210.content_hash(), skype_150.content_hash());
        assert_eq!(skype_210.content_hash().len(), 64);
    }

    #[test]
    fn different_paths_hash_differently() {
        let a = Executable::new("/usr/bin/a", "a", 1, "v", "t");
        let b = Executable::new("/usr/bin/b", "a", 1, "v", "t");
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn tampered_image_has_different_hash_but_same_claims() {
        let thunderbird = Executable::new(
            "/usr/bin/thunderbird",
            "thunderbird",
            78,
            "mozilla",
            "email-client",
        );
        let tampered = thunderbird.tampered();
        assert_eq!(tampered.claimed().name, "thunderbird");
        assert_ne!(tampered.actual_hash(), thunderbird.content_hash());
    }
}
