//! The simulated end-host: processes, sockets, users, and the lsof-style
//! flow-to-owner lookup the ident++ daemon relies on.

use identxx_proto::{FiveTuple, IpProtocol, Ipv4Addr};

use crate::configfs::ConfigFs;
use crate::exe::Executable;
use crate::process::{Process, ProcessId, SocketBinding};
use crate::user::{User, UserDb};

/// The result of resolving a flow to its owning process, as the daemon's
/// lsof-style lookup produces it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOwner {
    /// The owning process id.
    pub pid: ProcessId,
    /// The user running the process.
    pub user: User,
    /// The executable image.
    pub exe: Executable,
    /// Dynamic pairs the process registered for this flow.
    pub dynamic_pairs: Vec<(String, String)>,
}

/// A simulated end-host.
#[derive(Debug, Clone)]
pub struct Host {
    /// Host name.
    pub name: String,
    /// The host's IPv4 address.
    pub addr: Ipv4Addr,
    /// Operating-system identification (reported under the `os` key).
    pub os: String,
    /// Installed OS patches (reported under `os-patch`, space-separated).
    pub os_patches: Vec<String>,
    /// User database.
    pub users: UserDb,
    /// ident++ configuration files.
    pub config: ConfigFs,
    processes: Vec<Process>,
    sockets: Vec<(ProcessId, SocketBinding)>,
    next_pid: u32,
    /// Whether the host (and therefore its ident++ daemon) is compromised;
    /// used by the §5 security-analysis experiments.
    compromised: bool,
}

impl Host {
    /// Creates a host with default users and no processes.
    pub fn new(name: impl Into<String>, addr: Ipv4Addr) -> Host {
        Host {
            name: name.into(),
            addr,
            os: "SimOS 1.0".to_string(),
            os_patches: Vec::new(),
            users: UserDb::with_defaults(),
            config: ConfigFs::new(),
            processes: Vec::new(),
            sockets: Vec::new(),
            next_pid: 100,
            compromised: false,
        }
    }

    /// Adds a user account.
    pub fn add_user(&mut self, user: User) {
        self.users.add(user);
    }

    /// Records an installed OS patch (e.g. `MS08-067`).
    pub fn install_patch(&mut self, patch: impl Into<String>) {
        self.os_patches.push(patch.into());
    }

    /// The space-separated patch list reported as `os-patch`.
    pub fn patch_list(&self) -> String {
        self.os_patches.join(" ")
    }

    /// Starts a process for `user` running `exe`, returning its pid.
    /// Unknown users are created on the fly with a fresh uid (matching how a
    /// lab machine would have local accounts).
    pub fn spawn(&mut self, user: &str, exe: Executable) -> ProcessId {
        if self.users.get(user).is_none() {
            let uid = 1000 + self.processes.len() as u32;
            self.users.add(User::new(user, uid, &["users"]));
        }
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        self.processes.push(Process::new(pid, user, exe));
        pid
    }

    /// Registers a connected socket for a process: the process owns exactly
    /// this outbound flow (and its reverse direction).
    pub fn connect_flow(&mut self, pid: ProcessId, flow: FiveTuple) {
        self.sockets.push((pid, SocketBinding::Connected { flow }));
    }

    /// Registers a listening socket for a process on `port`/`protocol`.
    pub fn listen(&mut self, pid: ProcessId, protocol: IpProtocol, port: u16) {
        self.sockets
            .push((pid, SocketBinding::Listening { protocol, port }));
    }

    /// Lets a process register a dynamic key-value pair with the daemon (the
    /// Unix-domain-socket mechanism of §3.5).
    pub fn register_dynamic_pair(&mut self, pid: ProcessId, key: &str, value: &str) -> bool {
        match self.processes.iter_mut().find(|p| p.pid == pid) {
            Some(p) => {
                p.register_pair(key, value);
                true
            }
            None => false,
        }
    }

    /// Terminates a process, removing its sockets. Returns whether it existed.
    pub fn kill(&mut self, pid: ProcessId) -> bool {
        let existed = self.processes.iter().any(|p| p.pid == pid);
        self.processes.retain(|p| p.pid != pid);
        self.sockets.retain(|(owner, _)| *owner != pid);
        existed
    }

    /// Marks the host as compromised (§5.3). A compromised host's daemon can
    /// return arbitrary (attacker-chosen) responses; the daemon crate consults
    /// this flag.
    pub fn set_compromised(&mut self, compromised: bool) {
        self.compromised = compromised;
    }

    /// Whether the host is compromised.
    pub fn is_compromised(&self) -> bool {
        self.compromised
    }

    /// The running processes.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// Looks up a process by pid.
    pub fn process(&self, pid: ProcessId) -> Option<&Process> {
        self.processes.iter().find(|p| p.pid == pid)
    }

    /// The lsof-style lookup for a flow *originating from* this host: which
    /// process opened the connection described by `flow` (source = this host)?
    pub fn owner_of_outbound(&self, flow: &FiveTuple) -> Option<FlowOwner> {
        // Prefer exact connected sockets.
        let pid = self
            .sockets
            .iter()
            .find(|(_, b)| b.covers_outbound(flow))
            .map(|(pid, _)| *pid)?;
        self.owner_from_pid(pid)
    }

    /// The lsof-style lookup for a flow *arriving at* this host: which process
    /// has accepted — or is listening and would accept — the flow?
    pub fn owner_of_inbound(&self, flow: &FiveTuple) -> Option<FlowOwner> {
        // Prefer a connected socket (already-accepted connection) over a
        // listener, mirroring how lsof would show the established socket.
        let connected = self
            .sockets
            .iter()
            .find(|(_, b)| matches!(b, SocketBinding::Connected { .. }) && b.covers_inbound(flow))
            .map(|(pid, _)| *pid);
        let pid = match connected {
            Some(pid) => pid,
            None => self
                .sockets
                .iter()
                .find(|(_, b)| b.covers_inbound(flow))
                .map(|(pid, _)| *pid)?,
        };
        self.owner_from_pid(pid)
    }

    fn owner_from_pid(&self, pid: ProcessId) -> Option<FlowOwner> {
        let process = self.process(pid)?;
        let user = self
            .users
            .get(&process.user)
            .cloned()
            .unwrap_or_else(|| User::new(process.user.clone(), u32::MAX, &[]));
        Some(FlowOwner {
            pid,
            user,
            exe: process.exe.clone(),
            dynamic_pairs: process.dynamic_pairs.clone(),
        })
    }

    /// Convenience for scenarios: spawn a process, connect an outbound flow
    /// from this host to `dst:dst_port`, and return the flow.
    pub fn open_connection(
        &mut self,
        user: &str,
        exe: Executable,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
    ) -> FiveTuple {
        let pid = self.spawn(user, exe);
        let flow = FiveTuple::tcp(self.addr, src_port, dst, dst_port);
        self.connect_flow(pid, flow);
        flow
    }

    /// Convenience for scenarios: spawn a process listening on a TCP port.
    pub fn run_service(&mut self, user: &str, exe: Executable, port: u16) -> ProcessId {
        let pid = self.spawn(user, exe);
        self.listen(pid, IpProtocol::Tcp, port);
        pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skype() -> Executable {
        Executable::new("/usr/bin/skype", "skype", 210, "skype.com", "voip")
    }

    fn server_service() -> Executable {
        Executable::new(
            "/windows/system32/services.exe",
            "Server",
            6,
            "microsoft",
            "file-service",
        )
    }

    fn host() -> Host {
        Host::new("h1", Ipv4Addr::new(10, 0, 0, 1))
    }

    #[test]
    fn outbound_lookup_finds_connecting_process() {
        let mut h = host();
        let flow = h.open_connection("alice", skype(), 40000, Ipv4Addr::new(10, 0, 0, 2), 80);
        let owner = h.owner_of_outbound(&flow).unwrap();
        assert_eq!(owner.user.name, "alice");
        assert_eq!(owner.exe.name, "skype");
        // A different flow is not owned.
        let other = FiveTuple::tcp(h.addr, 40001, Ipv4Addr::new(10, 0, 0, 2), 80);
        assert!(h.owner_of_outbound(&other).is_none());
        // The reverse direction is not "outbound" from this host.
        assert!(h.owner_of_outbound(&flow.reversed()).is_none());
    }

    #[test]
    fn inbound_lookup_prefers_connected_over_listener() {
        let mut h = host();
        // The Server service listens on 445 as system.
        h.run_service("system", server_service(), 445);
        // alice also has an established connection on 445 from a peer.
        let peer_flow = FiveTuple::tcp(h.addr, 445, Ipv4Addr::new(10, 0, 0, 9), 51000);
        let alice_pid = h.spawn("alice", skype());
        h.connect_flow(alice_pid, peer_flow);

        // An arbitrary inbound flow to 445 resolves to the listener (system).
        let inbound = FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 7), 52000, h.addr, 445);
        assert_eq!(h.owner_of_inbound(&inbound).unwrap().user.name, "system");
        // The specific established connection resolves to alice.
        assert_eq!(
            h.owner_of_inbound(&peer_flow.reversed()).unwrap().user.name,
            "alice"
        );
    }

    #[test]
    fn unknown_flows_resolve_to_none() {
        let h = host();
        let flow = FiveTuple::tcp(h.addr, 1, Ipv4Addr::new(1, 1, 1, 1), 2);
        assert!(h.owner_of_outbound(&flow).is_none());
        assert!(h.owner_of_inbound(&flow.reversed()).is_none());
    }

    #[test]
    fn dynamic_pairs_flow_through_owner() {
        let mut h = host();
        let pid = h.spawn("alice", skype());
        assert!(h.register_dynamic_pair(pid, "user-initiated", "true"));
        assert!(!h.register_dynamic_pair(ProcessId(9999), "x", "y"));
        let flow = FiveTuple::tcp(h.addr, 40000, Ipv4Addr::new(10, 0, 0, 2), 80);
        h.connect_flow(pid, flow);
        let owner = h.owner_of_outbound(&flow).unwrap();
        assert_eq!(
            owner.dynamic_pairs,
            vec![("user-initiated".to_string(), "true".to_string())]
        );
    }

    #[test]
    fn kill_removes_process_and_sockets() {
        let mut h = host();
        let pid = h.run_service("system", server_service(), 445);
        let inbound = FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 7), 52000, h.addr, 445);
        assert!(h.owner_of_inbound(&inbound).is_some());
        assert!(h.kill(pid));
        assert!(!h.kill(pid));
        assert!(h.owner_of_inbound(&inbound).is_none());
        assert!(h.processes().is_empty());
    }

    #[test]
    fn patches_and_compromise_flags() {
        let mut h = host();
        h.install_patch("MS08-067");
        h.install_patch("MS09-001");
        assert_eq!(h.patch_list(), "MS08-067 MS09-001");
        assert!(!h.is_compromised());
        h.set_compromised(true);
        assert!(h.is_compromised());
    }

    #[test]
    fn spawn_creates_unknown_users() {
        let mut h = host();
        assert!(h.users.get("mallory").is_none());
        h.spawn("mallory", skype());
        assert!(h.users.get("mallory").is_some());
    }
}
