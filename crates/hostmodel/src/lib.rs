//! # identxx-hostmodel — simulated end-hosts
//!
//! The ident++ daemon needs operating-system facilities the paper takes for
//! granted: "The ident++ daemon uses the 5-tuple in the query packet to find
//! the process ID and user ID associated with the flow using techniques
//! similar to lsof. The daemon uses the process ID to find the file name of
//! the process's executable image" (§3.5), plus configuration files under
//! `/etc/identxx` and per-user directories, and a local socket on which
//! applications register dynamic key-value pairs.
//!
//! Real hosts are not available to the reproduction, so this crate models
//! them: users and groups, executable images (with content hashes computed by
//! `identxx-crypto`), processes, socket bindings, an in-memory configuration
//! filesystem with admin/user ownership, and the lsof-style 5-tuple lookup.
//! The mapping is faithful enough that the daemon code in `identxx-daemon`
//! would port to a real OS by replacing this crate's lookups with
//! `/proc`-based ones.

pub mod configfs;
pub mod exe;
pub mod host;
pub mod process;
pub mod user;

pub use configfs::{ConfigFs, ConfigOwner};
pub use exe::Executable;
pub use host::{FlowOwner, Host};
pub use process::{Process, ProcessId, SocketBinding};
pub use user::{User, UserDb};
