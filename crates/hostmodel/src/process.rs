//! Processes and socket bindings.

use identxx_proto::{FiveTuple, IpProtocol};

use crate::exe::Executable;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// A running process.
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    /// The process id.
    pub pid: ProcessId,
    /// The login name of the user running the process.
    pub user: String,
    /// The executable image the process was started from.
    pub exe: Executable,
    /// Dynamic key-value pairs the application registered with the ident++
    /// daemon over the local socket (§3.5: "The application can provide
    /// key-value pairs to the ident++ daemon at run-time").
    pub dynamic_pairs: Vec<(String, String)>,
}

impl Process {
    /// Creates a process.
    pub fn new(pid: ProcessId, user: impl Into<String>, exe: Executable) -> Process {
        Process {
            pid,
            user: user.into(),
            exe,
            dynamic_pairs: Vec::new(),
        }
    }

    /// Registers a dynamic key-value pair (e.g. a browser tagging a flow as
    /// user-initiated).
    pub fn register_pair(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.dynamic_pairs.push((key.into(), value.into()));
    }
}

/// How a socket is bound to a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketBinding {
    /// An active (connected) socket identified by the full local/remote
    /// 4-tuple — the process initiated or accepted this exact flow.
    Connected {
        /// The flow as seen from this host (local = source).
        flow: FiveTuple,
    },
    /// A listening socket bound to a local port: the process would receive
    /// any flow addressed to this port/protocol. This is how the daemon
    /// answers for "a destination that has yet to accept a connection" (§3.5).
    Listening {
        /// The protocol.
        protocol: IpProtocol,
        /// The local port.
        port: u16,
    },
}

impl SocketBinding {
    /// Whether this binding covers the given flow *arriving at* the host
    /// (i.e. the host is the flow's destination).
    pub fn covers_inbound(&self, flow: &FiveTuple) -> bool {
        match self {
            SocketBinding::Connected { flow: bound } => {
                // The bound flow is recorded from the host's perspective
                // (host = source); an inbound packet matches its reverse.
                bound.reversed() == *flow || *bound == *flow
            }
            SocketBinding::Listening { protocol, port } => {
                *protocol == flow.protocol && *port == flow.dst_port
            }
        }
    }

    /// Whether this binding covers the given flow *originating from* the host
    /// (i.e. the host is the flow's source).
    pub fn covers_outbound(&self, flow: &FiveTuple) -> bool {
        match self {
            SocketBinding::Connected { flow: bound } => *bound == *flow,
            SocketBinding::Listening { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exe() -> Executable {
        Executable::new("/usr/bin/skype", "skype", 210, "skype.com", "voip")
    }

    #[test]
    fn process_dynamic_pairs() {
        let mut p = Process::new(ProcessId(100), "alice", exe());
        assert!(p.dynamic_pairs.is_empty());
        p.register_pair("user-initiated", "true");
        assert_eq!(p.dynamic_pairs.len(), 1);
        assert_eq!(p.user, "alice");
        assert_eq!(p.exe.name, "skype");
    }

    #[test]
    fn connected_binding_covers_both_directions() {
        let outbound = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        let binding = SocketBinding::Connected { flow: outbound };
        assert!(binding.covers_outbound(&outbound));
        assert!(!binding.covers_outbound(&outbound.reversed()));
        // Inbound packets of the same connection (reverse direction) are covered.
        assert!(binding.covers_inbound(&outbound.reversed()));
        // A different flow is not.
        let other = FiveTuple::tcp([10, 0, 0, 1], 40001, [10, 0, 0, 2], 80);
        assert!(!binding.covers_outbound(&other));
        assert!(!binding.covers_inbound(&other));
    }

    #[test]
    fn listening_binding_covers_any_inbound_to_port() {
        let binding = SocketBinding::Listening {
            protocol: IpProtocol::Tcp,
            port: 445,
        };
        let inbound = FiveTuple::tcp([10, 9, 9, 9], 51000, [10, 0, 0, 2], 445);
        let wrong_port = FiveTuple::tcp([10, 9, 9, 9], 51000, [10, 0, 0, 2], 80);
        let wrong_proto = FiveTuple::udp([10, 9, 9, 9], 51000, [10, 0, 0, 2], 445);
        assert!(binding.covers_inbound(&inbound));
        assert!(!binding.covers_inbound(&wrong_port));
        assert!(!binding.covers_inbound(&wrong_proto));
        assert!(!binding.covers_outbound(&inbound));
    }
}
