//! Users and groups on a simulated host.

use std::collections::BTreeMap;

/// A user account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    /// Login name (the value of the `userID` key in ident++ responses).
    pub name: String,
    /// Numeric uid.
    pub uid: u32,
    /// Groups the user belongs to, primary group first (the `groupID` key is
    /// the space-separated list).
    pub groups: Vec<String>,
}

impl User {
    /// Creates a user.
    pub fn new(name: impl Into<String>, uid: u32, groups: &[&str]) -> User {
        User {
            name: name.into(),
            uid,
            groups: groups.iter().map(|g| g.to_string()).collect(),
        }
    }

    /// The space-separated group list, as reported in responses.
    pub fn group_list(&self) -> String {
        self.groups.join(" ")
    }

    /// Whether the user is a member of `group`.
    pub fn in_group(&self, group: &str) -> bool {
        self.groups.iter().any(|g| g == group)
    }

    /// Whether this is the superuser.
    pub fn is_root(&self) -> bool {
        self.uid == 0
    }
}

/// The user database of a host.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UserDb {
    by_name: BTreeMap<String, User>,
}

impl UserDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        UserDb::default()
    }

    /// A database pre-populated with `root` and the well-known `system` user.
    pub fn with_defaults() -> Self {
        let mut db = UserDb::new();
        db.add(User::new("root", 0, &["root", "wheel"]));
        db.add(User::new("system", 1, &["system"]));
        db
    }

    /// Adds (or replaces) a user.
    pub fn add(&mut self, user: User) {
        self.by_name.insert(user.name.clone(), user);
    }

    /// Looks up a user by name.
    pub fn get(&self, name: &str) -> Option<&User> {
        self.by_name.get(name)
    }

    /// Looks up a user by uid.
    pub fn get_by_uid(&self, uid: u32) -> Option<&User> {
        self.by_name.values().find(|u| u.uid == uid)
    }

    /// All members of a group.
    pub fn members_of(&self, group: &str) -> Vec<&User> {
        self.by_name
            .values()
            .filter(|u| u.in_group(group))
            .collect()
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_groups_and_root() {
        let alice = User::new("alice", 1001, &["users", "research"]);
        assert_eq!(alice.group_list(), "users research");
        assert!(alice.in_group("research"));
        assert!(!alice.in_group("wheel"));
        assert!(!alice.is_root());
        assert!(User::new("root", 0, &["root"]).is_root());
    }

    #[test]
    fn db_lookup_by_name_uid_and_group() {
        let mut db = UserDb::with_defaults();
        db.add(User::new("alice", 1001, &["users", "research"]));
        db.add(User::new("bob", 1002, &["users"]));
        assert_eq!(db.get("alice").unwrap().uid, 1001);
        assert_eq!(db.get_by_uid(1002).unwrap().name, "bob");
        assert!(db.get("carol").is_none());
        assert_eq!(db.members_of("users").len(), 2);
        assert_eq!(db.members_of("research").len(), 1);
        assert_eq!(db.len(), 4);
        assert!(!db.is_empty());
    }

    #[test]
    fn defaults_contain_system_user() {
        let db = UserDb::with_defaults();
        assert!(db.get("system").is_some());
        assert!(db.get("root").unwrap().is_root());
    }
}
