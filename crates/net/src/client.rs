//! The controller-side query client.

use std::io;
use std::net::SocketAddr;
use std::time::Duration;

use bytes::BytesMut;
use identxx_proto::{Query, Response, WireMessage};
use tokio::net::TcpStream;
use tokio::time::timeout;

use crate::framing::{read_message, write_message};

/// How long the controller waits for a daemon before concluding the host will
/// not answer. A short bound matters: flow setup blocks on this round trip.
pub const QUERY_TIMEOUT: Duration = Duration::from_secs(2);

/// Sends `query` to the daemon at `addr` and waits for its response.
///
/// Returns `Ok(None)` when the daemon closes the connection without answering
/// or does not answer within [`QUERY_TIMEOUT`] — the controller treats both as
/// "no information from this end-host" and lets the policy decide.
pub async fn query_daemon(addr: SocketAddr, query: Query) -> io::Result<Option<Response>> {
    let attempt = async {
        let mut stream = TcpStream::connect(addr).await?;
        write_message(&mut stream, &WireMessage::Query(query)).await?;
        let mut buf = BytesMut::new();
        match read_message(&mut stream, &mut buf).await? {
            Some(WireMessage::Response(response)) => Ok(Some(response)),
            Some(WireMessage::Query(_)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "daemon sent a query instead of a response",
            )),
            None => Ok(None),
        }
    };
    match timeout(QUERY_TIMEOUT, attempt).await {
        Ok(result) => result,
        Err(_elapsed) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_proto::FiveTuple;

    #[tokio::test]
    async fn unreachable_daemon_is_an_error() {
        // Port 1 on localhost is almost certainly closed; connect fails fast.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let flow = FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        let result = query_daemon(addr, Query::new(flow)).await;
        assert!(result.is_err() || result.unwrap().is_none());
    }
}
