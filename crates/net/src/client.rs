//! The controller-side query client.

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use identxx_proto::{Query, Response, WireMessage};
use tokio::net::TcpStream;
use tokio::time::timeout;

use crate::framing::{read_message, write_message};
use crate::retry::RetryPolicy;

/// How long the controller waits for a daemon before concluding the host will
/// not answer. A short bound matters: flow setup blocks on this round trip.
pub const QUERY_TIMEOUT: Duration = Duration::from_secs(2);

/// Sends `query` to the daemon at `addr` and waits for its response.
///
/// Returns `Ok(None)` when the daemon closes the connection without answering
/// or does not answer within [`QUERY_TIMEOUT`] — the controller treats both as
/// "no information from this end-host" and lets the policy decide.
pub async fn query_daemon(addr: SocketAddr, query: Query) -> io::Result<Option<Response>> {
    let attempt = async {
        let mut stream = TcpStream::connect(addr).await?;
        write_message(&mut stream, &WireMessage::Query(query)).await?;
        let mut buf = BytesMut::new();
        match read_message(&mut stream, &mut buf).await? {
            Some(WireMessage::Response(response)) => Ok(Some(response)),
            Some(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "daemon sent a non-response frame instead of a response",
            )),
            None => Ok(None),
        }
    };
    match timeout(QUERY_TIMEOUT, attempt).await {
        Ok(result) => result,
        Err(_elapsed) => Ok(None),
    }
}

/// A connection-reusing client for one daemon endpoint.
///
/// The controller's flow-setup path queries the same hosts over and over; a
/// fresh TCP handshake per query would double every round trip. `QueryClient`
/// keeps the connection from the previous query open (the [`DaemonServer`]
/// serves any number of queries per connection) and transparently reconnects
/// once when a pooled connection turns out to have gone stale.
///
/// The core is **async**: every exchange is a future on the runtime's
/// reactor, with the deadline enforced by the timer wheel — when it fires,
/// the suspended read (or the in-progress connect) is preempted and the
/// exchange resolves to "no answer", so a hung or trickling peer costs
/// exactly the budget, never a wedged thread. `NetworkBackend` in
/// `identxx-controller` joins one such future per involved host under a
/// single shared deadline. The synchronous methods ([`QueryClient::query`],
/// [`QueryClient::query_batch`], and the `_deadline` variants) are thin
/// `block_on` shims kept for the blocking API surface.
///
/// [`DaemonServer`]: crate::server::DaemonServer
pub struct QueryClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    buf: BytesMut,
    retry: RetryPolicy,
    /// Exchanges completed so far — the jitter salt, so successive retries
    /// against the same host land on different schedule points.
    exchanges: u64,
}

impl std::fmt::Debug for QueryClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryClient")
            .field("addr", &self.addr)
            .field("connected", &self.stream.is_some())
            .finish()
    }
}

impl QueryClient {
    /// Creates a client for the daemon at `addr`. No connection is opened
    /// until the first query.
    pub fn new(addr: SocketAddr) -> QueryClient {
        QueryClient {
            addr,
            stream: None,
            buf: BytesMut::new(),
            retry: RetryPolicy::default(),
            exchanges: 0,
        }
    }

    /// Replaces the retry policy (default: [`RetryPolicy::default`], three
    /// jittered attempts). Both the singleton and batch paths go through it.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> QueryClient {
        self.retry = policy;
        self
    }

    /// The retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The daemon endpoint this client queries.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a pooled connection is currently open.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Sends `query` and waits for the daemon's response, giving the whole
    /// exchange (connect included) until `deadline`.
    ///
    /// Returns `Ok(None)` when the daemon does not answer in budget, closes
    /// the connection without answering (a silent daemon), or the budget was
    /// already exhausted; `Err` when the host is unreachable (e.g. nothing
    /// listens on the port). The controller treats both as "no information
    /// from this end-host".
    pub async fn query_deadline_async(
        &mut self,
        query: &Query,
        deadline: Instant,
    ) -> io::Result<Option<Response>> {
        match self
            .exchange(&WireMessage::Query(query.clone()), deadline)
            .await?
        {
            Some(WireMessage::Response(response)) => Ok(Some(response)),
            Some(_) => {
                self.disconnect();
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "daemon sent a non-response frame instead of a response",
                ))
            }
            None => Ok(None),
        }
    }

    /// Blocking shim over [`QueryClient::query_deadline_async`].
    pub fn query_deadline(
        &mut self,
        query: &Query,
        deadline: Instant,
    ) -> io::Result<Option<Response>> {
        tokio::runtime::block_on(self.query_deadline_async(query, deadline))
    }

    /// [`QueryClient::query_deadline`] with a relative timeout.
    pub fn query(&mut self, query: &Query, budget: Duration) -> io::Result<Option<Response>> {
        self.query_deadline(query, Instant::now() + budget)
    }

    /// Sends every query in one `QUERY-BATCH` frame and waits for the
    /// daemon's single `RESPONSE-BATCH`, giving the whole round trip until
    /// `deadline`. Returns one slot per query, in query order; responses are
    /// matched to queries by flow (the daemon omits flows it has no
    /// information about). A daemon that closes without answering — silent,
    /// or with no information on *any* of the flows — yields all `None`.
    ///
    /// Batches larger than [`identxx_proto::wire::MAX_BATCH`] are split into
    /// several frames on the same connection, still under the one deadline.
    /// A transport failure part-way through (daemon died between chunks,
    /// deadline exhausted) costs only the *remaining* chunks their answers
    /// — slots already filled by earlier chunks are kept, because those
    /// flows really were answered. Only a protocol violation (a reply that
    /// is not a response batch) is an `Err`.
    pub async fn query_batch_deadline_async(
        &mut self,
        queries: &[Query],
        deadline: Instant,
    ) -> io::Result<Vec<Option<Response>>> {
        let mut out = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(identxx_proto::wire::MAX_BATCH.max(1)) {
            // Unreachable/reset/timed-out transport (`Err`): this chunk
            // (and likely the rest) has no answers, but earlier chunks'
            // responses arrived and stay valid.
            let exchanged = self
                .exchange(&WireMessage::QueryBatch(chunk.to_vec()), deadline)
                .await
                .unwrap_or_default();
            match exchanged {
                Some(WireMessage::ResponseBatch(responses)) => {
                    let mut slots: Vec<Option<Response>> = vec![None; chunk.len()];
                    for response in responses {
                        // Match by flow; a duplicated flow in the batch fills
                        // its slots in query order.
                        if let Some(slot) = chunk
                            .iter()
                            .zip(slots.iter_mut())
                            .find(|(q, slot)| q.flow == response.flow && slot.is_none())
                            .map(|(_, slot)| slot)
                        {
                            *slot = Some(response);
                        }
                    }
                    out.extend(slots);
                }
                Some(_) => {
                    self.disconnect();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "daemon answered a query batch with a non-batch frame",
                    ));
                }
                // No answer for the whole chunk (timeout, silent daemon, or
                // no information about any flow in it).
                None => out.extend(chunk.iter().map(|_| None)),
            }
        }
        Ok(out)
    }

    /// Blocking shim over [`QueryClient::query_batch_deadline_async`].
    pub fn query_batch_deadline(
        &mut self,
        queries: &[Query],
        deadline: Instant,
    ) -> io::Result<Vec<Option<Response>>> {
        tokio::runtime::block_on(self.query_batch_deadline_async(queries, deadline))
    }

    /// [`QueryClient::query_batch_deadline`] with a relative timeout.
    pub fn query_batch(
        &mut self,
        queries: &[Query],
        budget: Duration,
    ) -> io::Result<Vec<Option<Response>>> {
        self.query_batch_deadline(queries, Instant::now() + budget)
    }

    /// Drops the pooled connection (the next query reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
        self.buf.clear();
    }

    /// One request/response round trip, driven through the client's
    /// [`RetryPolicy`].
    ///
    /// Two kinds of retry compose here. A *reused* pooled connection that
    /// fails gets one free immediate reconnect — the server may simply have
    /// dropped the idle socket since the last query, which says nothing
    /// about the daemon's health, so it neither consumes an attempt nor
    /// backs off. Genuine fresh-connection failures (refused, reset
    /// mid-exchange) consume attempts from the policy, with the jittered
    /// exponential backoff slept between them and the whole schedule capped
    /// by `deadline`: when the next backoff would overrun it, or the
    /// attempts are spent, the last error surfaces.
    async fn exchange(
        &mut self,
        request: &WireMessage,
        deadline: Instant,
    ) -> io::Result<Option<WireMessage>> {
        let salt = self.exchanges;
        self.exchanges = self.exchanges.wrapping_add(1);
        let mut attempts = 0u32;
        loop {
            let reused = self.stream.is_some();
            match self.attempt(request, deadline).await {
                Ok(outcome) => return Ok(outcome),
                Err(err) if reused => {
                    // Free retry: a stale pooled connection is not a failed
                    // daemon. The next iteration runs on a fresh connection.
                    self.disconnect();
                    let _ = err;
                }
                Err(err) => {
                    self.disconnect();
                    attempts += 1;
                    if !self.retry.allows_retry(attempts, Some(deadline), salt) {
                        return Err(err);
                    }
                    let delay = self.retry.delay_before(attempts, salt);
                    if !delay.is_zero() {
                        tokio::time::sleep(delay).await;
                    }
                }
            }
        }
    }

    /// One attempt at the exchange: (re)connect if needed, send the frame,
    /// read the reply — the whole sequence raced against `deadline` by the
    /// runtime's timer wheel. An elapsed deadline is "no answer", and the
    /// connection is dropped because a late response could still arrive on
    /// the socket and alias the next query.
    async fn attempt(
        &mut self,
        request: &WireMessage,
        deadline: Instant,
    ) -> io::Result<Option<WireMessage>> {
        let Some(remaining) = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
        else {
            // Budget exhausted before we could even send: no answer.
            return Ok(None);
        };
        let reused = self.stream.is_some();
        if self.stream.is_none() {
            self.buf.clear();
            match timeout(remaining, TcpStream::connect(self.addr)).await {
                Ok(Ok(stream)) => self.stream = Some(stream),
                // Unreachable endpoint: a real transport error.
                Ok(Err(err)) => return Err(err),
                // Budget exhausted mid-connect: no answer.
                Err(_elapsed) => return Ok(None),
            }
        }
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
            .unwrap_or(Duration::from_micros(1));
        let stream = self.stream.as_mut().expect("connected above");
        let buf = &mut self.buf;
        let round_trip = async {
            write_message(stream, request).await?;
            read_message(stream, buf).await
        };
        match timeout(remaining, round_trip).await {
            Ok(Ok(Some(message))) => Ok(Some(message)),
            Ok(Ok(None)) => {
                // Clean close without an answer. On a fresh connection this
                // is the silent-daemon shape: "no information from this
                // end-host". On a reused one the server may simply have
                // dropped the pooled connection — report it as an error so
                // the caller's single retry reconnects.
                self.disconnect();
                if reused {
                    Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "pooled connection closed without answering",
                    ))
                } else {
                    Ok(None)
                }
            }
            Ok(Err(err)) => {
                self.disconnect();
                Err(err)
            }
            Err(_elapsed) => {
                // Deadline passed mid-exchange — whether the peer stalled
                // outright or trickled bytes, the timer wheel preempts the
                // suspended read. A late response could still arrive on this
                // socket, so it cannot be pooled.
                self.disconnect();
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::DaemonServer;
    use identxx_daemon::Daemon;
    use identxx_hostmodel::{Executable, Host};
    use identxx_proto::{well_known, FiveTuple, Ipv4Addr};

    #[tokio::test]
    async fn unreachable_daemon_is_an_error() {
        // Port 1 on localhost is almost certainly closed; connect fails fast.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let flow = FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        let result = query_daemon(addr, Query::new(flow)).await;
        assert!(result.is_err() || result.unwrap().is_none());
    }

    fn test_daemon() -> (Daemon, FiveTuple) {
        let mut daemon = Daemon::bare(Host::new("h1", Ipv4Addr::new(10, 0, 0, 1)));
        let exe = Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser");
        let flow =
            daemon
                .host_mut()
                .open_connection("alice", exe, 40000, Ipv4Addr::new(10, 0, 0, 2), 80);
        (daemon, flow)
    }

    #[tokio::test]
    async fn query_client_reuses_one_connection() {
        let (daemon, flow) = test_daemon();
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut client = QueryClient::new(server.local_addr());
        assert!(!client.is_connected());
        for _ in 0..3 {
            let response = client
                .query(&Query::new(flow), Duration::from_secs(2))
                .unwrap()
                .expect("daemon answers");
            assert_eq!(response.latest(well_known::USER_ID), Some("alice"));
        }
        assert!(client.is_connected(), "connection should be pooled");
        assert_eq!(server.queries_served(), 3);
        server.shutdown();
    }

    #[tokio::test]
    async fn query_client_reconnects_after_stale_pooled_connection() {
        // A raw server that closes every connection after one response, so
        // the client's pooled connection is *guaranteed* stale on the second
        // query and the transparent-retry path must actually run (a
        // `DaemonServer` restart can't force this: its in-flight connection
        // tasks keep serving across shutdown).
        let (_, flow) = test_daemon();
        let mut response = Response::new(flow);
        let mut section = identxx_proto::Section::new();
        section.push("userID", "alice");
        response.push_section(section);
        let frame = WireMessage::Response(response).encode();

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let connections_served = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let server_connections = std::sync::Arc::clone(&connections_served);
        std::thread::spawn(move || {
            use std::io::{Read, Write};
            for _ in 0..2 {
                let (mut peer, _) = listener.accept().unwrap();
                let mut sink = [0u8; 1024];
                let _ = peer.read(&mut sink); // the query
                                              // Count before answering: the client may assert the moment
                                              // it has read the response.
                server_connections.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                peer.write_all(&frame).unwrap();
                let _ = peer.flush();
                // Dropping `peer` closes the connection: the pooled client
                // socket is now stale.
            }
        });

        let mut client = QueryClient::new(addr);
        assert!(client
            .query(&Query::new(flow), Duration::from_secs(2))
            .unwrap()
            .is_some());
        assert!(client.is_connected());
        let second = client
            .query(&Query::new(flow), Duration::from_secs(2))
            .unwrap();
        assert!(second.is_some(), "retry must reconnect and succeed");
        assert_eq!(
            connections_served.load(std::sync::atomic::Ordering::SeqCst),
            2,
            "the second answer must have come over a fresh connection"
        );
    }

    #[tokio::test]
    async fn query_client_times_out_instead_of_hanging() {
        let (mut daemon, flow) = test_daemon();
        // 300 ms of artificial daemon latency against a 50 ms budget.
        daemon.set_response_delay_micros(300_000);
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut client = QueryClient::new(server.local_addr());
        let started = Instant::now();
        let result = client
            .query(&Query::new(flow), Duration::from_millis(50))
            .unwrap();
        assert!(result.is_none(), "late answer must be treated as absent");
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "the deadline must preempt the read"
        );
        assert!(!client.is_connected(), "timed-out socket cannot be pooled");
        server.shutdown();
    }

    #[tokio::test]
    async fn hung_peer_is_cancelled_at_the_deadline() {
        // A peer that accepts the connection and then never sends a byte —
        // the worst case for the historical runtime, where a polled timeout
        // could not preempt the blocked read. The timer wheel must cancel
        // the exchange at the deadline and leave nothing pooled.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (peer, _) = listener.accept().unwrap();
            use std::io::Read;
            let mut sink = [0u8; 256];
            // Swallow the query, answer nothing, and hold the socket open
            // until the client abandons it.
            while let Ok(n) = (&peer).read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
        });
        let mut client = QueryClient::new(addr);
        let flow = FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        let started = Instant::now();
        let result = client
            .query(&Query::new(flow), Duration::from_millis(100))
            .unwrap();
        let elapsed = started.elapsed();
        assert!(result.is_none(), "a hung peer is no information");
        assert!(
            elapsed >= Duration::from_millis(95),
            "the client must wait out its budget ({elapsed:?})"
        );
        assert!(
            elapsed < Duration::from_millis(1000),
            "the deadline must actually cancel the hung exchange ({elapsed:?})"
        );
        assert!(!client.is_connected(), "a hung socket cannot be pooled");
    }

    #[tokio::test]
    async fn query_client_deadline_defeats_byte_trickling() {
        // A hostile peer that sends one byte per almost-timeout: the whole
        // exchange races one timer-wheel deadline, so trickling buys the
        // peer nothing.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut peer, _) = listener.accept().unwrap();
            use std::io::{Read, Write};
            let mut sink = [0u8; 256];
            let _ = peer.read(&mut sink); // swallow the query
            loop {
                if peer.write_all(b"I").is_err() {
                    return; // client gave up and closed
                }
                let _ = peer.flush();
                std::thread::sleep(Duration::from_millis(60));
            }
        });
        let mut client = QueryClient::new(addr);
        let flow = FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        let started = Instant::now();
        let result = client
            .query(&Query::new(flow), Duration::from_millis(150))
            .unwrap();
        assert!(result.is_none(), "a trickled frame is not an answer");
        assert!(
            started.elapsed() < Duration::from_millis(600),
            "trickling must not stretch the budget (elapsed {:?})",
            started.elapsed()
        );
        assert!(!client.is_connected());
    }

    #[tokio::test]
    async fn query_client_unreachable_endpoint_is_an_error() {
        let mut client = QueryClient::new("127.0.0.1:1".parse().unwrap());
        let flow = FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        assert!(client
            .query(&Query::new(flow), Duration::from_millis(200))
            .is_err());
    }

    #[tokio::test]
    async fn query_batch_answers_known_flows_and_omits_unknown() {
        let (mut daemon, flow) = test_daemon();
        // Stage a second flow on the same host so the batch spans two flows
        // the daemon knows and one it does not.
        let ssh = Executable::new("/usr/bin/ssh", "ssh", 100, "openbsd", "shell");
        let flow2 =
            daemon
                .host_mut()
                .open_connection("alice", ssh, 40001, Ipv4Addr::new(10, 0, 0, 3), 22);
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut client = QueryClient::new(server.local_addr());
        let stranger = FiveTuple::tcp([10, 0, 9, 9], 1, [10, 0, 9, 8], 2);
        let queries = vec![
            Query::new(flow).with_key(well_known::USER_ID),
            Query::new(stranger),
            Query::new(flow2),
        ];
        let answers = client
            .query_batch(&queries, Duration::from_secs(2))
            .unwrap();
        assert_eq!(answers.len(), 3);
        assert_eq!(
            answers[0].as_ref().unwrap().latest(well_known::USER_ID),
            Some("alice")
        );
        assert!(answers[1].is_none(), "unknown flow is unanswered");
        assert_eq!(
            answers[2].as_ref().unwrap().latest(well_known::APP_NAME),
            Some("ssh")
        );
        assert_eq!(server.queries_served(), 2);
        assert!(
            client.is_connected(),
            "batch exchanges pool the connection too"
        );
        // The same connection serves singleton queries afterwards.
        assert!(client
            .query(&Query::new(flow), Duration::from_secs(2))
            .unwrap()
            .is_some());
        server.shutdown();
    }

    #[tokio::test]
    async fn query_batch_keeps_earlier_chunks_when_a_later_chunk_fails() {
        // 70 queries split into a 64-chunk and a 6-chunk. A raw server
        // answers the first chunk fully, then dies: the second chunk's
        // failure must cost only its own slots, not the 64 answers that
        // already arrived.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            use std::io::{Read, Write};
            let (mut peer, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            let queries = loop {
                let n = peer.read(&mut chunk).unwrap();
                buf.extend_from_slice(&chunk[..n]);
                if let Some((WireMessage::QueryBatch(queries), _)) =
                    WireMessage::decode(&buf).unwrap()
                {
                    break queries;
                }
            };
            let answers: Vec<Response> = queries
                .iter()
                .map(|q| {
                    let mut r = Response::new(q.flow);
                    let mut s = identxx_proto::Section::new();
                    s.push("userID", "alice");
                    r.push_section(s);
                    r
                })
                .collect();
            peer.write_all(&WireMessage::ResponseBatch(answers).encode())
                .unwrap();
            let _ = peer.flush();
            // Dropping the listener and the connection kills the daemon
            // before the second chunk can be served.
        });

        let mut client = QueryClient::new(addr);
        let queries: Vec<Query> = (0..70u16)
            .map(|i| Query::new(FiveTuple::tcp([10, 0, 0, 1], 30_000 + i, [10, 0, 0, 2], 80)))
            .collect();
        let answers = client
            .query_batch(&queries, Duration::from_secs(2))
            .unwrap();
        assert_eq!(answers.len(), 70);
        assert!(
            answers[..64].iter().all(|a| a.is_some()),
            "the answered first chunk must be kept"
        );
        assert!(
            answers[64..].iter().all(|a| a.is_none()),
            "the failed second chunk is unanswered, not an error"
        );
    }

    #[tokio::test]
    async fn query_batch_silent_daemon_is_all_unanswered() {
        let (mut daemon, flow) = test_daemon();
        daemon.set_silent(true);
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut client = QueryClient::new(server.local_addr());
        let queries = vec![Query::new(flow), Query::new(flow.reversed())];
        let answers = client
            .query_batch(&queries, Duration::from_secs(2))
            .unwrap();
        assert_eq!(answers, vec![None, None]);
        assert_eq!(server.queries_served(), 0);
        server.shutdown();
    }

    #[tokio::test]
    async fn query_client_silent_daemon_is_no_answer() {
        let (mut daemon, flow) = test_daemon();
        daemon.set_silent(true);
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut client = QueryClient::new(server.local_addr());
        let result = client
            .query(&Query::new(flow), Duration::from_secs(2))
            .unwrap();
        assert!(result.is_none());
        server.shutdown();
    }
}
