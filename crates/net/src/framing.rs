//! Async framing of ident++ wire messages over byte streams.
//!
//! Deadlines are the caller's business: both helpers suspend on socket
//! readiness, so wrapping a call in `tokio::time::timeout` bounds the whole
//! frame — the timer wheel preempts a read mid-frame, which is what defeats
//! both hung and byte-trickling peers (the blocking per-syscall
//! `SO_RCVTIMEO` machinery this module used to carry is gone with the
//! thread-per-connection transport).

use std::io;

use bytes::BytesMut;
use identxx_proto::{ProtoError, WireMessage};
use tokio::io::{AsyncReadExt, AsyncWriteExt};

/// Upper bound on a single frame (header + body); anything larger is treated
/// as a protocol violation and the connection is dropped. Sized to admit a
/// full batch frame ([`identxx_proto::wire::MAX_BATCH_BODY`] plus header
/// slack); the proto-level limits reject oversized frames before the buffer
/// grows anywhere near this bound.
const MAX_FRAME: usize = identxx_proto::wire::MAX_BATCH_BODY + 4096;

fn proto_to_io(err: ProtoError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// Reads one framed [`WireMessage`] from a stream. Returns `Ok(None)` on a
/// clean end-of-stream before any bytes of a new frame were read.
pub async fn read_message<R>(stream: &mut R, buf: &mut BytesMut) -> io::Result<Option<WireMessage>>
where
    R: AsyncReadExt + Unpin,
{
    loop {
        if let Some((msg, used)) = WireMessage::decode(buf).map_err(proto_to_io)? {
            let _ = buf.split_to(used);
            return Ok(Some(msg));
        }
        if buf.len() > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds maximum size",
            ));
        }
        let n = stream.read_buf(buf).await?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
    }
}

/// Writes one framed [`WireMessage`] to a stream.
pub async fn write_message<W>(stream: &mut W, message: &WireMessage) -> io::Result<()>
where
    W: AsyncWriteExt + Unpin,
{
    stream.write_all(&message.encode()).await?;
    stream.flush().await
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_proto::{FiveTuple, Query, Response, Section};

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 50000, [10, 0, 0, 2], 80)
    }

    fn sample_response() -> Response {
        let mut r = Response::new(flow());
        let mut s = Section::new();
        s.push("userID", "alice");
        r.push_section(s);
        r
    }

    #[tokio::test]
    async fn round_trip_over_duplex_stream() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        let query = WireMessage::Query(Query::new(flow()).with_key("userID"));
        let response = WireMessage::Response(sample_response());

        write_message(&mut a, &query).await.unwrap();
        write_message(&mut a, &response).await.unwrap();
        drop(a);

        let mut buf = BytesMut::new();
        let first = read_message(&mut b, &mut buf).await.unwrap().unwrap();
        let second = read_message(&mut b, &mut buf).await.unwrap().unwrap();
        let third = read_message(&mut b, &mut buf).await.unwrap();
        assert_eq!(first, query);
        assert_eq!(second, response);
        assert_eq!(third, None);
    }

    #[tokio::test]
    async fn truncated_stream_is_an_error() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        let encoded = WireMessage::Response(sample_response()).encode();
        // Send only half the frame and close.
        tokio::io::AsyncWriteExt::write_all(&mut a, &encoded[..encoded.len() / 2])
            .await
            .unwrap();
        drop(a);
        let mut buf = BytesMut::new();
        let err = read_message(&mut b, &mut buf).await.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[tokio::test]
    async fn garbage_is_invalid_data() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        tokio::io::AsyncWriteExt::write_all(&mut a, b"NOT-IDENT 1 2 3\nrubbish")
            .await
            .unwrap();
        drop(a);
        let mut buf = BytesMut::new();
        let err = read_message(&mut b, &mut buf).await.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
