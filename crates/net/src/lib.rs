//! # identxx-net — the ident++ wire protocol over real TCP sockets
//!
//! The simulator in the other crates exercises the whole control loop
//! in-process. This crate is the deployment-shaped transport: an asynchronous
//! TCP server that plays the role of the end-host ident++ daemon listening on
//! its port (783 in a real deployment; tests bind an ephemeral localhost
//! port), and a client the controller uses to query it. Messages are framed
//! with [`identxx_proto::wire::WireMessage`], which carries the flow addresses
//! explicitly because a TCP transport cannot recover them from spoofed IP
//! headers the way the paper's raw-packet transport does.
//!
//! Built on tokio (see `DESIGN.md` §2 for the dependency justification).

pub mod client;
pub mod framing;
pub mod server;

pub use client::{query_daemon, QueryClient};
pub use framing::{read_message, read_message_deadline, write_message, write_message_blocking};
pub use server::DaemonServer;
