//! # identxx-net — the ident++ wire protocol over real TCP sockets
//!
//! The simulator in the other crates exercises the whole control loop
//! in-process. This crate is the deployment-shaped transport: an asynchronous
//! TCP server that plays the role of the end-host ident++ daemon listening on
//! its port (783 in a real deployment; tests bind an ephemeral localhost
//! port), and a client the controller uses to query it. Messages are framed
//! with [`identxx_proto::wire::WireMessage`], which carries the flow addresses
//! explicitly because a TCP transport cannot recover them from spoofed IP
//! headers the way the paper's raw-packet transport does.
//!
//! ## Batching protocol
//!
//! Both sides of the transport speak the batched query round of
//! `DESIGN.md` §6:
//!
//! * [`QueryClient::query_batch_deadline`] sends several queries for one
//!   host as a single `QUERY-BATCH` frame on the pooled connection (splitting
//!   at [`identxx_proto::wire::MAX_BATCH`] transparently) and matches the
//!   `RESPONSE-BATCH` back to the queries **by flow**, so one round trip
//!   resolves a whole batch; a host that closes without answering yields all
//!   `None`, the same no-information shape as a silent singleton.
//! * [`DaemonServer`] answers a batch frame with one response frame holding
//!   every flow the daemon has information about (omitting the rest), and
//!   charges its configured processing delay once per *frame* — a batched
//!   round costs one delayed round trip per host, not one per flow.
//!
//! ## Event-driven transport
//!
//! Both sides run on the vendored runtime's epoll reactor (DESIGN.md §7):
//! the server serves **every** connection from a fixed worker pool (threads
//! are O(workers), not O(connections) — `tests/reactor_stress.rs`), response
//! delays are timer-wheel events, and the client's exchanges are futures
//! whose deadlines the timer wheel enforces — one absolute deadline per
//! decision round, shared across every host `identxx-controller`'s
//! `NetworkBackend` queries concurrently. The blocking `QueryClient` methods
//! remain as `block_on` shims over the async core.
//!
//! Built on tokio (see `DESIGN.md` §2 for the dependency justification).

pub mod client;
pub mod framing;
pub mod retry;
pub mod server;

pub use client::{query_daemon, QueryClient};
pub use framing::{read_message, write_message};
pub use retry::RetryPolicy;
pub use server::DaemonServer;
