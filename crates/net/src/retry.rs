//! Deterministic jittered-backoff retry policy for the query plane.
//!
//! Every retry loop in the transport — the singleton and batch paths of
//! [`QueryClient`](crate::QueryClient) alike — shares this one policy, so
//! "how often do we hammer a failing daemon" is a single tunable instead of
//! scattered `for _ in 0..2` loops. The schedule is exponential with **full
//! jitter** (each delay drawn from `[raw/2, raw]`), but the draw is a pure
//! hash of `(jitter_seed, salt, attempt)` — no wall clock, no RNG state —
//! so a seeded run replays the exact same schedule. That determinism is what
//! lets the E12 failure drills assert byte-identical decisions across runs.

use std::time::{Duration, Instant};

/// A retry schedule: how many attempts, and how long to back off between
/// them.
///
/// `max_attempts` counts the first try, so `1` means "no retry". Delays
/// grow `base_delay * 2^(retry-1)` capped at `max_delay`, then jittered
/// deterministically from `jitter_seed` and the caller-supplied salt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, first try included. Never 0 (treated as 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay.
    pub max_delay: Duration,
    /// Seed mixed into the jitter hash. Two clients with different seeds
    /// desynchronise their retries against the same dead host.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// The transport default: three attempts with a short jittered backoff.
    /// Bounded enough that an unreachable host still fails well inside a
    /// typical decision budget, patient enough to ride out a one-off refusal.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no delays.
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// `attempts` back-to-back tries with no backoff — the shape of a flake
    /// workaround that re-runs a burst until one comes out clean.
    pub fn immediate(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Replaces the attempt budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Replaces the backoff schedule.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> RetryPolicy {
        self.base_delay = base;
        self.max_delay = max;
        self
    }

    /// Replaces the jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// The jittered delay before retry number `retry` (1-based: the delay
    /// between the first and second attempt is `delay_before(1, salt)`).
    /// Deterministic in `(jitter_seed, salt, retry)`.
    pub fn delay_before(&self, retry: u32, salt: u64) -> Duration {
        if retry == 0 || self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = retry.saturating_sub(1).min(20);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay)
            .max(self.base_delay.min(self.max_delay));
        // Full jitter over the top half: [raw/2, raw]. Drawn from a pure
        // hash so the schedule replays under a fixed seed.
        let raw_micros = raw.as_micros() as u64;
        let half = raw_micros / 2;
        let span = raw_micros - half;
        let draw = splitmix64(
            self.jitter_seed
                ^ salt.rotate_left(17)
                ^ u64::from(retry).wrapping_mul(0xd134_2543_de82_ef95),
        );
        Duration::from_micros(half + if span == 0 { 0 } else { draw % (span + 1) })
    }

    /// Whether another attempt is allowed after `made` attempts, and — when
    /// a deadline is in play — whether its backoff still fits before it.
    pub fn allows_retry(&self, made: u32, deadline: Option<Instant>, salt: u64) -> bool {
        if made >= self.max_attempts.max(1) {
            return false;
        }
        match deadline {
            Some(deadline) => Instant::now() + self.delay_before(made, salt) < deadline,
            None => true,
        }
    }

    /// Drives a blocking operation through the schedule: `op` is called with
    /// the attempt number (1-based) until it returns `Ok`, the attempts are
    /// exhausted, or the backoff would overrun `deadline` (if any). Sleeps
    /// the jittered delay between attempts. Returns the last error when
    /// every attempt fails.
    pub fn run_blocking<T, E>(
        &self,
        salt: u64,
        deadline: Option<Instant>,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(err) => {
                    if !self.allows_retry(attempt, deadline, salt) {
                        return Err(err);
                    }
                    let delay = self.delay_before(attempt, salt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed pure hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy::default();
        for retry in 1..8 {
            let a = policy.delay_before(retry, 42);
            let b = policy.delay_before(retry, 42);
            assert_eq!(a, b, "same seed and salt must replay the same delay");
            assert!(a <= policy.max_delay, "delay must respect the cap");
            let raw = policy
                .base_delay
                .saturating_mul(1u32 << (retry - 1).min(20))
                .min(policy.max_delay);
            assert!(a >= raw / 2, "full jitter stays in the top half");
        }
        // Different salts desynchronise.
        let spread: std::collections::HashSet<Duration> =
            (0..16).map(|salt| policy.delay_before(3, salt)).collect();
        assert!(spread.len() > 1, "jitter must actually vary with the salt");
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let policy = RetryPolicy::immediate(3);
        assert_eq!(policy.delay_before(1, 7), Duration::ZERO);
        assert_eq!(policy.delay_before(2, 7), Duration::ZERO);
    }

    #[test]
    fn run_blocking_retries_until_success() {
        let policy = RetryPolicy::immediate(3);
        let mut calls = 0u32;
        let result: Result<u32, &str> = policy.run_blocking(0, None, |attempt| {
            calls += 1;
            if attempt < 3 {
                Err("not yet")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result, Ok(3));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_blocking_surfaces_the_last_error() {
        let policy = RetryPolicy::immediate(2);
        let mut calls = 0u32;
        let result: Result<(), u32> = policy.run_blocking(0, None, |attempt| {
            calls += 1;
            Err(attempt)
        });
        assert_eq!(result, Err(2));
        assert_eq!(calls, 2);
    }

    #[test]
    fn deadline_stops_the_schedule() {
        let policy = RetryPolicy::default().with_max_attempts(10);
        let deadline = Instant::now() + Duration::from_millis(5);
        let mut calls = 0u32;
        let result: Result<(), &str> = policy.run_blocking(1, Some(deadline), |_| {
            calls += 1;
            std::thread::sleep(Duration::from_millis(3));
            Err("down")
        });
        assert!(result.is_err());
        assert!(calls < 10, "the deadline must cut the schedule short");
    }
}
