//! The TCP ident++ daemon server.
//!
//! "End-hosts run an ident++ daemon as a server that receives queries on TCP
//! port 783" (§2). [`DaemonServer`] wraps an [`identxx_daemon::Daemon`] behind
//! a tokio TCP listener; each accepted connection may carry any number of
//! queries, each answered with the daemon's response (or silently ignored if
//! the daemon is configured silent — the querier's timeout handles that case,
//! exactly as it would for a host with no daemon at all).
//!
//! Every connection is an executor **task**, not an OS thread: the runtime's
//! reactor suspends it on socket readiness, so a server holding hundreds of
//! idle controller connections costs wakers and buffers, never threads
//! (`tests/reactor_stress.rs` pins this at ≥ 256 concurrent connections).
//! Configured response delays are timer-wheel events (`tokio::time::sleep`),
//! so a thousand delayed answers in flight still occupy only the worker
//! pool. See DESIGN.md §7.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use bytes::BytesMut;
use identxx_daemon::Daemon;
use identxx_proto::WireMessage;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::Mutex;

use crate::framing::{read_message, write_message};

/// A running daemon server.
pub struct DaemonServer {
    daemon: Arc<Mutex<Daemon>>,
    local_addr: SocketAddr,
    handle: tokio::task::JoinHandle<()>,
    /// Cleared by [`DaemonServer::shutdown`]; the accept loop exits when it
    /// observes the flag after waking from `accept`.
    running: Arc<AtomicBool>,
    /// Signalled (by drop or send) when the accept loop has exited and the
    /// listener socket is closed.
    stopped: mpsc::Receiver<()>,
    /// Total queries answered across all connections (concurrent queries
    /// from a controller's dual-end fan-out land on separate connections,
    /// so per-connection counters would under-report).
    queries_served: Arc<AtomicU64>,
}

impl DaemonServer {
    /// Binds to `bind_addr` (use port 0 for an ephemeral port in tests; a real
    /// deployment uses [`identxx_proto::IDENTXX_PORT`]) and starts serving.
    pub async fn start(daemon: Daemon, bind_addr: SocketAddr) -> io::Result<DaemonServer> {
        let listener = TcpListener::bind(bind_addr).await?;
        let local_addr = listener.local_addr()?;
        let daemon = Arc::new(Mutex::new(daemon));
        let accept_daemon = Arc::clone(&daemon);
        let running = Arc::new(AtomicBool::new(true));
        let accept_running = Arc::clone(&running);
        let queries_served = Arc::new(AtomicU64::new(0));
        let accept_queries = Arc::clone(&queries_served);
        let (stopped_tx, stopped) = mpsc::channel();
        let handle = tokio::spawn(async move {
            while accept_running.load(Ordering::Acquire) {
                match listener.accept().await {
                    Ok((stream, _peer)) => {
                        // A post-shutdown wake-up is the poison pill (or a
                        // late client): don't serve it, just exit.
                        if !accept_running.load(Ordering::Acquire) {
                            break;
                        }
                        let connection_daemon = Arc::clone(&accept_daemon);
                        let connection_queries = Arc::clone(&accept_queries);
                        tokio::spawn(async move {
                            let _ = serve_connection(stream, connection_daemon, connection_queries)
                                .await;
                        });
                    }
                    Err(_) => break,
                }
            }
            // Close the listening socket *before* signalling, so `shutdown`
            // returning guarantees the port no longer accepts connections.
            drop(listener);
            drop(stopped_tx);
        });
        Ok(DaemonServer {
            daemon,
            local_addr,
            handle,
            running,
            stopped,
            queries_served,
        })
    }

    /// Total queries answered since the server started, across every
    /// connection (a controller querying both flow ends concurrently opens
    /// one connection per end).
    pub fn queries_served(&self) -> u64 {
        self.queries_served.load(Ordering::Relaxed)
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Access to the daemon behind the server (e.g. to start applications or
    /// install configuration while the server runs).
    pub fn daemon(&self) -> Arc<Mutex<Daemon>> {
        Arc::clone(&self.daemon)
    }

    /// Stops the server and waits (bounded) for the accept loop to exit.
    ///
    /// On the reactor runtime `abort` genuinely cancels: the accept task's
    /// future is dropped at its next yield point, which closes the listener
    /// socket and disconnects the `stopped` channel this method waits on.
    /// The cooperative flag + poison-pill connection are kept for the
    /// `IDENTXX_RUNTIME=threaded` baseline (where abort detaches) and for
    /// real tokio runtimes driving the accept loop on another thread; both
    /// protocols converge on "listener closed before return". In-flight
    /// per-connection tasks finish serving independently.
    pub fn shutdown(self) {
        self.running.store(false, Ordering::Release);
        self.handle.abort();
        // Poison pill: unblock a threaded-baseline accept loop. A failure
        // means the listener is already gone, which is fine.
        let _ = std::net::TcpStream::connect(self.local_addr);
        // Wait for the listener to drop (sender disconnects). Bound the wait
        // so a wedged runtime cannot hang the caller.
        let _ = self.stopped.recv_timeout(Duration::from_secs(5));
    }
}

async fn serve_connection(
    mut stream: TcpStream,
    daemon: Arc<Mutex<Daemon>>,
    queries_served: Arc<AtomicU64>,
) -> io::Result<()> {
    let mut buf = BytesMut::new();
    while let Some(message) = read_message(&mut stream, &mut buf).await? {
        // Answer under the lock, but model the host's processing latency
        // *outside* it, so concurrent queries to the same daemon (and of
        // course to different daemons) overlap their delays. A batch pays
        // the processing delay once per round trip, not once per flow —
        // that is the latency argument for batching.
        let (reply, answered, delay_micros) = {
            let mut daemon = daemon.lock().await;
            // Effective = configured + any active brownout from a failure
            // drill's fault injector.
            let delay_micros = daemon.effective_response_delay_micros();
            match &message {
                WireMessage::Query(query) => match daemon.answer(query) {
                    Ok(Some(response)) => {
                        (Some(WireMessage::Response(response)), 1u64, delay_micros)
                    }
                    // Silent daemon or a query about a flow that is not
                    // ours: close the connection without answering, like a
                    // host with no daemon would simply not have the port
                    // open.
                    Ok(None) | Err(_) => (None, 0, delay_micros),
                },
                WireMessage::QueryBatch(queries) => {
                    let mut answers: Vec<_> = queries
                        .iter()
                        .filter_map(|q| daemon.answer(q).ok().flatten())
                        .collect();
                    // Frame-level drill faults: the protocol matches answers
                    // to queries by flow, so a shuffled or duplicated batch
                    // must decide identically — drills prove it.
                    if let Some(injector) = daemon.fault_injector() {
                        let host = daemon.host().addr;
                        if !answers.is_empty() {
                            if let Some(seed) = injector.reorder_seed(host) {
                                identxx_daemon::FaultInjector::shuffle(&mut answers, seed);
                            }
                            if injector.duplicate_batch(host) {
                                answers.push(answers[0].clone());
                            }
                        }
                    }
                    if answers.is_empty() {
                        // No information about any flow in the batch: the
                        // same close-without-answering shape as a silent
                        // singleton.
                        (None, 0, delay_micros)
                    } else {
                        let n = answers.len() as u64;
                        (Some(WireMessage::ResponseBatch(answers)), n, delay_micros)
                    }
                }
                // A peer pushing responses at a server is not part of the
                // protocol; drop the frame and keep the connection.
                WireMessage::Response(_) | WireMessage::ResponseBatch(_) => continue,
            }
        };
        match reply {
            Some(frame) => {
                if delay_micros > 0 {
                    // A timer-wheel event, not a blocked thread: hundreds of
                    // connections can sit in their artificial processing
                    // delay simultaneously without occupying the worker
                    // pool.
                    tokio::time::sleep(Duration::from_micros(delay_micros)).await;
                }
                queries_served.fetch_add(answered, Ordering::Relaxed);
                write_message(&mut stream, &frame).await?;
            }
            None => break,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_hostmodel::{Executable, Host};
    use identxx_proto::{well_known, FiveTuple, Ipv4Addr, Query};

    fn test_daemon() -> (Daemon, FiveTuple) {
        let mut daemon = Daemon::bare(Host::new("h1", Ipv4Addr::new(10, 0, 0, 1)));
        let exe = Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser");
        let flow =
            daemon
                .host_mut()
                .open_connection("alice", exe, 40000, Ipv4Addr::new(10, 0, 0, 2), 80);
        (daemon, flow)
    }

    #[tokio::test]
    async fn serves_queries_over_tcp() {
        let (daemon, flow) = test_daemon();
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let response = crate::client::query_daemon(
            server.local_addr(),
            Query::new(flow).with_key(well_known::USER_ID),
        )
        .await
        .unwrap()
        .expect("daemon should answer");
        assert_eq!(response.latest(well_known::USER_ID), Some("alice"));
        assert_eq!(response.latest(well_known::APP_NAME), Some("firefox"));
        server.shutdown();
    }

    #[tokio::test]
    async fn multiple_queries_on_one_connection() {
        let (daemon, flow) = test_daemon();
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut buf = BytesMut::new();
        for _ in 0..3 {
            write_message(&mut stream, &WireMessage::Query(Query::new(flow)))
                .await
                .unwrap();
            let reply = read_message(&mut stream, &mut buf).await.unwrap().unwrap();
            match reply {
                WireMessage::Response(r) => {
                    assert_eq!(r.latest(well_known::USER_ID), Some("alice"))
                }
                other => panic!("expected response, got {other:?}"),
            }
        }
        server.shutdown();
    }

    #[tokio::test]
    async fn silent_daemon_closes_without_answering() {
        let (mut daemon, flow) = test_daemon();
        daemon.set_silent(true);
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let result = crate::client::query_daemon(server.local_addr(), Query::new(flow))
            .await
            .unwrap();
        assert!(result.is_none());
        server.shutdown();
    }

    #[tokio::test]
    async fn shutdown_closes_listener_and_stops_accept_thread() {
        let (daemon, flow) = test_daemon();
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let addr = server.local_addr();
        // The server answers while running.
        let response = crate::client::query_daemon(addr, Query::new(flow))
            .await
            .unwrap();
        assert!(response.is_some());
        // Shutdown returns only after the accept loop exited and dropped the
        // listener, so the port must refuse new connections afterwards.
        server.shutdown();
        assert!(
            std::net::TcpStream::connect(addr).is_err(),
            "listener socket should be closed after shutdown"
        );
    }

    #[tokio::test]
    async fn daemon_state_can_change_while_serving() {
        let (daemon, flow) = test_daemon();
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        // Mark the daemon compromised mid-flight.
        {
            let daemon = server.daemon();
            let mut daemon = daemon.lock().await;
            daemon.set_forged_response(Some(vec![("userID".to_string(), "system".to_string())]));
        }
        let response = crate::client::query_daemon(server.local_addr(), Query::new(flow))
            .await
            .unwrap()
            .unwrap();
        assert_eq!(response.latest(well_known::USER_ID), Some("system"));
        server.shutdown();
    }
}
