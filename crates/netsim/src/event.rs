//! A generic discrete-event queue.
//!
//! The queue is a priority queue ordered by simulated time, with a sequence
//! number to break ties deterministically (FIFO among simultaneous events).
//! The simulation driver (in `identxx-controller` / the benchmarks) pops
//! events, handles them, and schedules follow-up events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

/// An event scheduled for a point in simulated time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event queue with a simulated clock.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time. Events scheduled in the past
    /// are clamped to the current time (they will be processed next).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let scheduled = self.heap.pop()?;
        self.now = scheduled.at;
        self.processed += 1;
        Some((scheduled.at, scheduled.event))
    }

    /// Number of events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Runs the queue to completion with a handler that may schedule further
    /// events. Stops after `max_events` as a runaway guard and returns the
    /// number of events processed by this call.
    pub fn run<F>(&mut self, max_events: u64, mut handler: F) -> u64
    where
        F: FnMut(&mut EventQueue<E>, SimTime, E),
    {
        let mut count = 0;
        while count < max_events {
            let (at, event) = match self.pop() {
                Some(x) => x,
                None => break,
            };
            handler(self, at, event);
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        assert_eq!(q.pending(), 3);
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.now(), SimTime(20));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(5), 1);
        q.schedule_at(SimTime(5), 2);
        q.schedule_at(SimTime(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), "first");
        q.pop();
        q.schedule_after(Duration::from_micros(50), "second");
        assert_eq!(q.pop(), Some((SimTime(150), "second")));
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), "first");
        q.pop();
        q.schedule_at(SimTime(10), "late");
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime(100));
    }

    #[test]
    fn run_drives_cascading_events() {
        // Each event schedules the next until 5 have run.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), 0u32);
        let processed = q.run(100, |q, _at, n| {
            if n < 4 {
                q.schedule_after(Duration::from_micros(10), n + 1);
            }
        });
        assert_eq!(processed, 5);
        assert_eq!(q.now(), SimTime(41));
        assert!(q.is_empty());
    }

    #[test]
    fn run_respects_max_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), 0u32);
        // An event that always reschedules itself would run forever.
        let processed = q.run(50, |q, _at, n| {
            q.schedule_after(Duration::from_micros(1), n + 1);
        });
        assert_eq!(processed, 50);
        assert!(!q.is_empty());
    }
}
