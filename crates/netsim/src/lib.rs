//! # identxx-netsim — a discrete-event network simulation substrate
//!
//! The paper evaluates ident++ as a design running on an OpenFlow enterprise
//! network; no testbed measurements are reported. To give the reproduction a
//! quantitative footing we simulate the network: hosts and switches connected
//! by links with configurable latency and loss, a deterministic discrete-event
//! clock, shortest-path routing, synthetic enterprise workloads, and metric
//! collection.
//!
//! The simulator is deliberately *flow- and control-plane-level*: data packets
//! are not byte-accurate, but every control-plane interaction the paper
//! describes (packet-in to the controller, ident++ queries to both end-hosts,
//! flow-entry installation along the path, §2 Fig. 1) is simulated as timed
//! events over the topology, which is what the flow-setup experiments measure.
//!
//! * [`time`] — simulated clock (microsecond ticks),
//! * [`event`] — generic discrete-event queue,
//! * [`topology`] — nodes, links, and topology builders (star, two-tier tree,
//!   linear chains),
//! * [`routing`] — shortest-path routing over the topology,
//! * [`packet`] — flow-level packet/message descriptions,
//! * [`workload`] — synthetic enterprise workload generation (application
//!   mixes, users, flow arrival processes),
//! * [`metrics`] — counters and latency histograms used by the experiments.

pub mod event;
pub mod metrics;
pub mod packet;
pub mod routing;
pub mod time;
pub mod topology;
pub mod workload;

pub use event::EventQueue;
pub use metrics::{Counter, Histogram, MetricSet};
pub use packet::{Packet, PacketKind};
pub use routing::RoutingTable;
pub use time::{Duration, SimTime};
pub use topology::{LinkId, LinkProps, NodeId, NodeKind, Topology};
pub use workload::{AppProfile, Flow, WorkloadConfig, WorkloadGenerator};
