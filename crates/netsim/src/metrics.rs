//! Counters and latency histograms for the experiments.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A simple latency histogram that records every sample (the experiments
/// record at most a few hundred thousand), and reports summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a duration sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d.as_micros());
        self.sorted = false;
    }

    /// Records a raw microsecond sample.
    pub fn record_micros(&mut self, us: u64) {
        self.samples.push(us);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean in microseconds (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Minimum sample in microseconds (0 if empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Maximum sample in microseconds (0 if empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// The `q`-quantile (0.0–1.0) in microseconds, by nearest-rank.
    pub fn quantile(&mut self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[rank]
    }

    /// Median (p50) in microseconds.
    pub fn median(&mut self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile in microseconds.
    pub fn p99(&mut self) -> u64 {
        self.quantile(0.99)
    }
}

/// A named collection of counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// Creates an empty metric set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Increments a named counter (creating it if needed).
    pub fn incr(&mut self, name: &str) {
        self.counters.entry(name.to_string()).or_default().incr();
    }

    /// Adds to a named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_string()).or_default().add(n);
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Records a latency sample under a name.
    pub fn record(&mut self, name: &str, d: Duration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Access to a histogram (if any samples were recorded).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access, e.g. to compute quantiles.
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Names of all counters.
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.keys().map(String::as_str).collect()
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, counter) in &self.counters {
            writeln!(f, "{name}: {}", counter.get())?;
        }
        for (name, hist) in &self.histograms {
            writeln!(
                f,
                "{name}: n={} mean={:.1}us min={}us max={}us",
                hist.count(),
                hist.mean(),
                hist.min(),
                hist.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(5);
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50] {
            h.record_micros(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 50);
        assert!((h.mean() - 30.0).abs() < 1e-9);
        assert_eq!(h.median(), 30);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 50);
        assert_eq!(h.p99(), 50);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.median(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_records_durations() {
        let mut h = Histogram::new();
        h.record(Duration::from_millis(2));
        assert_eq!(h.max(), 2_000);
    }

    #[test]
    fn metric_set_counters_and_histograms() {
        let mut m = MetricSet::new();
        m.incr("flows");
        m.incr("flows");
        m.add("bytes", 100);
        assert_eq!(m.counter("flows"), 2);
        assert_eq!(m.counter("bytes"), 100);
        assert_eq!(m.counter("missing"), 0);
        m.record("setup-latency", Duration::from_micros(150));
        m.record("setup-latency", Duration::from_micros(250));
        assert_eq!(m.histogram("setup-latency").unwrap().count(), 2);
        // Nearest-rank median of two samples rounds up to the larger one.
        assert_eq!(m.histogram_mut("setup-latency").unwrap().median(), 250);
        assert!(m.counter_names().contains(&"flows"));
        let rendered = m.to_string();
        assert!(rendered.contains("flows: 2"));
        assert!(rendered.contains("setup-latency"));
    }
}
