//! Flow-level packet and control-message descriptions.
//!
//! The simulator is not byte-accurate; a [`Packet`] describes one message
//! travelling through the network — a data packet belonging to an application
//! flow, an ident++ query/response, or an OpenFlow control message — with
//! enough metadata to drive the control-plane logic and account for latency.

use identxx_proto::FiveTuple;

/// The kind of message a packet carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketKind {
    /// An application data packet (possibly the first packet of a flow).
    Data,
    /// An ident++ query from a controller to an end-host daemon.
    IdentQuery,
    /// An ident++ response from a daemon (or intercepting controller).
    IdentResponse,
    /// An OpenFlow `packet-in`: a switch forwarding an unmatched packet to the
    /// controller.
    OpenFlowPacketIn,
    /// An OpenFlow `flow-mod`: the controller installing a flow-table entry.
    OpenFlowFlowMod,
}

/// A simulated packet/message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The flow this packet belongs to (for control messages, the flow being
    /// discussed).
    pub flow: FiveTuple,
    /// What the packet is.
    pub kind: PacketKind,
    /// Nominal size in bytes (used for byte counters; data packets default to
    /// a full MTU, control messages to small sizes).
    pub size: u32,
}

impl Packet {
    /// A full-size data packet for a flow.
    pub fn data(flow: FiveTuple) -> Packet {
        Packet {
            flow,
            kind: PacketKind::Data,
            size: 1500,
        }
    }

    /// A data packet with explicit size.
    pub fn data_sized(flow: FiveTuple, size: u32) -> Packet {
        Packet {
            flow,
            kind: PacketKind::Data,
            size,
        }
    }

    /// An ident++ query about a flow.
    pub fn ident_query(flow: FiveTuple) -> Packet {
        Packet {
            flow,
            kind: PacketKind::IdentQuery,
            size: 128,
        }
    }

    /// An ident++ response about a flow, sized by the response text length.
    pub fn ident_response(flow: FiveTuple, response_len: usize) -> Packet {
        Packet {
            flow,
            kind: PacketKind::IdentResponse,
            size: 64 + response_len as u32,
        }
    }

    /// An OpenFlow packet-in carrying (the head of) a data packet.
    pub fn packet_in(flow: FiveTuple) -> Packet {
        Packet {
            flow,
            kind: PacketKind::OpenFlowPacketIn,
            size: 256,
        }
    }

    /// An OpenFlow flow-mod installing an entry for a flow.
    pub fn flow_mod(flow: FiveTuple) -> Packet {
        Packet {
            flow,
            kind: PacketKind::OpenFlowFlowMod,
            size: 96,
        }
    }

    /// Whether this is a control-plane message (not application data).
    pub fn is_control(&self) -> bool {
        !matches!(self.kind, PacketKind::Data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80)
    }

    #[test]
    fn constructors_set_kind_and_size() {
        assert_eq!(Packet::data(flow()).size, 1500);
        assert_eq!(Packet::data_sized(flow(), 64).size, 64);
        assert_eq!(Packet::ident_query(flow()).kind, PacketKind::IdentQuery);
        let resp = Packet::ident_response(flow(), 500);
        assert_eq!(resp.size, 564);
        assert_eq!(Packet::packet_in(flow()).kind, PacketKind::OpenFlowPacketIn);
        assert_eq!(Packet::flow_mod(flow()).kind, PacketKind::OpenFlowFlowMod);
    }

    #[test]
    fn control_classification() {
        assert!(!Packet::data(flow()).is_control());
        assert!(Packet::ident_query(flow()).is_control());
        assert!(Packet::flow_mod(flow()).is_control());
        assert!(Packet::packet_in(flow()).is_control());
        assert!(Packet::ident_response(flow(), 10).is_control());
    }
}
