//! Shortest-path routing over a [`Topology`].
//!
//! The ident++ controller needs to know the switch path a flow traverses so
//! it can "install entries along path for flow" (Fig. 1, step 4). The routing
//! table computes hop-count shortest paths with BFS and caches them.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::topology::{NodeId, NodeKind, Topology};

/// Precomputed shortest paths for a topology.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    /// `(src, dst) -> full node path (inclusive of both endpoints)`.
    paths: HashMap<(NodeId, NodeId), Vec<NodeId>>,
}

impl RoutingTable {
    /// Computes all-pairs shortest paths between every pair of nodes.
    ///
    /// Enterprise topologies here are small (tens to a few hundred nodes), so
    /// BFS from every node is adequate and keeps the code simple.
    pub fn build(topology: &Topology) -> RoutingTable {
        let mut table = RoutingTable::default();
        let node_ids: Vec<NodeId> = topology.nodes().map(|n| n.id).collect();
        for &src in &node_ids {
            let parents = bfs_parents(topology, src);
            for &dst in &node_ids {
                if let Some(path) = reconstruct_path(&parents, src, dst) {
                    table.paths.insert((src, dst), path);
                }
            }
        }
        table
    }

    /// The full node path from `src` to `dst` (inclusive), if connected.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<&[NodeId]> {
        self.paths.get(&(src, dst)).map(Vec::as_slice)
    }

    /// The switches along the path from `src` to `dst` (excluding the
    /// endpoints), i.e. the devices that need flow-table entries installed.
    pub fn switches_on_path(&self, topology: &Topology, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        self.path(src, dst)
            .map(|p| {
                p.iter()
                    .copied()
                    .filter(|n| {
                        topology
                            .node(*n)
                            .map(|node| node.kind == NodeKind::Switch)
                            .unwrap_or(false)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of hops (links) between two nodes, if connected.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.path(src, dst).map(|p| p.len().saturating_sub(1))
    }

    /// Number of stored paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

fn bfs_parents(topology: &Topology, src: NodeId) -> BTreeMap<NodeId, NodeId> {
    let mut parents = BTreeMap::new();
    let mut visited = BTreeMap::new();
    visited.insert(src, ());
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(node) = queue.pop_front() {
        for (neighbour, _link) in topology.neighbours(node) {
            if !visited.contains_key(neighbour) {
                visited.insert(*neighbour, ());
                parents.insert(*neighbour, node);
                queue.push_back(*neighbour);
            }
        }
    }
    parents
}

fn reconstruct_path(
    parents: &BTreeMap<NodeId, NodeId>,
    src: NodeId,
    dst: NodeId,
) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut path = vec![dst];
    let mut current = dst;
    while current != src {
        current = *parents.get(&current)?;
        path.push(current);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkProps;

    #[test]
    fn paths_in_star_topology() {
        let (t, switch, controller, hosts) = Topology::star(4, LinkProps::default());
        let routes = RoutingTable::build(&t);
        let path = routes.path(hosts[0], hosts[3]).unwrap();
        assert_eq!(path, &[hosts[0], switch, hosts[3]]);
        assert_eq!(routes.hop_count(hosts[0], hosts[3]), Some(2));
        assert_eq!(routes.hop_count(hosts[0], controller), Some(2));
        assert_eq!(
            routes.switches_on_path(&t, hosts[0], hosts[3]),
            vec![switch]
        );
        assert_eq!(routes.path(hosts[1], hosts[1]).unwrap(), &[hosts[1]]);
    }

    #[test]
    fn paths_in_chain_topology() {
        let (t, _controller, client, server, switches) = Topology::chain(5, LinkProps::default());
        let routes = RoutingTable::build(&t);
        let path = routes.path(client, server).unwrap();
        assert_eq!(path.len(), 7); // client + 5 switches + server
        assert_eq!(routes.hop_count(client, server), Some(6));
        assert_eq!(routes.switches_on_path(&t, client, server), switches);
    }

    #[test]
    fn two_tier_routes_cross_edge_through_core() {
        let (t, core, _controller, hosts) = Topology::two_tier(2, 2, LinkProps::default());
        let routes = RoutingTable::build(&t);
        // hosts[0] is on edge0, hosts[2] on edge1 — path must include core.
        let path = routes.path(hosts[0], hosts[2]).unwrap();
        assert!(path.contains(&core));
        assert_eq!(path.len(), 5);
        // Same-edge hosts do not traverse the core.
        let path = routes.path(hosts[0], hosts[1]).unwrap();
        assert!(!path.contains(&core));
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let mut t = Topology::new();
        let a = t.add_host("a", identxx_proto::Ipv4Addr::new(10, 0, 0, 1));
        let b = t.add_host("b", identxx_proto::Ipv4Addr::new(10, 0, 0, 2));
        let routes = RoutingTable::build(&t);
        assert!(routes.path(a, b).is_none());
        assert!(routes.hop_count(a, b).is_none());
        assert!(!routes.is_empty()); // self-paths exist
        assert_eq!(routes.path(a, a).unwrap().len(), 1);
    }
}
