//! Simulated time.
//!
//! The simulator uses a 64-bit microsecond clock. All latencies in the
//! experiments are expressed in these ticks, so results are deterministic and
//! independent of the wall clock of the machine running the benchmarks.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Time elapsed since `earlier` (saturating at zero).
    pub fn since(&self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// The duration in microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// The duration in (possibly fractional) milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating multiplication by a count.
    pub fn times(&self, n: u64) -> Duration {
        Duration(self.0.saturating_mul(n))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
        assert_eq!(t.as_millis(), 2);
        let t2 = t + Duration::from_micros(500);
        assert_eq!((t2 - t).as_micros(), 500);
        assert_eq!(t2.since(t).as_micros(), 500);
        assert_eq!(t.since(t2), Duration::ZERO);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_micros(7).times(3).as_micros(), 21);
        assert!((Duration::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Duration::from_micros(5).to_string(), "5us");
        assert_eq!(Duration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime(42).to_string(), "42us");
    }

    #[test]
    fn saturating_behaviour() {
        let huge = SimTime(u64::MAX);
        assert_eq!((huge + Duration::from_secs(10)).0, u64::MAX);
        assert_eq!(Duration(u64::MAX).times(2).0, u64::MAX);
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime(5) < SimTime(6));
        assert_eq!(SimTime(5).max(SimTime(9)), SimTime(9));
    }
}
