//! Network topology: hosts, switches, and the links between them.

use std::collections::BTreeMap;

use identxx_proto::Ipv4Addr;

use crate::time::Duration;

/// Identifier of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// What kind of device a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An end-host (runs an ident++ daemon).
    Host,
    /// An OpenFlow switch (enforces flow-table decisions).
    Switch,
    /// The controller machine (runs the ident++ controller).
    Controller,
}

/// A node in the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// The node kind.
    pub kind: NodeKind,
    /// Human-readable name (host names are also used by the host model).
    pub name: String,
    /// The node's IPv4 address (hosts and the controller; switches get one
    /// too for management).
    pub addr: Ipv4Addr,
}

/// Properties of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProps {
    /// One-way propagation + processing latency.
    pub latency: Duration,
    /// Probability in `[0, 1]` that a packet traversing the link is dropped.
    pub drop_probability: f64,
}

impl Default for LinkProps {
    fn default() -> Self {
        LinkProps {
            latency: Duration::from_micros(50),
            drop_probability: 0.0,
        }
    }
}

impl LinkProps {
    /// A link with the given latency and no loss.
    pub fn with_latency(latency: Duration) -> Self {
        LinkProps {
            latency,
            drop_probability: 0.0,
        }
    }
}

/// A bidirectional link between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// The link's identifier.
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Link properties (symmetric).
    pub props: LinkProps,
}

/// A network topology: a set of nodes and bidirectional links.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: BTreeMap<NodeId, Node>,
    links: Vec<Link>,
    adjacency: BTreeMap<NodeId, Vec<(NodeId, LinkId)>>,
    by_addr: BTreeMap<Ipv4Addr, NodeId>,
    by_name: BTreeMap<String, NodeId>,
    next_node: u32,
    next_link: u32,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>, addr: Ipv4Addr) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let name = name.into();
        self.by_addr.insert(addr, id);
        self.by_name.insert(name.clone(), id);
        self.nodes.insert(
            id,
            Node {
                id,
                kind,
                name,
                addr,
            },
        );
        self.adjacency.entry(id).or_default();
        id
    }

    /// Convenience: adds a host.
    pub fn add_host(&mut self, name: impl Into<String>, addr: Ipv4Addr) -> NodeId {
        self.add_node(NodeKind::Host, name, addr)
    }

    /// Convenience: adds a switch. The switch is given a management address in
    /// `10.255.0.0/16`.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        let addr = Ipv4Addr::new(10, 255, (self.next_node >> 8) as u8, self.next_node as u8);
        self.add_node(NodeKind::Switch, name, addr)
    }

    /// Convenience: adds the controller node with a management address.
    pub fn add_controller(&mut self, name: impl Into<String>) -> NodeId {
        let addr = Ipv4Addr::new(10, 254, (self.next_node >> 8) as u8, self.next_node as u8);
        self.add_node(NodeKind::Controller, name, addr)
    }

    /// Connects two nodes with a link.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, props: LinkProps) -> LinkId {
        assert!(self.nodes.contains_key(&a), "unknown node {a:?}");
        assert!(self.nodes.contains_key(&b), "unknown node {b:?}");
        let id = LinkId(self.next_link);
        self.next_link += 1;
        self.links.push(Link { id, a, b, props });
        self.adjacency.entry(a).or_default().push((b, id));
        self.adjacency.entry(b).or_default().push((a, id));
        id
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Looks up a node by its IPv4 address.
    pub fn node_by_addr(&self, addr: Ipv4Addr) -> Option<&Node> {
        self.by_addr.get(&addr).and_then(|id| self.nodes.get(id))
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.by_name.get(name).and_then(|id| self.nodes.get(id))
    }

    /// Looks up a link.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.iter().find(|l| l.id == id)
    }

    /// The link connecting two adjacent nodes, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        self.adjacency
            .get(&a)?
            .iter()
            .find(|(n, _)| *n == b)
            .and_then(|(_, lid)| self.link(*lid))
    }

    /// Neighbours of a node with the connecting link ids.
    pub fn neighbours(&self, id: NodeId) -> &[(NodeId, LinkId)] {
        self.adjacency.get(&id).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All nodes of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .values()
            .filter(|n| n.kind == kind)
            .map(|n| n.id)
            .collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Total one-way latency along a node path (adjacent pairs must be
    /// linked). Returns `None` if any hop is not connected.
    pub fn path_latency(&self, path: &[NodeId]) -> Option<Duration> {
        let mut total = Duration::ZERO;
        for pair in path.windows(2) {
            let link = self.link_between(pair[0], pair[1])?;
            total += link.props.latency;
        }
        Some(total)
    }

    /// Builds a star topology: one switch in the middle, `host_count` hosts
    /// attached, a controller attached to the switch. Host addresses are
    /// `10.0.0.1 …`. Returns `(topology, switch, controller, hosts)`.
    pub fn star(host_count: usize, link: LinkProps) -> (Topology, NodeId, NodeId, Vec<NodeId>) {
        let mut t = Topology::new();
        let switch = t.add_switch("sw0");
        let controller = t.add_controller("controller");
        t.add_link(switch, controller, link);
        let mut hosts = Vec::with_capacity(host_count);
        for i in 0..host_count {
            let addr = Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250 + 1) as u8);
            let h = t.add_host(format!("h{i}"), addr);
            t.add_link(h, switch, link);
            hosts.push(h);
        }
        (t, switch, controller, hosts)
    }

    /// Builds a two-tier (aggregation/edge) enterprise tree: `edge_switches`
    /// edge switches each with `hosts_per_edge` hosts, all edge switches
    /// connected to a core switch, and the controller attached to the core.
    /// Returns `(topology, core, controller, hosts)`.
    pub fn two_tier(
        edge_switches: usize,
        hosts_per_edge: usize,
        link: LinkProps,
    ) -> (Topology, NodeId, NodeId, Vec<NodeId>) {
        let mut t = Topology::new();
        let core = t.add_switch("core");
        let controller = t.add_controller("controller");
        t.add_link(core, controller, link);
        let mut hosts = Vec::new();
        for e in 0..edge_switches {
            let edge = t.add_switch(format!("edge{e}"));
            t.add_link(edge, core, link);
            for h in 0..hosts_per_edge {
                let idx = e * hosts_per_edge + h;
                let addr = Ipv4Addr::new(10, (e + 1) as u8, (h / 250) as u8, (h % 250 + 1) as u8);
                let host = t.add_host(format!("h{idx}"), addr);
                t.add_link(host, edge, link);
                hosts.push(host);
            }
        }
        (t, core, controller, hosts)
    }

    /// Builds a linear chain of `switch_count` switches with one host at each
    /// end and the controller attached to the first switch. Used by the
    /// flow-setup experiment to vary path length. Returns
    /// `(topology, controller, client, server, switches)`.
    pub fn chain(
        switch_count: usize,
        link: LinkProps,
    ) -> (Topology, NodeId, NodeId, NodeId, Vec<NodeId>) {
        assert!(switch_count >= 1, "chain needs at least one switch");
        let mut t = Topology::new();
        let mut switches = Vec::with_capacity(switch_count);
        for i in 0..switch_count {
            let s = t.add_switch(format!("sw{i}"));
            if let Some(prev) = switches.last() {
                t.add_link(*prev, s, link);
            }
            switches.push(s);
        }
        let controller = t.add_controller("controller");
        t.add_link(controller, switches[0], link);
        let client = t.add_host("client", Ipv4Addr::new(10, 0, 0, 1));
        let server = t.add_host("server", Ipv4Addr::new(10, 0, 1, 1));
        t.add_link(client, switches[0], link);
        t.add_link(server, *switches.last().unwrap(), link);
        (t, controller, client, server, switches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_nodes_and_links() {
        let mut t = Topology::new();
        let a = t.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
        let b = t.add_host("b", Ipv4Addr::new(10, 0, 0, 2));
        let s = t.add_switch("s");
        t.add_link(a, s, LinkProps::default());
        t.add_link(b, s, LinkProps::default());
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.node(a).unwrap().name, "a");
        assert_eq!(t.node_by_addr(Ipv4Addr::new(10, 0, 0, 2)).unwrap().id, b);
        assert_eq!(t.node_by_name("s").unwrap().kind, NodeKind::Switch);
        assert_eq!(t.neighbours(s).len(), 2);
        assert!(t.link_between(a, s).is_some());
        assert!(t.link_between(a, b).is_none());
    }

    #[test]
    fn star_topology_shape() {
        let (t, switch, controller, hosts) = Topology::star(10, LinkProps::default());
        assert_eq!(hosts.len(), 10);
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.link_count(), 11);
        assert_eq!(t.neighbours(switch).len(), 11);
        assert_eq!(t.node(controller).unwrap().kind, NodeKind::Controller);
        assert_eq!(t.nodes_of_kind(NodeKind::Host).len(), 10);
    }

    #[test]
    fn two_tier_topology_shape() {
        let (t, core, _controller, hosts) = Topology::two_tier(4, 5, LinkProps::default());
        assert_eq!(hosts.len(), 20);
        // core + controller + 4 edge + 20 hosts
        assert_eq!(t.node_count(), 26);
        // controller-core + 4 core-edge + 20 host-edge
        assert_eq!(t.link_count(), 25);
        assert_eq!(t.neighbours(core).len(), 5);
        // Host addresses are unique.
        let mut addrs: Vec<_> = hosts.iter().map(|h| t.node(*h).unwrap().addr).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 20);
    }

    #[test]
    fn chain_topology_shape_and_latency() {
        let props = LinkProps::with_latency(Duration::from_micros(100));
        let (t, controller, client, server, switches) = Topology::chain(3, props);
        assert_eq!(switches.len(), 3);
        // client -> sw0 -> sw1 -> sw2 -> server = 4 links
        let path = vec![client, switches[0], switches[1], switches[2], server];
        assert_eq!(t.path_latency(&path).unwrap().as_micros(), 400);
        // Controller hangs off sw0.
        assert!(t.link_between(controller, switches[0]).is_some());
        // Disconnected pairs yield None.
        assert_eq!(t.path_latency(&[client, server]), None);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn linking_unknown_node_panics() {
        let mut t = Topology::new();
        let a = t.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
        t.add_link(a, NodeId(999), LinkProps::default());
    }
}
