//! Synthetic enterprise workload generation.
//!
//! The paper's motivating examples are about *which application and user* is
//! behind a flow, not about packet payloads: Skype disguised as web traffic on
//! port 80 (§1), mail clients relaying through port 25, research applications
//! on arbitrary ports, the Windows "Server" service (§4). The workload
//! generator produces flows annotated with that ground truth (application,
//! user, version, patch level) so experiments can measure how often a policy's
//! decision matches the administrator's *intent*.

use identxx_proto::{FiveTuple, IpProtocol, Ipv4Addr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::{Duration, SimTime};

/// A description of an application that generates traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name (matches the daemon's `name` key).
    pub name: String,
    /// Application type (`voip`, `browser`, `email-client`, …).
    pub app_type: String,
    /// Application version (integer, as in the paper's `lt(@src[version], 200)`).
    pub version: i64,
    /// The destination port this application's flows use.
    pub dst_port: u16,
    /// IP protocol used.
    pub protocol: IpProtocol,
    /// Relative weight in the traffic mix.
    pub weight: u32,
    /// Whether the administrator *intends* to allow this application's traffic
    /// (ground truth for the expressiveness experiment).
    pub intended_allowed: bool,
}

impl AppProfile {
    /// Convenience constructor.
    pub fn new(
        name: &str,
        app_type: &str,
        version: i64,
        dst_port: u16,
        weight: u32,
        intended_allowed: bool,
    ) -> AppProfile {
        AppProfile {
            name: name.to_string(),
            app_type: app_type.to_string(),
            version,
            dst_port,
            protocol: IpProtocol::Tcp,
            weight,
            intended_allowed,
        }
    }
}

/// A generated flow with its ground-truth annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// The flow's 5-tuple.
    pub five_tuple: FiveTuple,
    /// The application that generated it.
    pub app: AppProfile,
    /// The user who initiated it on the source host.
    pub user: String,
    /// The group(s) that user belongs to (space-separated).
    pub groups: String,
    /// When the first packet is sent.
    pub start: SimTime,
    /// Number of data packets in the flow.
    pub packets: u32,
    /// Total bytes.
    pub bytes: u64,
}

/// Configuration for the workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of flows to generate.
    pub flow_count: usize,
    /// Addresses of the hosts that can appear as sources/destinations.
    pub hosts: Vec<Ipv4Addr>,
    /// The application mix.
    pub apps: Vec<AppProfile>,
    /// Users (selected uniformly per flow) as `(user, groups)` pairs.
    pub users: Vec<(String, String)>,
    /// Mean inter-arrival time between flow starts.
    pub mean_interarrival: Duration,
    /// Probability in `[0,1]` that a new flow repeats a previously generated
    /// `(src, dst, app)` combination — higher locality means more flow-table /
    /// state cache hits.
    pub locality: f64,
    /// RNG seed (experiments are deterministic given a seed).
    pub seed: u64,
}

impl WorkloadConfig {
    /// A default enterprise mix on the given hosts, mirroring the
    /// applications named in the paper: web browsing, Skype (which also uses
    /// port 80), SMTP mail, SSH, the Windows Server service on port 445, and
    /// a research application on a high port.
    pub fn enterprise(hosts: Vec<Ipv4Addr>, flow_count: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            flow_count,
            hosts,
            apps: vec![
                AppProfile::new("firefox", "browser", 300, 80, 40, true),
                AppProfile::new("skype", "voip", 210, 80, 15, true),
                AppProfile::new("skype-old", "voip", 150, 80, 5, false),
                AppProfile::new("thunderbird", "email-client", 78, 25, 10, true),
                AppProfile::new("ssh", "remote-shell", 9, 22, 10, true),
                AppProfile::new("Server", "file-service", 6, 445, 10, true),
                AppProfile::new("research-app", "research", 1, 7000, 5, true),
                AppProfile::new("malware", "unknown", 1, 80, 5, false),
            ],
            users: vec![
                ("alice".to_string(), "users research".to_string()),
                ("bob".to_string(), "users".to_string()),
                ("carol".to_string(), "users admins".to_string()),
                ("system".to_string(), "system".to_string()),
                ("guest".to_string(), "guests".to_string()),
            ],
            mean_interarrival: Duration::from_micros(500),
            locality: 0.0,
            seed,
        }
    }
}

/// Deterministic workload generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: StdRng,
    history: Vec<(Ipv4Addr, Ipv4Addr, usize)>,
}

impl WorkloadGenerator {
    /// Creates a generator for a configuration.
    pub fn new(config: WorkloadConfig) -> WorkloadGenerator {
        let rng = StdRng::seed_from_u64(config.seed);
        WorkloadGenerator {
            config,
            rng,
            history: Vec::new(),
        }
    }

    /// Generates the configured number of flows.
    pub fn generate(&mut self) -> Vec<Flow> {
        let mut flows = Vec::with_capacity(self.config.flow_count);
        let mut now = SimTime::ZERO;
        for _ in 0..self.config.flow_count {
            now += self.next_interarrival();
            flows.push(self.next_flow(now));
        }
        flows
    }

    fn next_interarrival(&mut self) -> Duration {
        // Geometric-ish jitter around the mean: [0.5, 1.5) * mean.
        let mean = self.config.mean_interarrival.as_micros().max(1);
        let jitter = self.rng.gen_range(0..mean) + mean / 2;
        Duration::from_micros(jitter)
    }

    fn pick_app(&mut self) -> usize {
        let total: u32 = self
            .config
            .apps
            .iter()
            .map(|a| a.weight)
            .sum::<u32>()
            .max(1);
        let mut pick = self.rng.gen_range(0..total);
        for (i, app) in self.config.apps.iter().enumerate() {
            if pick < app.weight {
                return i;
            }
            pick -= app.weight;
        }
        self.config.apps.len() - 1
    }

    fn next_flow(&mut self, start: SimTime) -> Flow {
        let reuse =
            !self.history.is_empty() && self.rng.gen_bool(self.config.locality.clamp(0.0, 1.0));
        let (src, dst, app_idx) = if reuse {
            let idx = self.rng.gen_range(0..self.history.len());
            self.history[idx]
        } else {
            let src = self.config.hosts[self.rng.gen_range(0..self.config.hosts.len())];
            let mut dst = self.config.hosts[self.rng.gen_range(0..self.config.hosts.len())];
            if dst == src && self.config.hosts.len() > 1 {
                let i = self.rng.gen_range(0..self.config.hosts.len());
                dst = self.config.hosts[i];
                if dst == src {
                    dst = self.config.hosts[(i + 1) % self.config.hosts.len()];
                }
            }
            let app_idx = self.pick_app();
            let combo = (src, dst, app_idx);
            self.history.push(combo);
            combo
        };
        let app = self.config.apps[app_idx].clone();
        let (user, groups) =
            self.config.users[self.rng.gen_range(0..self.config.users.len())].clone();
        let src_port = self.rng.gen_range(10_000..60_000);
        let packets = self.rng.gen_range(4..200);
        let bytes = packets as u64 * self.rng.gen_range(200..1400) as u64;
        Flow {
            five_tuple: FiveTuple::new(src, src_port, dst, app.dst_port, app.protocol),
            app,
            user,
            groups,
            start,
            packets,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: usize) -> Vec<Ipv4Addr> {
        (0..n)
            .map(|i| Ipv4Addr::new(10, 0, 0, (i + 1) as u8))
            .collect()
    }

    #[test]
    fn generates_requested_number_of_flows() {
        let config = WorkloadConfig::enterprise(hosts(10), 500, 42);
        let flows = WorkloadGenerator::new(config).generate();
        assert_eq!(flows.len(), 500);
        // Start times are strictly increasing.
        for pair in flows.windows(2) {
            assert!(pair[0].start < pair[1].start);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = WorkloadGenerator::new(WorkloadConfig::enterprise(hosts(10), 200, 7)).generate();
        let b = WorkloadGenerator::new(WorkloadConfig::enterprise(hosts(10), 200, 7)).generate();
        let c = WorkloadGenerator::new(WorkloadConfig::enterprise(hosts(10), 200, 8)).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn src_and_dst_differ_and_come_from_host_set() {
        let hs = hosts(20);
        let flows =
            WorkloadGenerator::new(WorkloadConfig::enterprise(hs.clone(), 300, 1)).generate();
        for f in &flows {
            assert!(hs.contains(&f.five_tuple.src_ip));
            assert!(hs.contains(&f.five_tuple.dst_ip));
            assert_ne!(f.five_tuple.src_ip, f.five_tuple.dst_ip);
        }
    }

    #[test]
    fn mix_contains_port80_collisions() {
        // Both firefox and skype (and malware) use destination port 80 — the
        // central example of why port-based policies are too coarse.
        let flows =
            WorkloadGenerator::new(WorkloadConfig::enterprise(hosts(10), 2_000, 3)).generate();
        let port80_apps: std::collections::BTreeSet<_> = flows
            .iter()
            .filter(|f| f.five_tuple.dst_port == 80)
            .map(|f| f.app.name.clone())
            .collect();
        assert!(port80_apps.contains("firefox"));
        assert!(port80_apps.contains("skype"));
        assert!(port80_apps.len() >= 3);
    }

    #[test]
    fn locality_increases_repeats() {
        let mut low = WorkloadConfig::enterprise(hosts(30), 1_000, 9);
        low.locality = 0.0;
        let mut high = WorkloadConfig::enterprise(hosts(30), 1_000, 9);
        high.locality = 0.9;
        let unique = |flows: &[Flow]| {
            flows
                .iter()
                .map(|f| (f.five_tuple.src_ip, f.five_tuple.dst_ip, f.app.name.clone()))
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        let low_unique = unique(&WorkloadGenerator::new(low).generate());
        let high_unique = unique(&WorkloadGenerator::new(high).generate());
        assert!(
            high_unique < low_unique / 2,
            "locality should sharply reduce unique flows ({high_unique} vs {low_unique})"
        );
    }

    #[test]
    fn ground_truth_intent_is_present() {
        let flows =
            WorkloadGenerator::new(WorkloadConfig::enterprise(hosts(10), 1_000, 5)).generate();
        assert!(flows.iter().any(|f| !f.app.intended_allowed));
        assert!(flows.iter().any(|f| f.app.intended_allowed));
        assert!(flows.iter().any(|f| f.user == "system"));
    }
}
