//! Flow-table actions.
//!
//! "These actions include dropping the packet, forwarding it on a particular
//! port or number of ports, or sending the packet to the OpenFlow controller"
//! (§3.1).

use crate::match_fields::PortNo;

/// An action applied to packets matching a flow entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfAction {
    /// Drop the packet.
    Drop,
    /// Forward out of a specific port.
    Output(PortNo),
    /// Flood out of every port except the ingress port.
    Flood,
    /// Encapsulate and send to the controller.
    SendToController,
}

impl OfAction {
    /// Whether the action forwards the packet onwards in the data plane.
    pub fn forwards(&self) -> bool {
        matches!(self, OfAction::Output(_) | OfAction::Flood)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_classification() {
        assert!(OfAction::Output(3).forwards());
        assert!(OfAction::Flood.forwards());
        assert!(!OfAction::Drop.forwards());
        assert!(!OfAction::SendToController.forwards());
    }
}
