//! The controller-side interface.
//!
//! A controller implementation (the ident++ controller in
//! `identxx-controller`, or the Ethane-style / port-based baselines in
//! `identxx-baselines`) receives `packet-in` events and answers with
//! directives: flow-mods to install on switches and whether to release or
//! drop the triggering packet.

use crate::messages::{FlowMod, PacketIn};

/// What the controller wants done in response to a `packet-in`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControllerDirective {
    /// Flow-table entries to install (possibly on several switches along the
    /// path, as Fig. 1 step 4 describes).
    pub flow_mods: Vec<FlowMod>,
    /// Whether the packet that triggered the `packet-in` should be released
    /// toward its destination (`true`) or dropped (`false`).
    pub forward_packet: bool,
}

impl ControllerDirective {
    /// A directive that drops the packet and installs nothing.
    pub fn drop() -> ControllerDirective {
        ControllerDirective {
            flow_mods: Vec::new(),
            forward_packet: false,
        }
    }

    /// A directive that forwards the packet and installs the given flow mods.
    pub fn allow(flow_mods: Vec<FlowMod>) -> ControllerDirective {
        ControllerDirective {
            flow_mods,
            forward_packet: true,
        }
    }

    /// A directive that drops the packet but still installs flow mods (e.g. a
    /// drop entry so subsequent packets of the denied flow do not keep hitting
    /// the controller).
    pub fn deny_with(flow_mods: Vec<FlowMod>) -> ControllerDirective {
        ControllerDirective {
            flow_mods,
            forward_packet: false,
        }
    }
}

/// The interface every controller implementation provides.
pub trait OpenFlowController {
    /// Handles a `packet-in` at simulated time `now` (microseconds).
    fn packet_in(&mut self, event: &PacketIn, now: u64) -> ControllerDirective;

    /// A human-readable name for reporting.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::OfAction;
    use crate::flow_table::FlowEntry;
    use crate::match_fields::{FlowMatch, PacketHeader};
    use crate::messages::SwitchId;
    use identxx_proto::FiveTuple;

    /// A controller that allows everything — used to validate the trait shape.
    struct AllowAll;

    impl OpenFlowController for AllowAll {
        fn packet_in(&mut self, event: &PacketIn, _now: u64) -> ControllerDirective {
            let entry = FlowEntry::new(
                FlowMatch::exact_five_tuple(&event.header.five_tuple()),
                10,
                OfAction::Flood,
            );
            ControllerDirective::allow(vec![FlowMod::add(event.switch, entry)])
        }
        fn name(&self) -> &str {
            "allow-all"
        }
    }

    #[test]
    fn directive_constructors() {
        assert!(!ControllerDirective::drop().forward_packet);
        assert!(ControllerDirective::allow(vec![]).forward_packet);
        let deny = ControllerDirective::deny_with(vec![]);
        assert!(!deny.forward_packet);
    }

    #[test]
    fn trait_object_usage() {
        let flow = FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 80);
        let pin = PacketIn {
            switch: SwitchId(1),
            header: PacketHeader::from_flow(&flow, 1),
            size: 100,
        };
        let mut c: Box<dyn OpenFlowController> = Box::new(AllowAll);
        let directive = c.packet_in(&pin, 0);
        assert_eq!(c.name(), "allow-all");
        assert!(directive.forward_packet);
        assert_eq!(directive.flow_mods.len(), 1);
        assert_eq!(directive.flow_mods[0].switch, SwitchId(1));
    }
}
