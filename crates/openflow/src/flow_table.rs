//! The switch flow table.
//!
//! "The flow table in an OpenFlow switch maps from the 10-tuple definition of
//! a flow to an action to be taken on packets belonging to that flow" (§3.1).
//! Entries carry a priority (higher wins), hit counters, and idle/hard
//! timeouts so cached controller decisions eventually expire.

use std::collections::HashMap;

use identxx_proto::IpProtocol;

use crate::action::OfAction;
use crate::match_fields::{FlowMatch, PacketHeader, ETH_TYPE_IPV4};

/// One flow-table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    /// The match fields.
    pub flow_match: FlowMatch,
    /// Priority; among entries that match a packet the highest priority wins,
    /// ties broken by match specificity then insertion order.
    pub priority: u16,
    /// The action to apply.
    pub action: OfAction,
    /// Remove the entry if it is not hit for this many microseconds
    /// (0 = no idle timeout).
    pub idle_timeout: u64,
    /// Remove the entry this many microseconds after installation
    /// (0 = no hard timeout).
    pub hard_timeout: u64,
    /// Time the entry was installed.
    pub installed_at: u64,
    /// Time of the most recent hit.
    pub last_hit: u64,
    /// Number of packets that matched.
    pub packet_count: u64,
    /// Number of bytes that matched.
    pub byte_count: u64,
}

impl FlowEntry {
    /// Creates an entry with no timeouts.
    pub fn new(flow_match: FlowMatch, priority: u16, action: OfAction) -> FlowEntry {
        FlowEntry {
            flow_match,
            priority,
            action,
            idle_timeout: 0,
            hard_timeout: 0,
            installed_at: 0,
            last_hit: 0,
            packet_count: 0,
            byte_count: 0,
        }
    }

    /// Sets the idle timeout (builder style).
    pub fn with_idle_timeout(mut self, micros: u64) -> FlowEntry {
        self.idle_timeout = micros;
        self
    }

    /// Sets the hard timeout (builder style).
    pub fn with_hard_timeout(mut self, micros: u64) -> FlowEntry {
        self.hard_timeout = micros;
        self
    }

    /// Whether the entry has expired at time `now`.
    pub fn expired(&self, now: u64) -> bool {
        if self.hard_timeout > 0 && now >= self.installed_at.saturating_add(self.hard_timeout) {
            return true;
        }
        if self.idle_timeout > 0 {
            let reference = self.last_hit.max(self.installed_at);
            if now >= reference.saturating_add(self.idle_timeout) {
                return true;
            }
        }
        false
    }
}

/// Aggregate statistics of a flow table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Number of entries currently installed.
    pub entries: usize,
    /// Lookups that hit an entry.
    pub hits: u64,
    /// Lookups that missed (and would go to the controller).
    pub misses: u64,
    /// Entries removed by expiry.
    pub expired: u64,
}

impl TableStats {
    /// Hit ratio in `[0,1]` (0 when there have been no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The hash key for entries that are exact 5-tuple matches (the shape the
/// ident++ controller installs): IPv4 src/dst, protocol, transport ports.
type ExactKey = (u32, u32, IpProtocol, u16, u16);

/// Returns the exact-match key of an entry whose match is precisely
/// [`FlowMatch::exact_five_tuple`] — IPv4 EtherType plus the 5-tuple fields
/// set, everything else wildcarded. Any other shape is scanned linearly.
fn exact_key(m: &FlowMatch) -> Option<ExactKey> {
    if m.eth_type != Some(ETH_TYPE_IPV4)
        || m.in_port.is_some()
        || m.eth_src.is_some()
        || m.eth_dst.is_some()
        || m.vlan_id.is_some()
    {
        return None;
    }
    match (m.ip_src, m.ip_dst, m.ip_proto, m.tp_src, m.tp_dst) {
        (Some(src), Some(dst), Some(proto), Some(sp), Some(dp)) => {
            Some((src.to_u32(), dst.to_u32(), proto, sp, dp))
        }
        _ => None,
    }
}

/// The earliest instant at which `entry` could expire, or `u64::MAX` if it
/// carries no timeouts. Idle deadlines only move later (hits refresh
/// `last_hit`), so this is a valid lower bound for expiry scans.
fn expiry_deadline(entry: &FlowEntry) -> u64 {
    let mut deadline = u64::MAX;
    if entry.hard_timeout > 0 {
        deadline = deadline.min(entry.installed_at.saturating_add(entry.hard_timeout));
    }
    if entry.idle_timeout > 0 {
        let reference = entry.last_hit.max(entry.installed_at);
        deadline = deadline.min(reference.saturating_add(entry.idle_timeout));
    }
    deadline
}

/// A flow table.
///
/// Entries whose match is an exact 5-tuple (the common case: the controller
/// installs one per allowed flow) are indexed in a hash map so a lookup costs
/// one hash probe; only wildcard-bearing entries are scanned linearly.
#[derive(Debug, Clone)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    /// Indices (into `entries`) of exact-5-tuple entries, by key.
    exact: HashMap<ExactKey, Vec<usize>>,
    /// Indices of entries with any other match shape.
    wild: Vec<usize>,
    /// Lower bound on the next expiry; expiry scans are skipped before it.
    next_expiry: u64,
    stats: TableStats,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable {
            entries: Vec::new(),
            exact: HashMap::new(),
            wild: Vec::new(),
            next_expiry: u64::MAX,
            stats: TableStats::default(),
        }
    }
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Installs an entry at time `now`. An identical match at the same
    /// priority replaces the existing entry (as an OpenFlow `MODIFY` would).
    pub fn install(&mut self, mut entry: FlowEntry, now: u64) {
        entry.installed_at = now;
        entry.last_hit = now;
        self.next_expiry = self.next_expiry.min(expiry_deadline(&entry));
        // Duplicate detection goes through the index too: exact entries with
        // the same key have identical matches by construction, so only the
        // priority needs comparing; wildcard shapes scan the wild list only.
        let key = exact_key(&entry.flow_match);
        let existing = match &key {
            Some(key) => self.exact.get(key).and_then(|bucket| {
                bucket
                    .iter()
                    .copied()
                    .find(|&i| self.entries[i].priority == entry.priority)
            }),
            None => self.wild.iter().copied().find(|&i| {
                let e = &self.entries[i];
                e.flow_match == entry.flow_match && e.priority == entry.priority
            }),
        };
        match existing {
            // Same match, same priority: the index entry stays valid.
            Some(index) => self.entries[index] = entry,
            None => {
                let index = self.entries.len();
                match key {
                    Some(key) => self.exact.entry(key).or_default().push(index),
                    None => self.wild.push(index),
                }
                self.entries.push(entry);
            }
        }
        self.stats.entries = self.entries.len();
    }

    /// Rebuilds the exact/wildcard index after entries were removed.
    fn reindex(&mut self) {
        self.exact.clear();
        self.wild.clear();
        self.next_expiry = u64::MAX;
        for (index, entry) in self.entries.iter().enumerate() {
            match exact_key(&entry.flow_match) {
                Some(key) => self.exact.entry(key).or_default().push(index),
                None => self.wild.push(index),
            }
            self.next_expiry = self.next_expiry.min(expiry_deadline(entry));
        }
        self.stats.entries = self.entries.len();
    }

    /// Removes entries matching a predicate, returning how many were removed.
    pub fn remove_where<F: Fn(&FlowEntry) -> bool>(&mut self, pred: F) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !pred(e));
        let removed = before - self.entries.len();
        if removed > 0 {
            self.reindex();
        }
        removed
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.exact.clear();
        self.wild.clear();
        self.next_expiry = u64::MAX;
        self.stats.entries = 0;
    }

    /// Finds the best-matching live entry for a header: highest priority,
    /// ties broken by specificity then insertion order (entry indices are
    /// insertion-ordered, so the max over `(priority, specificity, index)`
    /// reproduces the historical linear scan exactly).
    fn best_match(&self, header: &PacketHeader) -> Option<usize> {
        let mut best: Option<(u16, u32, usize)> = None;
        let mut consider = |index: usize, specificity: u32| {
            let candidate = (self.entries[index].priority, specificity, index);
            if best.map(|b| candidate > b).unwrap_or(true) {
                best = Some(candidate);
            }
        };
        if header.eth_type == ETH_TYPE_IPV4 {
            let key = (
                header.ip_src.to_u32(),
                header.ip_dst.to_u32(),
                header.ip_proto,
                header.tp_src,
                header.tp_dst,
            );
            if let Some(bucket) = self.exact.get(&key) {
                for &index in bucket {
                    // Key equality implies the match covers the header; the
                    // exact-5-tuple shape always has specificity 6.
                    consider(index, 6);
                }
            }
        }
        for &index in &self.wild {
            let entry = &self.entries[index];
            if entry.flow_match.matches(header) {
                consider(index, entry.flow_match.specificity());
            }
        }
        best.map(|(_, _, index)| index)
    }

    /// Looks up the action for a packet header at time `now`, updating
    /// counters. Returns `None` on a table miss.
    pub fn lookup(&mut self, header: &PacketHeader, size: u32, now: u64) -> Option<OfAction> {
        self.expire(now);
        match self.best_match(header) {
            Some(index) => {
                let entry = &mut self.entries[index];
                entry.packet_count += 1;
                entry.byte_count += size as u64;
                entry.last_hit = now;
                self.stats.hits += 1;
                Some(entry.action)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Non-mutating peek at the action that would apply (no counter updates).
    pub fn peek(&self, header: &PacketHeader) -> Option<OfAction> {
        self.best_match(header).map(|i| self.entries[i].action)
    }

    /// Removes expired entries. Skipped entirely while `now` is below the
    /// earliest possible deadline, so tables of timeout-free entries never
    /// pay a scan.
    pub fn expire(&mut self, now: u64) {
        if now < self.next_expiry {
            return;
        }
        let before = self.entries.len();
        self.entries.retain(|e| !e.expired(now));
        let removed = before - self.entries.len();
        self.stats.expired += removed as u64;
        // Reindex even when nothing was removed: an idle-refreshed entry has
        // pushed its deadline later and the bound must be recomputed.
        self.reindex();
    }

    /// The entries currently installed.
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_proto::FiveTuple;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 43210, [10, 0, 0, 2], 80)
    }

    fn header() -> PacketHeader {
        PacketHeader::from_flow(&flow(), 1)
    }

    #[test]
    fn miss_then_install_then_hit() {
        let mut table = FlowTable::new();
        assert_eq!(table.lookup(&header(), 100, 0), None);
        table.install(
            FlowEntry::new(
                FlowMatch::exact_five_tuple(&flow()),
                10,
                OfAction::Output(2),
            ),
            0,
        );
        assert_eq!(table.lookup(&header(), 100, 1), Some(OfAction::Output(2)));
        let stats = table.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(table.entries()[0].packet_count, 1);
        assert_eq!(table.entries()[0].byte_count, 100);
    }

    #[test]
    fn priority_wins_over_specificity_order() {
        let mut table = FlowTable::new();
        table.install(
            FlowEntry::new(FlowMatch::wildcard(), 100, OfAction::Drop),
            0,
        );
        table.install(
            FlowEntry::new(
                FlowMatch::exact_five_tuple(&flow()),
                10,
                OfAction::Output(5),
            ),
            0,
        );
        // The wildcard drop has higher priority, so it wins.
        assert_eq!(table.lookup(&header(), 1, 0), Some(OfAction::Drop));
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut table = FlowTable::new();
        table.install(FlowEntry::new(FlowMatch::wildcard(), 10, OfAction::Drop), 0);
        table.install(
            FlowEntry::new(
                FlowMatch::exact_five_tuple(&flow()),
                10,
                OfAction::Output(5),
            ),
            0,
        );
        assert_eq!(table.lookup(&header(), 1, 0), Some(OfAction::Output(5)));
    }

    #[test]
    fn reinstalling_same_match_replaces() {
        let mut table = FlowTable::new();
        let m = FlowMatch::exact_five_tuple(&flow());
        table.install(FlowEntry::new(m, 10, OfAction::Drop), 0);
        table.install(FlowEntry::new(m, 10, OfAction::Output(1)), 5);
        assert_eq!(table.len(), 1);
        assert_eq!(table.lookup(&header(), 1, 6), Some(OfAction::Output(1)));
    }

    #[test]
    fn hard_timeout_expires_entries() {
        let mut table = FlowTable::new();
        table.install(
            FlowEntry::new(
                FlowMatch::exact_five_tuple(&flow()),
                10,
                OfAction::Output(1),
            )
            .with_hard_timeout(1_000),
            0,
        );
        assert!(table.lookup(&header(), 1, 500).is_some());
        assert!(table.lookup(&header(), 1, 1_000).is_none());
        assert_eq!(table.stats().expired, 1);
        assert!(table.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_hits() {
        let mut table = FlowTable::new();
        table.install(
            FlowEntry::new(
                FlowMatch::exact_five_tuple(&flow()),
                10,
                OfAction::Output(1),
            )
            .with_idle_timeout(1_000),
            0,
        );
        // Keep hitting it every 800us — it must stay alive.
        assert!(table.lookup(&header(), 1, 800).is_some());
        assert!(table.lookup(&header(), 1, 1_600).is_some());
        // Now leave it idle past the timeout.
        assert!(table.lookup(&header(), 1, 2_700).is_none());
    }

    #[test]
    fn remove_where_and_clear() {
        let mut table = FlowTable::new();
        table.install(
            FlowEntry::new(FlowMatch::exact_five_tuple(&flow()), 10, OfAction::Drop),
            0,
        );
        table.install(
            FlowEntry::new(FlowMatch::dst_port(22), 5, OfAction::Output(1)),
            0,
        );
        assert_eq!(table.remove_where(|e| e.action == OfAction::Drop), 1);
        assert_eq!(table.len(), 1);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.stats().entries, 0);
    }

    #[test]
    fn peek_does_not_change_counters() {
        let mut table = FlowTable::new();
        table.install(
            FlowEntry::new(
                FlowMatch::exact_five_tuple(&flow()),
                10,
                OfAction::Output(2),
            ),
            0,
        );
        assert_eq!(table.peek(&header()), Some(OfAction::Output(2)));
        assert_eq!(table.stats().hits, 0);
        assert_eq!(table.entries()[0].packet_count, 0);
    }
}
