//! # identxx-openflow — an OpenFlow-style switching substrate
//!
//! The paper assumes an OpenFlow network (§3.1): switches keep a flow table
//! mapping a 10-tuple flow description to an action; packets that match no
//! entry are encapsulated and sent to the controller (`packet-in`); the
//! controller makes a decision and installs entries (`flow-mod`) in switches
//! across the network so the decision is cached on the data path.
//!
//! This crate implements that abstraction in software:
//!
//! * [`match_fields`] — the 10-tuple packet header and wildcard match,
//! * [`action`] — forwarding actions,
//! * [`flow_table`] — priority/wildcard flow tables with counters and
//!   timeouts,
//! * [`switch`] — the switch model (lookup → action or packet-in),
//! * [`messages`] — controller⇄switch protocol messages,
//! * [`controller`] — the trait a controller implementation (the ident++
//!   controller, or the Ethane-style baseline) plugs into.
//!
//! The 10-tuple is a superset of ident++'s 5-tuple flow definition, which is
//! why the ident++ controller can drive OpenFlow switches directly.

pub mod action;
pub mod controller;
pub mod flow_table;
pub mod match_fields;
pub mod messages;
pub mod switch;

pub use action::OfAction;
pub use controller::{ControllerDirective, OpenFlowController};
pub use flow_table::{FlowEntry, FlowTable, TableStats};
pub use match_fields::{FlowMatch, MacAddr, PacketHeader, PortNo};
pub use messages::{FlowMod, FlowModCommand, PacketIn, SwitchId};
pub use switch::{ForwardingResult, Switch};
