//! The OpenFlow 10-tuple: concrete packet headers and wildcard matches.
//!
//! "OpenFlow defines a flow as a 10-tuple {Ingress port, MAC source and
//! destination addresses, Ethernet type, VLAN identifier, IP source and
//! destination addresses, IP protocol, transport source and destination
//! ports}" (§3.1).

use identxx_proto::{FiveTuple, IpProtocol, Ipv4Addr};

/// A switch port number.
pub type PortNo = u16;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacAddr(pub u64);

impl MacAddr {
    /// Derives a deterministic MAC from an IPv4 address (the simulator's
    /// hosts have locally administered addresses `02:00:xx:xx:xx:xx`).
    pub fn from_ip(ip: Ipv4Addr) -> MacAddr {
        MacAddr(0x0200_0000_0000 | ip.to_u32() as u64)
    }

    /// The broadcast MAC address.
    pub const BROADCAST: MacAddr = MacAddr(0xffff_ffff_ffff);
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0.to_be_bytes();
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[2], b[3], b[4], b[5], b[6], b[7]
        )
    }
}

/// The EtherType for IPv4.
pub const ETH_TYPE_IPV4: u16 = 0x0800;

/// A concrete packet header as seen by a switch: the 10-tuple values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHeader {
    /// Switch port the packet arrived on.
    pub in_port: PortNo,
    /// Source MAC.
    pub eth_src: MacAddr,
    /// Destination MAC.
    pub eth_dst: MacAddr,
    /// EtherType.
    pub eth_type: u16,
    /// VLAN identifier (0 = untagged).
    pub vlan_id: u16,
    /// IPv4 source address.
    pub ip_src: Ipv4Addr,
    /// IPv4 destination address.
    pub ip_dst: Ipv4Addr,
    /// IP protocol.
    pub ip_proto: IpProtocol,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl PacketHeader {
    /// Builds a header for a packet of `flow` arriving on `in_port`, deriving
    /// MAC addresses from the IP addresses.
    pub fn from_flow(flow: &FiveTuple, in_port: PortNo) -> PacketHeader {
        PacketHeader {
            in_port,
            eth_src: MacAddr::from_ip(flow.src_ip),
            eth_dst: MacAddr::from_ip(flow.dst_ip),
            eth_type: ETH_TYPE_IPV4,
            vlan_id: 0,
            ip_src: flow.src_ip,
            ip_dst: flow.dst_ip,
            ip_proto: flow.protocol,
            tp_src: flow.src_port,
            tp_dst: flow.dst_port,
        }
    }

    /// The ident++ 5-tuple of this packet.
    pub fn five_tuple(&self) -> FiveTuple {
        FiveTuple::new(
            self.ip_src,
            self.tp_src,
            self.ip_dst,
            self.tp_dst,
            self.ip_proto,
        )
    }
}

/// A 10-tuple match where every field is optionally wildcarded.
///
/// `None` means "match anything" for that field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<PortNo>,
    /// Source MAC.
    pub eth_src: Option<MacAddr>,
    /// Destination MAC.
    pub eth_dst: Option<MacAddr>,
    /// EtherType.
    pub eth_type: Option<u16>,
    /// VLAN id.
    pub vlan_id: Option<u16>,
    /// IPv4 source.
    pub ip_src: Option<Ipv4Addr>,
    /// IPv4 destination.
    pub ip_dst: Option<Ipv4Addr>,
    /// IP protocol.
    pub ip_proto: Option<IpProtocol>,
    /// Transport source port.
    pub tp_src: Option<u16>,
    /// Transport destination port.
    pub tp_dst: Option<u16>,
}

impl FlowMatch {
    /// A match with every field wildcarded (matches everything).
    pub fn wildcard() -> FlowMatch {
        FlowMatch::default()
    }

    /// An exact match on the 5-tuple of a flow, wildcarding the layer-2
    /// fields and ingress port — this is what the ident++ controller installs,
    /// since its flow definition is the 5-tuple.
    pub fn exact_five_tuple(flow: &FiveTuple) -> FlowMatch {
        FlowMatch {
            eth_type: Some(ETH_TYPE_IPV4),
            ip_src: Some(flow.src_ip),
            ip_dst: Some(flow.dst_ip),
            ip_proto: Some(flow.protocol),
            tp_src: Some(flow.src_port),
            tp_dst: Some(flow.dst_port),
            ..FlowMatch::default()
        }
    }

    /// An exact match on every field of a concrete header (Ethane-style,
    /// including ingress port and MACs).
    pub fn exact_header(header: &PacketHeader) -> FlowMatch {
        FlowMatch {
            in_port: Some(header.in_port),
            eth_src: Some(header.eth_src),
            eth_dst: Some(header.eth_dst),
            eth_type: Some(header.eth_type),
            vlan_id: Some(header.vlan_id),
            ip_src: Some(header.ip_src),
            ip_dst: Some(header.ip_dst),
            ip_proto: Some(header.ip_proto),
            tp_src: Some(header.tp_src),
            tp_dst: Some(header.tp_dst),
        }
    }

    /// A match on destination transport port only (a classic port-based
    /// firewall rule shape).
    pub fn dst_port(port: u16) -> FlowMatch {
        FlowMatch {
            eth_type: Some(ETH_TYPE_IPV4),
            tp_dst: Some(port),
            ..FlowMatch::default()
        }
    }

    /// Whether this match covers `header`.
    pub fn matches(&self, header: &PacketHeader) -> bool {
        fn field<T: PartialEq>(want: &Option<T>, got: &T) -> bool {
            match want {
                Some(w) => w == got,
                None => true,
            }
        }
        field(&self.in_port, &header.in_port)
            && field(&self.eth_src, &header.eth_src)
            && field(&self.eth_dst, &header.eth_dst)
            && field(&self.eth_type, &header.eth_type)
            && field(&self.vlan_id, &header.vlan_id)
            && field(&self.ip_src, &header.ip_src)
            && field(&self.ip_dst, &header.ip_dst)
            && field(&self.ip_proto, &header.ip_proto)
            && field(&self.tp_src, &header.tp_src)
            && field(&self.tp_dst, &header.tp_dst)
    }

    /// Number of non-wildcarded fields (used to prefer more specific entries
    /// when priorities tie).
    pub fn specificity(&self) -> u32 {
        let mut n = 0;
        if self.in_port.is_some() {
            n += 1;
        }
        if self.eth_src.is_some() {
            n += 1;
        }
        if self.eth_dst.is_some() {
            n += 1;
        }
        if self.eth_type.is_some() {
            n += 1;
        }
        if self.vlan_id.is_some() {
            n += 1;
        }
        if self.ip_src.is_some() {
            n += 1;
        }
        if self.ip_dst.is_some() {
            n += 1;
        }
        if self.ip_proto.is_some() {
            n += 1;
        }
        if self.tp_src.is_some() {
            n += 1;
        }
        if self.tp_dst.is_some() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 43210, [10, 0, 0, 2], 80)
    }

    #[test]
    fn header_round_trips_five_tuple() {
        let h = PacketHeader::from_flow(&flow(), 3);
        assert_eq!(h.five_tuple(), flow());
        assert_eq!(h.in_port, 3);
        assert_eq!(h.eth_type, ETH_TYPE_IPV4);
    }

    #[test]
    fn wildcard_matches_everything() {
        let h = PacketHeader::from_flow(&flow(), 1);
        assert!(FlowMatch::wildcard().matches(&h));
        assert_eq!(FlowMatch::wildcard().specificity(), 0);
    }

    #[test]
    fn exact_five_tuple_matching() {
        let m = FlowMatch::exact_five_tuple(&flow());
        let hit = PacketHeader::from_flow(&flow(), 7);
        let miss_port =
            PacketHeader::from_flow(&FiveTuple::tcp([10, 0, 0, 1], 43210, [10, 0, 0, 2], 443), 7);
        let miss_reverse = PacketHeader::from_flow(&flow().reversed(), 7);
        assert!(m.matches(&hit));
        assert!(!m.matches(&miss_port));
        assert!(!m.matches(&miss_reverse));
        // Ingress port is wildcarded so any port matches.
        let other_port = PacketHeader::from_flow(&flow(), 99);
        assert!(m.matches(&other_port));
        assert_eq!(m.specificity(), 6);
    }

    #[test]
    fn exact_header_matching_includes_port_and_macs() {
        let h = PacketHeader::from_flow(&flow(), 4);
        let m = FlowMatch::exact_header(&h);
        assert!(m.matches(&h));
        let mut other = h;
        other.in_port = 5;
        assert!(!m.matches(&other));
        assert_eq!(m.specificity(), 10);
    }

    #[test]
    fn dst_port_match_is_port_based() {
        let m = FlowMatch::dst_port(80);
        let web = PacketHeader::from_flow(&flow(), 1);
        let skype_on_80 =
            PacketHeader::from_flow(&FiveTuple::tcp([10, 0, 0, 9], 999, [10, 9, 9, 9], 80), 1);
        let ssh =
            PacketHeader::from_flow(&FiveTuple::tcp([10, 0, 0, 1], 999, [10, 0, 0, 2], 22), 1);
        assert!(m.matches(&web));
        assert!(m.matches(&skype_on_80)); // cannot tell skype from web!
        assert!(!m.matches(&ssh));
    }

    #[test]
    fn mac_formatting_and_derivation() {
        let mac = MacAddr::from_ip(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(mac.to_string(), "02:00:0a:00:00:01");
        assert_ne!(mac, MacAddr::BROADCAST);
    }
}
