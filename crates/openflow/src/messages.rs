//! Controller ⇄ switch protocol messages.

use crate::action::OfAction;
use crate::flow_table::FlowEntry;
use crate::match_fields::{FlowMatch, PacketHeader};

/// Identifier of a switch (its datapath id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub u64);

/// A `packet-in`: a switch forwarding a packet that matched no flow-table
/// entry (or one whose action is `SendToController`) to the controller.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketIn {
    /// The switch that sent the packet.
    pub switch: SwitchId,
    /// The packet header.
    pub header: PacketHeader,
    /// Packet size in bytes.
    pub size: u32,
}

/// A `flow-mod` command type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModCommand {
    /// Add (or replace) an entry.
    Add,
    /// Delete entries matching the given match.
    Delete,
}

/// A `flow-mod`: the controller installing or removing flow-table entries on a
/// switch.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMod {
    /// The target switch.
    pub switch: SwitchId,
    /// Add or delete.
    pub command: FlowModCommand,
    /// The entry to add (for `Add`).
    pub entry: Option<FlowEntry>,
    /// The match to delete (for `Delete`).
    pub delete_match: Option<FlowMatch>,
}

impl FlowMod {
    /// An add command.
    pub fn add(switch: SwitchId, entry: FlowEntry) -> FlowMod {
        FlowMod {
            switch,
            command: FlowModCommand::Add,
            entry: Some(entry),
            delete_match: None,
        }
    }

    /// A delete command for entries with the given match.
    pub fn delete(switch: SwitchId, flow_match: FlowMatch) -> FlowMod {
        FlowMod {
            switch,
            command: FlowModCommand::Delete,
            entry: None,
            delete_match: Some(flow_match),
        }
    }
}

/// A `packet-out`: the controller instructing a switch to emit a specific
/// packet with an action (used to release the buffered first packet of a flow
/// after a decision is made).
#[derive(Debug, Clone, PartialEq)]
pub struct PacketOut {
    /// The target switch.
    pub switch: SwitchId,
    /// The packet header to act on.
    pub header: PacketHeader,
    /// The action to apply.
    pub action: OfAction,
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_proto::FiveTuple;

    #[test]
    fn flow_mod_constructors() {
        let flow = FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        let entry = FlowEntry::new(FlowMatch::exact_five_tuple(&flow), 1, OfAction::Drop);
        let add = FlowMod::add(SwitchId(7), entry.clone());
        assert_eq!(add.command, FlowModCommand::Add);
        assert_eq!(add.entry, Some(entry));
        assert!(add.delete_match.is_none());

        let del = FlowMod::delete(SwitchId(7), FlowMatch::exact_five_tuple(&flow));
        assert_eq!(del.command, FlowModCommand::Delete);
        assert!(del.entry.is_none());
        assert!(del.delete_match.is_some());
    }

    #[test]
    fn packet_in_carries_header() {
        let flow = FiveTuple::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        let pin = PacketIn {
            switch: SwitchId(3),
            header: PacketHeader::from_flow(&flow, 9),
            size: 1500,
        };
        assert_eq!(pin.header.five_tuple(), flow);
        assert_eq!(pin.switch, SwitchId(3));
    }
}
