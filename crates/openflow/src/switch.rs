//! The software OpenFlow switch.
//!
//! "An arriving packet that does not match any of the entries in the flow
//! table is encapsulated and sent to the OpenFlow controller for inspection"
//! (§3.1). The switch model applies its flow table to each packet and either
//! forwards, drops, or produces a [`PacketIn`] for the controller.

use std::collections::BTreeMap;

use crate::action::OfAction;
use crate::flow_table::{FlowEntry, FlowTable};
use crate::match_fields::{MacAddr, PacketHeader, PortNo};
use crate::messages::{FlowMod, FlowModCommand, PacketIn, SwitchId};

/// The result of a switch processing one packet.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardingResult {
    /// Forward out of the given port.
    Forwarded(PortNo),
    /// Flood out of every port except the ingress.
    Flooded,
    /// Dropped by an explicit drop entry.
    Dropped,
    /// No matching entry — the packet is sent to the controller.
    SentToController(PacketIn),
}

/// A software OpenFlow switch.
#[derive(Debug, Clone)]
pub struct Switch {
    /// The switch's datapath id.
    id: SwitchId,
    /// The flow table.
    table: FlowTable,
    /// Learned/configured mapping from destination MAC to output port, used
    /// to pick the output port when the controller says "forward along the
    /// path" (the simulator configures this from the topology).
    mac_ports: BTreeMap<MacAddr, PortNo>,
    /// Whether the switch has been compromised (used by the §5 security
    /// analysis experiments): a compromised switch forwards everything and
    /// never consults the controller.
    compromised: bool,
}

impl Switch {
    /// Creates a switch with an empty flow table.
    pub fn new(id: SwitchId) -> Switch {
        Switch {
            id,
            table: FlowTable::new(),
            mac_ports: BTreeMap::new(),
            compromised: false,
        }
    }

    /// The switch id.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// Configures which port leads to a MAC address.
    pub fn set_mac_port(&mut self, mac: MacAddr, port: PortNo) {
        self.mac_ports.insert(mac, port);
    }

    /// The port leading to a MAC, if known.
    pub fn port_for_mac(&self, mac: MacAddr) -> Option<PortNo> {
        self.mac_ports.get(&mac).copied()
    }

    /// Marks the switch as compromised (§5.2): all traffic passes unchecked.
    pub fn set_compromised(&mut self, compromised: bool) {
        self.compromised = compromised;
    }

    /// Whether the switch is compromised.
    pub fn is_compromised(&self) -> bool {
        self.compromised
    }

    /// Read access to the flow table.
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Mutable access to the flow table (used by tests and the controller's
    /// direct-install path in the simulator).
    pub fn table_mut(&mut self) -> &mut FlowTable {
        &mut self.table
    }

    /// Applies a `flow-mod` from the controller at time `now`.
    pub fn apply_flow_mod(&mut self, flow_mod: &FlowMod, now: u64) {
        debug_assert_eq!(flow_mod.switch, self.id, "flow-mod routed to wrong switch");
        match flow_mod.command {
            FlowModCommand::Add => {
                if let Some(entry) = &flow_mod.entry {
                    self.table.install(entry.clone(), now);
                }
            }
            FlowModCommand::Delete => {
                if let Some(m) = flow_mod.delete_match {
                    self.table.remove_where(|e| e.flow_match == m);
                }
            }
        }
    }

    /// Processes one packet arriving at the switch at time `now`.
    pub fn process(&mut self, header: &PacketHeader, size: u32, now: u64) -> ForwardingResult {
        if self.compromised {
            // A compromised switch lets everything through without consulting
            // its table or the controller (§5.2).
            return match self.port_for_mac(header.eth_dst) {
                Some(port) => ForwardingResult::Forwarded(port),
                None => ForwardingResult::Flooded,
            };
        }
        match self.table.lookup(header, size, now) {
            Some(OfAction::Drop) => ForwardingResult::Dropped,
            Some(OfAction::Output(port)) => ForwardingResult::Forwarded(port),
            Some(OfAction::Flood) => ForwardingResult::Flooded,
            Some(OfAction::SendToController) | None => {
                ForwardingResult::SentToController(PacketIn {
                    switch: self.id,
                    header: *header,
                    size,
                })
            }
        }
    }

    /// Convenience used by controllers that decide to allow a flow: install an
    /// exact-match forwarding entry toward the destination MAC's port, or a
    /// drop entry.
    pub fn install_decision(&mut self, entry: FlowEntry, now: u64) {
        self.table.install(entry, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_fields::FlowMatch;
    use identxx_proto::FiveTuple;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 43210, [10, 0, 0, 2], 80)
    }

    fn header() -> PacketHeader {
        PacketHeader::from_flow(&flow(), 1)
    }

    #[test]
    fn table_miss_goes_to_controller() {
        let mut sw = Switch::new(SwitchId(1));
        match sw.process(&header(), 100, 0) {
            ForwardingResult::SentToController(pin) => {
                assert_eq!(pin.switch, SwitchId(1));
                assert_eq!(pin.header.five_tuple(), flow());
            }
            other => panic!("expected packet-in, got {other:?}"),
        }
        assert_eq!(sw.table().stats().misses, 1);
    }

    #[test]
    fn flow_mod_add_then_forward_and_drop() {
        let mut sw = Switch::new(SwitchId(1));
        let allow = FlowEntry::new(
            FlowMatch::exact_five_tuple(&flow()),
            10,
            OfAction::Output(7),
        );
        sw.apply_flow_mod(&FlowMod::add(SwitchId(1), allow), 0);
        assert_eq!(sw.process(&header(), 64, 1), ForwardingResult::Forwarded(7));

        let reverse = flow().reversed();
        let drop = FlowEntry::new(FlowMatch::exact_five_tuple(&reverse), 10, OfAction::Drop);
        sw.apply_flow_mod(&FlowMod::add(SwitchId(1), drop), 2);
        let rev_header = PacketHeader::from_flow(&reverse, 2);
        assert_eq!(sw.process(&rev_header, 64, 3), ForwardingResult::Dropped);
    }

    #[test]
    fn flow_mod_delete_removes_entries() {
        let mut sw = Switch::new(SwitchId(1));
        let m = FlowMatch::exact_five_tuple(&flow());
        sw.apply_flow_mod(
            &FlowMod::add(SwitchId(1), FlowEntry::new(m, 10, OfAction::Output(7))),
            0,
        );
        assert_eq!(sw.table().len(), 1);
        sw.apply_flow_mod(&FlowMod::delete(SwitchId(1), m), 1);
        assert_eq!(sw.table().len(), 0);
        assert!(matches!(
            sw.process(&header(), 64, 2),
            ForwardingResult::SentToController(_)
        ));
    }

    #[test]
    fn send_to_controller_action_behaves_like_miss() {
        let mut sw = Switch::new(SwitchId(2));
        sw.install_decision(
            FlowEntry::new(FlowMatch::wildcard(), 1, OfAction::SendToController),
            0,
        );
        assert!(matches!(
            sw.process(&header(), 64, 1),
            ForwardingResult::SentToController(_)
        ));
    }

    #[test]
    fn flood_action() {
        let mut sw = Switch::new(SwitchId(2));
        sw.install_decision(FlowEntry::new(FlowMatch::wildcard(), 1, OfAction::Flood), 0);
        assert_eq!(sw.process(&header(), 64, 1), ForwardingResult::Flooded);
    }

    #[test]
    fn compromised_switch_bypasses_policy() {
        let mut sw = Switch::new(SwitchId(3));
        // Policy says drop everything.
        sw.install_decision(
            FlowEntry::new(FlowMatch::wildcard(), 100, OfAction::Drop),
            0,
        );
        assert_eq!(sw.process(&header(), 64, 1), ForwardingResult::Dropped);
        // After compromise the drop rule is ignored.
        sw.set_compromised(true);
        assert!(sw.is_compromised());
        sw.set_mac_port(MacAddr::from_ip(flow().dst_ip), 4);
        assert_eq!(sw.process(&header(), 64, 2), ForwardingResult::Forwarded(4));
        // Unknown destination floods.
        let other = PacketHeader::from_flow(&FiveTuple::tcp([1, 1, 1, 1], 1, [2, 2, 2, 2], 2), 1);
        assert_eq!(sw.process(&other, 64, 3), ForwardingResult::Flooded);
    }

    #[test]
    fn mac_port_learning_lookup() {
        let mut sw = Switch::new(SwitchId(4));
        let mac = MacAddr::from_ip(flow().dst_ip);
        assert_eq!(sw.port_for_mac(mac), None);
        sw.set_mac_port(mac, 9);
        assert_eq!(sw.port_for_mac(mac), Some(9));
    }
}
