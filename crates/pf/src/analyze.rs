//! Static analysis of PF+=2 rule sets.
//!
//! The evaluator deliberately fails *closed*: undefined tables are empty,
//! unknown functions never match, unresolvable service names never match.
//! That is the right runtime posture for a security policy, but it means a
//! typo silently turns a rule into dead weight instead of an error. This
//! module is the complementary *load-time* check: it inspects a parsed
//! [`RuleSet`] and reports everything the interpreter would silently swallow,
//! as structured [`Diagnostic`]s carrying source [`Span`]s.
//!
//! The passes, in the order [`analyze`] runs them:
//!
//! 1. **References** — undefined tables, dicts, macros, functions and service
//!    names, built-in arity mistakes, and `@src[key]`/`@dst[key]` keys no
//!    daemon field is known to produce.
//! 2. **Satisfiability** — predicates that constant-fold to `false` (the rule
//!    can never match) or to `true` (the predicate is noise), and predicate
//!    *sets* whose value constraints are mutually exclusive (e.g. two `eq`
//!    calls pinning the same key to different values).
//! 3. **Ordering** — rules that can never decide a flow because a later rule
//!    subsumes them (last match wins) or an earlier `quick` rule always
//!    preempts them; overlapping rule pairs with opposite actions where only
//!    ordering picks the winner; and the compiler's own dead-rule elimination
//!    results, re-reported with their reasons.
//! 4. **Cache granularity** — rules whose port constraints a coarse
//!    [`CacheGranularity`] would erase from the state-table key, so a cached
//!    verdict for one port would be replayed for flows on other ports
//!    (see [`granularity_diagnostics`]).
//!
//! ## Soundness contract
//!
//! Every *shadowing* claim is sound with respect to the reference
//! interpreter: if the analyzer says a rule never decides, no flow/response
//! combination makes [`crate::EvalContext::evaluate`] pick that rule. To keep
//! that promise the analyzer only claims subsumption it can prove — address
//! sets are compared per CIDR prefix, predicate sets syntactically — and it
//! models the interpreter's quirks exactly (an undefined table is the *empty*
//! set, so a negated reference to it matches **every** address; an
//! unresolvable named port matches none). The reverse direction is
//! best-effort: some dead rules are necessarily missed (the problem is
//! undecidable in general), which is why these are warnings, not a proof of
//! liveness for the rules left unflagged.

use std::collections::{BTreeMap, BTreeSet};

use identxx_proto::{well_known, IpProtocol};

use crate::ast::{Action, AddrSpec, Endpoint, FnArg, FnCall, PortSpec, Rule, RuleSet, Span};
use crate::compile::{CompiledPolicy, PolicyCompiler};
use crate::functions::{numeric_cmp, parse_list_literal, FunctionRegistry};
use crate::matcher::FieldSet;
use crate::parser::parse_ruleset;
use crate::services;
use crate::state::CacheGranularity;

/// How serious a diagnostic is.
///
/// `Error` means the configuration almost certainly does not do what its
/// author intended (a dangling reference, an impossible predicate set);
/// `pfcheck` exits non-zero when any error is present. `Warning` flags rules
/// that are legal but suspicious — dead, order-dependent, or unsafe under the
/// configured cache granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but well-defined configuration.
    Warning,
    /// Almost certainly a configuration mistake.
    Error,
}

impl Severity {
    /// Lower-case name (`"warning"` / `"error"`), as printed and serialized.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of problem a [`Diagnostic`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// A rule that can never decide any flow: a later rule subsumes it, an
    /// earlier `quick` rule always preempts it, or the compiler's dead-rule
    /// elimination dropped it.
    ShadowedRule,
    /// An earlier `quick` rule intercepts part of a later rule's match space.
    PartialShadow,
    /// Two overlapping rules with opposite actions where neither contains the
    /// other, so only rule order picks the winner on the intersection.
    Contradiction,
    /// A reference to a table, dict, macro or service name that is not
    /// defined anywhere in the (merged) configuration.
    UndefinedReference,
    /// A `with` call to a function that is neither built in nor registered.
    UnknownFunction,
    /// A built-in function called with the wrong number of arguments.
    BadArity,
    /// A `@src[key]`/`@dst[key]` key that no known daemon field produces.
    UnknownResponseKey,
    /// A predicate (or predicate set) that can never be true, so the rule can
    /// never match.
    Unsatisfiable,
    /// A predicate that is always true and therefore constrains nothing.
    Tautology,
    /// A port-constrained rule whose ports the configured cache granularity
    /// erases from the state-table key.
    GranularityUnsafe,
    /// A `verify()` key argument that names no key in the deployment's
    /// trusted-key registry (and is not raw public-key hex), or a dict entry
    /// that does not exist — the signature can never check out.
    DanglingKey,
}

impl Category {
    /// Stable kebab-case code for this category (used in text and JSON
    /// output).
    pub fn as_str(&self) -> &'static str {
        match self {
            Category::ShadowedRule => "shadowed-rule",
            Category::PartialShadow => "partial-shadow",
            Category::Contradiction => "contradiction",
            Category::UndefinedReference => "undefined-reference",
            Category::UnknownFunction => "unknown-function",
            Category::BadArity => "bad-arity",
            Category::UnknownResponseKey => "unknown-response-key",
            Category::Unsatisfiable => "unsatisfiable",
            Category::Tautology => "tautology",
            Category::GranularityUnsafe => "granularity-unsafe",
            Category::DanglingKey => "dangling-key",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A secondary source location attached to a [`Diagnostic`] — e.g. the rule
/// that shadows the one being reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    /// Position of the related rule or call.
    pub span: Span,
    /// Index of the related rule in [`RuleSet::rules`], when it is a rule.
    pub rule_index: Option<usize>,
    /// Why this location is relevant.
    pub note: String,
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// What kind of problem this is.
    pub category: Category,
    /// Where the problem is (the rule or the offending call).
    pub span: Span,
    /// Index of the rule this diagnostic is about, when it is about a rule.
    pub rule_index: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// Other locations that explain the finding.
    pub related: Vec<Related>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.category, self.span, self.message
        )?;
        for rel in &self.related {
            write!(f, "\n  note at {}: {}", rel.span, rel.note)?;
        }
        Ok(())
    }
}

/// Context the analyzer cannot learn from the rule set itself.
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    /// The state-table granularity the controller will cache verdicts at.
    /// When set, [`analyze`] appends [`granularity_diagnostics`].
    pub granularity: Option<CacheGranularity>,
    /// Response keys the deployment's daemons produce beyond
    /// [`well_known::ALL`]. Keys outside the union are reported as
    /// [`Category::UnknownResponseKey`] warnings.
    pub extra_response_keys: Vec<String>,
    /// Names of user functions registered with the evaluator (see
    /// [`FunctionRegistry`]). Calls to functions outside this list and the
    /// built-ins are [`Category::UnknownFunction`] errors.
    pub user_functions: Vec<String>,
    /// Names of context-provided named lists (the evaluator's
    /// `with_named_list`). `member`'s list argument resolves these before
    /// macros and tables, and their contents are unknown statically.
    pub named_lists: Vec<String>,
    /// Names in the deployment's trusted-key registry (the evaluator's
    /// `with_key_registry`; see `KeyRegistry::names`). `None` means the
    /// registry is unknown and the dangling-key pass is skipped; `Some`
    /// (even empty) enables it: a `verify()` key argument that is a bare
    /// name outside this list — and is not raw public-key hex — is a
    /// [`Category::DanglingKey`] error.
    pub trusted_key_names: Option<Vec<String>>,
}

/// Runs every analysis pass over `ruleset` and returns the findings, sorted
/// by source position.
pub fn analyze(ruleset: &RuleSet, options: &AnalysisOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    reference_pass(ruleset, options, &mut diags);
    let sat = satisfiability_pass(ruleset, options, &mut diags);
    ordering_pass(ruleset, options, &sat, &mut diags);
    if let Some(granularity) = options.granularity {
        diags.extend(granularity_diagnostics(ruleset, granularity));
    }
    if let Some(trusted) = &options.trusted_key_names {
        dangling_key_pass(ruleset, trusted, &mut diags);
    }
    diags.sort_by_key(|d| (d.span.line, d.span.col, d.category.as_str()));
    diags
}

/// Reports every rule whose port constraints `granularity` erases from the
/// state-table key.
///
/// A cached verdict is replayed for any later flow that maps to the same
/// cache key. [`CacheGranularity::HostPair`] keys on addresses only, so a
/// rule that inspects *any* port can disagree with the cache;
/// [`CacheGranularity::HostPairDstPort`] preserves the destination port but
/// erases the source port. [`CacheGranularity::ExactFiveTuple`] is always
/// safe. This check is linear and allocation-light, so the controller runs it
/// at construction time on every policy.
pub fn granularity_diagnostics(
    ruleset: &RuleSet,
    granularity: CacheGranularity,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if granularity == CacheGranularity::ExactFiveTuple {
        return diags;
    }
    for (index, rule) in ruleset.rules.iter().enumerate() {
        let from_port = rule.from.as_ref().and_then(|e| e.port.as_ref()).is_some();
        let to_port = rule.to.as_ref().and_then(|e| e.port.as_ref()).is_some();
        let erased = match granularity {
            CacheGranularity::ExactFiveTuple => continue,
            CacheGranularity::HostPairDstPort if from_port => "source port",
            CacheGranularity::HostPairDstPort => continue,
            CacheGranularity::HostPair if from_port && to_port => "source and destination ports",
            CacheGranularity::HostPair if from_port => "source port",
            CacheGranularity::HostPair if to_port => "destination port",
            CacheGranularity::HostPair => continue,
        };
        diags.push(Diagnostic {
            severity: Severity::Warning,
            category: Category::GranularityUnsafe,
            span: rule_span(rule),
            rule_index: Some(index),
            message: format!(
                "rule constrains the {erased}, but cache granularity {granularity:?} drops \
                 {erased} from the state key: a cached verdict for one port would be replayed \
                 for flows on other ports"
            ),
            related: Vec::new(),
        });
    }
    diags
}

/// [`granularity_diagnostics`], sharpened with a [`CompiledPolicy`]'s
/// field-inspection sets (see [`CompiledPolicy::fields_inspected`]).
///
/// Two refinements over the syntactic pass:
///
/// * rules the compiler's dead-rule elimination removed are skipped — a rule
///   that can never decide a flow cannot disagree with the state cache, and
///   it is already reported as dead elsewhere;
/// * the message blames the *exact* inspected fields the granularity erases
///   (from the matcher tree's per-rule [`FieldSet`]s), so the administrator
///   knows which field to preserve — the work-list a future per-rule
///   granularity override would consume.
///
/// The two passes flag the same live rules: the tree derives its port fields
/// from the same endpoint structure the syntactic pass reads. Callers that
/// already hold a compiled policy (the controller, `pfcheck`) should prefer
/// this form; [`analyze`] keeps the syntactic pass so it works on a bare
/// [`RuleSet`].
pub fn granularity_diagnostics_with(
    ruleset: &RuleSet,
    granularity: CacheGranularity,
    compiled: &CompiledPolicy,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let erased = match granularity {
        CacheGranularity::ExactFiveTuple => return diags,
        CacheGranularity::HostPairDstPort => FieldSet::SRC_PORT,
        CacheGranularity::HostPair => FieldSet::SRC_PORT.union(FieldSet::DST_PORT),
    };
    let dead: BTreeSet<usize> = compiled.dead_rules().iter().map(|d| d.index).collect();
    for (index, rule) in ruleset.rules.iter().enumerate() {
        if dead.contains(&index) {
            continue;
        }
        // Blame only the structural port constraint (what the syntactic pass
        // sees); the inspection set additionally tells us which erased fields
        // the matcher actually reads, which is what the message names.
        let inspected = match compiled.fields_inspected(index) {
            Some(fields) => fields,
            None => continue,
        };
        let from_port = rule.from.as_ref().and_then(|e| e.port.as_ref()).is_some();
        let to_port = rule.to.as_ref().and_then(|e| e.port.as_ref()).is_some();
        if !from_port && !to_port {
            continue;
        }
        let structural = if from_port {
            FieldSet::SRC_PORT
        } else {
            FieldSet::EMPTY
        }
        .union(if to_port {
            FieldSet::DST_PORT
        } else {
            FieldSet::EMPTY
        });
        let blamed = structural.intersect(inspected).intersect(erased);
        if blamed.is_empty() {
            continue;
        }
        diags.push(Diagnostic {
            severity: Severity::Warning,
            category: Category::GranularityUnsafe,
            span: rule_span(rule),
            rule_index: Some(index),
            message: format!(
                "rule inspects {blamed}, but cache granularity {granularity:?} drops \
                 {blamed} from the state key: a cached verdict for one port would be \
                 replayed for flows on other ports (rule inspects {inspected})"
            ),
            related: Vec::new(),
        });
    }
    diags
}

fn rule_span(rule: &Rule) -> Span {
    if rule.span.is_known() {
        rule.span
    } else if rule.line != 0 {
        Span::new(rule.line, 1)
    } else {
        Span::default()
    }
}

fn call_span(call: &FnCall) -> Span {
    if call.span.is_known() {
        call.span
    } else if call.line != 0 {
        Span::new(call.line, 1)
    } else {
        Span::default()
    }
}

// ---------------------------------------------------------------------------
// Pass 1: references
// ---------------------------------------------------------------------------

/// Built-in argument counts: `(name, min, max)`.
const BUILTIN_ARITY: &[(&str, usize, usize)] = &[
    ("eq", 2, 2),
    ("ne", 2, 2),
    ("gt", 2, 2),
    ("lt", 2, 2),
    ("gte", 2, 2),
    ("lte", 2, 2),
    ("exists", 1, 1),
    ("member", 2, 2),
    ("includes", 2, 2),
    ("allowed", 1, 1),
    ("verify", 3, usize::MAX),
];

fn reference_pass(ruleset: &RuleSet, options: &AnalysisOptions, diags: &mut Vec<Diagnostic>) {
    let known_keys: BTreeSet<&str> = well_known::ALL
        .iter()
        .copied()
        .chain(options.extra_response_keys.iter().map(String::as_str))
        .collect();

    fn check_endpoint(
        ruleset: &RuleSet,
        diags: &mut Vec<Diagnostic>,
        endpoint: Option<&Endpoint>,
        side: &str,
        index: usize,
        span: Span,
    ) {
        let Some(endpoint) = endpoint else { return };
        if let AddrSpec::Table(name) = &endpoint.addr {
            if !ruleset.tables.contains_key(name) {
                let extra = if endpoint.negate {
                    "; negated, the reference matches EVERY address"
                } else {
                    "; the endpoint matches no address"
                };
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    category: Category::UndefinedReference,
                    span,
                    rule_index: Some(index),
                    message: format!("{side} references undefined table <{name}>{extra}"),
                    related: Vec::new(),
                });
            }
        }
        if let Some(PortSpec::Named(name)) = &endpoint.port {
            if services::resolve_port(name).is_none() {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    category: Category::UndefinedReference,
                    span,
                    rule_index: Some(index),
                    message: format!(
                        "{side} uses unknown service name `port {name}`; the endpoint matches \
                         no port"
                    ),
                    related: Vec::new(),
                });
            }
        }
    }

    for (index, rule) in ruleset.rules.iter().enumerate() {
        let span = rule_span(rule);
        check_endpoint(ruleset, diags, rule.from.as_ref(), "`from`", index, span);
        check_endpoint(ruleset, diags, rule.to.as_ref(), "`to`", index, span);

        for call in &rule.withs {
            let span = call_span(call);
            let name = call.name.as_str();
            if let Some(&(_, min, max)) = BUILTIN_ARITY.iter().find(|(n, _, _)| *n == name) {
                if call.args.len() < min || call.args.len() > max {
                    let expected = if max == usize::MAX {
                        format!("at least {min}")
                    } else if min == max {
                        format!("{min}")
                    } else {
                        format!("{min}..{max}")
                    };
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        category: Category::BadArity,
                        span,
                        rule_index: Some(index),
                        message: format!(
                            "`{name}` takes {expected} argument(s), got {}; the call never \
                             matches",
                            call.args.len()
                        ),
                        related: Vec::new(),
                    });
                }
            } else if !FunctionRegistry::is_builtin(name)
                && !options.user_functions.iter().any(|f| f == name)
            {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    category: Category::UnknownFunction,
                    span,
                    rule_index: Some(index),
                    message: format!(
                        "unknown function `{name}`; unknown functions never match, so the rule \
                         is inert"
                    ),
                    related: Vec::new(),
                });
            }

            for arg in &call.args {
                match arg {
                    FnArg::MacroRef(m) if !ruleset.macros.contains_key(m) => {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            category: Category::UndefinedReference,
                            span,
                            rule_index: Some(index),
                            message: format!(
                                "reference to undefined macro ${m}; the argument resolves to \
                                 nothing and the call never matches"
                            ),
                            related: Vec::new(),
                        });
                    }
                    FnArg::DictRef { dict, key, .. } => match dict.as_str() {
                        "src" | "dst" if !known_keys.contains(key.as_str()) => {
                            diags.push(Diagnostic {
                                severity: Severity::Warning,
                                category: Category::UnknownResponseKey,
                                span,
                                rule_index: Some(index),
                                message: format!(
                                    "@{dict}[{key}] is not a well-known response key; no \
                                     standard daemon field produces it"
                                ),
                                related: Vec::new(),
                            });
                        }
                        "src" | "dst" => {}
                        other if !ruleset.dicts.contains_key(other) => {
                            diags.push(Diagnostic {
                                severity: Severity::Error,
                                category: Category::UndefinedReference,
                                span,
                                rule_index: Some(index),
                                message: format!(
                                    "reference to undefined dict @{other}[{key}]; the argument \
                                     resolves to nothing and the call never matches"
                                ),
                                related: Vec::new(),
                            });
                        }
                        _ => {}
                    },
                    _ => {}
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dangling-key pass: verify() key arguments vs the trusted-key registry
// ---------------------------------------------------------------------------

/// Whether `text` parses as a raw public key (the evaluator's fallback when
/// the trusted-key registry has no entry for it): 64 hex characters.
fn looks_like_public_key_hex(text: &str) -> bool {
    text.len() == 64 && text.bytes().all(|b| b.is_ascii_hexdigit())
}

/// Reports every `verify()` whose key argument can be resolved statically
/// and resolves to no usable key. The evaluator resolves the second argument
/// first against the trusted-key registry by name and then as raw hex, so a
/// bare name outside `trusted` (that is not hex) makes the signature check
/// unsatisfiable and the rule inert — exactly the failure mode of rotating a
/// controller key out from under a shipped policy.
fn dangling_key_pass(ruleset: &RuleSet, trusted: &[String], diags: &mut Vec<Diagnostic>) {
    for (index, rule) in ruleset.rules.iter().enumerate() {
        for call in &rule.withs {
            if call.name != "verify" || call.args.len() < 2 {
                continue;
            }
            let span = call_span(call);
            match &call.args[1] {
                FnArg::Literal(name) => {
                    if looks_like_public_key_hex(name) || trusted.iter().any(|t| t == name) {
                        continue;
                    }
                    let known = if trusted.is_empty() {
                        String::from("the registry is empty")
                    } else {
                        format!("registry keys: {}", trusted.join(", "))
                    };
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        category: Category::DanglingKey,
                        span,
                        rule_index: Some(index),
                        message: format!(
                            "`verify` trusts key `{name}`, which is not in the deployment's \
                             trusted-key registry and is not public-key hex; the signature can \
                             never check out and the rule is inert ({known})"
                        ),
                        related: Vec::new(),
                    });
                }
                FnArg::DictRef { dict, key, .. } if dict != "src" && dict != "dst" => {
                    // Undefined dicts are already `undefined-reference` errors
                    // in the reference pass; here we check the entry.
                    let Some(entries) = ruleset.dicts.get(dict) else {
                        continue;
                    };
                    match entries.get(key) {
                        None => diags.push(Diagnostic {
                            severity: Severity::Error,
                            category: Category::DanglingKey,
                            span,
                            rule_index: Some(index),
                            message: format!(
                                "`verify` reads its key from @{dict}[{key}], but dict <{dict}> \
                                 has no entry `{key}`; the signature can never check out and \
                                 the rule is inert"
                            ),
                            related: Vec::new(),
                        }),
                        Some(value)
                            if !looks_like_public_key_hex(value)
                                && !trusted.iter().any(|t| t == value) =>
                        {
                            diags.push(Diagnostic {
                                severity: Severity::Error,
                                category: Category::DanglingKey,
                                span,
                                rule_index: Some(index),
                                message: format!(
                                    "`verify` reads its key from @{dict}[{key}], but the entry \
                                     is neither public-key hex nor a trusted-key registry name; \
                                     the signature can never check out and the rule is inert"
                                ),
                                related: Vec::new(),
                            });
                        }
                        Some(_) => {}
                    }
                }
                // @src/@dst responses and macro text are dynamic; nothing to
                // check statically.
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 2: satisfiability (constant folding + value constraints)
// ---------------------------------------------------------------------------

/// Result of statically resolving a function argument.
enum StaticArg {
    /// Statically resolvable: `Some(value)` or known-absent (`None`), exactly
    /// what the interpreter's `resolve_arg` would return.
    Known(Option<String>),
    /// Depends on the `@src`/`@dst` responses at evaluation time.
    Runtime,
}

fn resolve_static(arg: &FnArg, ruleset: &RuleSet) -> StaticArg {
    match arg {
        FnArg::Literal(text) => StaticArg::Known(Some(text.clone())),
        FnArg::MacroRef(name) => StaticArg::Known(ruleset.macros.get(name).cloned()),
        FnArg::DictRef { dict, key, .. } => match dict.as_str() {
            "src" | "dst" => StaticArg::Runtime,
            other => StaticArg::Known(
                ruleset
                    .dicts
                    .get(other)
                    .and_then(|d| d.get(key))
                    .map(str::to_string),
            ),
        },
    }
}

/// What constant folding learned about a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fold {
    /// True for every flow/response.
    True,
    /// False for every flow/response.
    False,
    /// Depends on runtime information.
    Unknown,
}

/// Folds a `with` call without runtime responses, mirroring the
/// interpreter's `call_matches` exactly (missing arguments are false, unknown
/// functions are false, malformed `allowed` requirements are false, …).
fn fold_call(call: &FnCall, ruleset: &RuleSet, options: &AnalysisOptions) -> Fold {
    let name = call.name.as_str();
    match name {
        "eq" | "ne" | "gt" | "lt" | "gte" | "lte" => {
            if call.args.len() != 2 {
                return Fold::False;
            }
            let a = resolve_static(&call.args[0], ruleset);
            let b = resolve_static(&call.args[1], ruleset);
            // A known-absent argument makes the call false no matter what the
            // other one resolves to.
            if matches!(a, StaticArg::Known(None)) || matches!(b, StaticArg::Known(None)) {
                return Fold::False;
            }
            match (&a, &b) {
                (StaticArg::Known(Some(a)), StaticArg::Known(Some(b))) => {
                    let hit = match name {
                        "eq" => a == b,
                        "ne" => a != b,
                        _ => match numeric_cmp(a, b) {
                            Some(ord) => match name {
                                "gt" => ord == std::cmp::Ordering::Greater,
                                "lt" => ord == std::cmp::Ordering::Less,
                                "gte" => ord != std::cmp::Ordering::Less,
                                _ => ord != std::cmp::Ordering::Greater,
                            },
                            None => false,
                        },
                    };
                    if hit {
                        Fold::True
                    } else {
                        Fold::False
                    }
                }
                // One side is runtime. A non-numeric constant on the other
                // side makes the numeric comparisons unconditionally false.
                (StaticArg::Known(Some(lit)), StaticArg::Runtime)
                | (StaticArg::Runtime, StaticArg::Known(Some(lit)))
                    if name != "eq" && name != "ne" && lit.trim().parse::<i64>().is_err() =>
                {
                    Fold::False
                }
                _ => Fold::Unknown,
            }
        }
        "exists" => {
            if call.args.len() != 1 {
                return Fold::False;
            }
            match resolve_static(&call.args[0], ruleset) {
                StaticArg::Known(Some(_)) => Fold::True,
                StaticArg::Known(None) => Fold::False,
                StaticArg::Runtime => Fold::Unknown,
            }
        }
        "member" => {
            if call.args.len() != 2 {
                return Fold::False;
            }
            let value = resolve_static(&call.args[0], ruleset);
            if matches!(value, StaticArg::Known(None)) {
                return Fold::False;
            }
            // Mirror `resolve_list`: a *literal* list argument resolves
            // through named lists, then macros, then tables; anything else
            // resolves as a value and is split as a list literal.
            let list: Option<Vec<String>> = match &call.args[1] {
                FnArg::Literal(name) if options.named_lists.iter().any(|l| l == name) => None,
                FnArg::Literal(name) => {
                    if let Some(text) = ruleset.macros.get(name) {
                        Some(parse_list_literal(text))
                    } else if let Some(table) = ruleset.tables.get(name) {
                        Some(table.entries().iter().map(|e| format!("{e:?}")).collect())
                    } else {
                        Some(parse_list_literal(name))
                    }
                }
                other => match resolve_static(other, ruleset) {
                    StaticArg::Known(Some(text)) => Some(parse_list_literal(&text)),
                    StaticArg::Known(None) => Some(Vec::new()),
                    StaticArg::Runtime => None,
                },
            };
            match (value, list) {
                // An empty list never matches, whatever the value is.
                (_, Some(list)) if list.is_empty() => Fold::False,
                (StaticArg::Known(Some(value)), Some(list)) => {
                    if value
                        .split_whitespace()
                        .any(|v| list.iter().any(|m| m == v))
                    {
                        Fold::True
                    } else {
                        Fold::False
                    }
                }
                _ => Fold::Unknown,
            }
        }
        "includes" => {
            if call.args.len() != 2 {
                return Fold::False;
            }
            let haystack = resolve_static(&call.args[0], ruleset);
            let needle = resolve_static(&call.args[1], ruleset);
            if matches!(haystack, StaticArg::Known(None))
                || matches!(needle, StaticArg::Known(None))
            {
                return Fold::False;
            }
            match (haystack, needle) {
                (StaticArg::Known(Some(h)), StaticArg::Known(Some(n))) => {
                    if h.split_whitespace().any(|item| item == n) {
                        Fold::True
                    } else {
                        Fold::False
                    }
                }
                _ => Fold::Unknown,
            }
        }
        "allowed" => {
            if call.args.len() != 1 {
                return Fold::False;
            }
            match resolve_static(&call.args[0], ruleset) {
                StaticArg::Known(None) => Fold::False,
                StaticArg::Runtime => Fold::Unknown,
                StaticArg::Known(Some(text)) => match parse_ruleset(&text) {
                    // Malformed delegated rules never grant access.
                    Err(_) => Fold::False,
                    Ok(sub) => {
                        if sub.rules.is_empty() {
                            // The empty rule set yields the evaluator's
                            // configurable default decision — not foldable.
                            return Fold::Unknown;
                        }
                        if !sub.rules.iter().all(rule_matches_everything) {
                            return Fold::Unknown;
                        }
                        // All rules unconditional: the first `quick` rule
                        // decides, else the last rule (last match wins).
                        let decider = sub
                            .rules
                            .iter()
                            .find(|r| r.quick)
                            .unwrap_or_else(|| sub.rules.last().expect("non-empty"));
                        match decider.action {
                            Action::Pass => Fold::True,
                            Action::Block => Fold::False,
                        }
                    }
                },
            }
        }
        "verify" => {
            if call.args.len() < 3 {
                return Fold::False;
            }
            if call
                .args
                .iter()
                .any(|a| matches!(resolve_static(a, ruleset), StaticArg::Known(None)))
            {
                return Fold::False;
            }
            Fold::Unknown
        }
        other => {
            if options.user_functions.iter().any(|f| f == other) {
                Fold::Unknown
            } else {
                // Unknown functions never match (administrator typos fail
                // closed).
                Fold::False
            }
        }
    }
}

fn rule_matches_everything(rule: &Rule) -> bool {
    fn endpoint_any(e: &Option<Endpoint>) -> bool {
        match e {
            None => true,
            Some(e) => !e.negate && e.addr == AddrSpec::Any && e.port.is_none(),
        }
    }
    rule.proto.is_none()
        && rule.withs.is_empty()
        && endpoint_any(&rule.from)
        && endpoint_any(&rule.to)
}

/// Per-key value constraints accumulated from a rule's runtime predicates.
#[derive(Debug, Clone, Default)]
struct Constraint {
    eq: Option<String>,
    ne: BTreeSet<String>,
    /// Inclusive numeric bounds from `gt`/`lt`/`gte`/`lte`.
    lo: Option<i64>,
    hi: Option<i64>,
}

impl Constraint {
    fn check(&self, target: &str) -> Result<(), String> {
        if let Some(eq) = &self.eq {
            if self.ne.contains(eq) {
                return Err(format!(
                    "{target} is required to both equal and not equal {eq:?}"
                ));
            }
            if self.lo.is_some() || self.hi.is_some() {
                match eq.trim().parse::<i64>() {
                    Err(_) => {
                        return Err(format!(
                            "{target} must equal non-numeric {eq:?} but is also compared \
                             numerically (numeric comparisons on it can never hold)"
                        ));
                    }
                    Ok(v) => {
                        if self.lo.is_some_and(|lo| v < lo) || self.hi.is_some_and(|hi| v > hi) {
                            return Err(format!(
                                "{target} must equal {v} but the numeric bounds exclude it"
                            ));
                        }
                    }
                }
            }
        }
        if let (Some(lo), Some(hi)) = (self.lo, self.hi) {
            if lo > hi {
                return Err(format!(
                    "{target} is bounded to the empty numeric range [{lo}, {hi}]"
                ));
            }
        }
        Ok(())
    }
}

/// A conjunction of per-key [`Constraint`]s, keyed by the canonical
/// `@dict[key]` the predicates inspect.
#[derive(Debug, Clone, Default)]
struct ConstraintMap {
    map: BTreeMap<String, Constraint>,
}

impl ConstraintMap {
    fn add(&mut self, target: &str, kind: ConstraintKind) -> Result<(), String> {
        let c = self.map.entry(target.to_string()).or_default();
        match kind {
            ConstraintKind::Eq(v) => {
                if let Some(prev) = &c.eq {
                    if *prev != v {
                        return Err(format!(
                            "{target} is required to equal both {prev:?} and {v:?}"
                        ));
                    }
                }
                c.eq = Some(v);
            }
            ConstraintKind::Ne(v) => {
                c.ne.insert(v);
            }
            ConstraintKind::Bound { lo, hi } => {
                if let Some(lo) = lo {
                    c.lo = Some(c.lo.map_or(lo, |prev| prev.max(lo)));
                }
                if let Some(hi) = hi {
                    c.hi = Some(c.hi.map_or(hi, |prev| prev.min(hi)));
                }
            }
        }
        c.check(target)
    }
}

enum ConstraintKind {
    Eq(String),
    Ne(String),
    Bound { lo: Option<i64>, hi: Option<i64> },
}

/// Canonical display form of a `@dict[key]` reference, used as the
/// constraint-map key and in messages.
fn canon_dictref(concat: bool, dict: &str, key: &str) -> String {
    format!("{}@{dict}[{key}]", if concat { "*" } else { "" })
}

/// Extracts a value constraint from a runtime comparison predicate:
/// one side a `@src`/`@dst` reference, the other a statically known literal.
fn extract_constraint(call: &FnCall, ruleset: &RuleSet) -> Option<(String, ConstraintKind)> {
    let name = call.name.as_str();
    if !matches!(name, "eq" | "ne" | "gt" | "lt" | "gte" | "lte") || call.args.len() != 2 {
        return None;
    }
    let as_runtime_ref = |arg: &FnArg| match arg {
        FnArg::DictRef { concat, dict, key } if dict == "src" || dict == "dst" => {
            Some(canon_dictref(*concat, dict, key))
        }
        _ => None,
    };
    let as_literal = |arg: &FnArg| match resolve_static(arg, ruleset) {
        StaticArg::Known(Some(v)) => Some(v),
        _ => None,
    };
    // `ref_first` distinguishes gt(@src[k], 5)  (k > 5)  from
    // gt(5, @src[k])  (k < 5) for the numeric comparisons.
    let (target, lit, ref_first) = if let Some(t) = as_runtime_ref(&call.args[0]) {
        (t, as_literal(&call.args[1])?, true)
    } else if let Some(t) = as_runtime_ref(&call.args[1]) {
        (t, as_literal(&call.args[0])?, false)
    } else {
        return None;
    };
    let kind = match name {
        "eq" => ConstraintKind::Eq(lit),
        "ne" => ConstraintKind::Ne(lit),
        _ => {
            let n: i64 = lit.trim().parse().ok()?; // non-numeric folds false elsewhere
            let (lo, hi) = match (name, ref_first) {
                ("gt", true) | ("lt", false) => (Some(n.saturating_add(1)), None),
                ("gte", true) | ("lte", false) => (Some(n), None),
                ("lt", true) | ("gt", false) => (None, Some(n.saturating_sub(1))),
                _ => (None, Some(n)), // ("lte", true) | ("gte", false)
            };
            ConstraintKind::Bound { lo, hi }
        }
    };
    Some((target, kind))
}

/// Per-rule result of the satisfiability pass, reused by the ordering pass.
struct RuleSat {
    /// The rule can never match (a predicate folded false or the constraint
    /// set is contradictory).
    never_matches: bool,
    /// Canonical forms of the predicates that actually constrain the rule
    /// (tautologies removed).
    preds: BTreeSet<String>,
    /// Value constraints implied by the runtime predicates.
    constraints: ConstraintMap,
}

fn satisfiability_pass(
    ruleset: &RuleSet,
    options: &AnalysisOptions,
    diags: &mut Vec<Diagnostic>,
) -> Vec<RuleSat> {
    let mut out = Vec::with_capacity(ruleset.rules.len());
    for (index, rule) in ruleset.rules.iter().enumerate() {
        let mut sat = RuleSat {
            never_matches: false,
            preds: BTreeSet::new(),
            constraints: ConstraintMap::default(),
        };
        // An unresolvable named service makes the endpoint (and the rule)
        // matchless; the reference pass already reported the error.
        for endpoint in [&rule.from, &rule.to].into_iter().flatten() {
            if let Some(PortSpec::Named(name)) = &endpoint.port {
                if services::resolve_port(name).is_none() {
                    sat.never_matches = true;
                }
            }
        }
        for call in &rule.withs {
            match fold_call(call, ruleset, options) {
                Fold::False => {
                    sat.never_matches = true;
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        category: Category::Unsatisfiable,
                        span: call_span(call),
                        rule_index: Some(index),
                        message: format!(
                            "`{}` is always false here, so the rule can never match",
                            call.name
                        ),
                        related: Vec::new(),
                    });
                }
                Fold::True => {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        category: Category::Tautology,
                        span: call_span(call),
                        rule_index: Some(index),
                        message: format!(
                            "`{}` is always true here and constrains nothing",
                            call.name
                        ),
                        related: Vec::new(),
                    });
                }
                Fold::Unknown => {
                    sat.preds.insert(canon_call(call));
                    if let Some((target, kind)) = extract_constraint(call, ruleset) {
                        if let Err(reason) = sat.constraints.add(&target, kind) {
                            if !sat.never_matches {
                                sat.never_matches = true;
                                diags.push(Diagnostic {
                                    severity: Severity::Warning,
                                    category: Category::Unsatisfiable,
                                    span: call_span(call),
                                    rule_index: Some(index),
                                    message: format!(
                                        "the rule's predicates can never hold together: {reason}"
                                    ),
                                    related: Vec::new(),
                                });
                            }
                        }
                    }
                }
            }
        }
        out.push(sat);
    }
    out
}

/// Canonical syntactic form of a call, for set-inclusion comparison between
/// rules. Purely syntactic (macros are *not* expanded): two rules carrying
/// the identical call text place the identical constraint, which is all
/// subsumption needs.
fn canon_call(call: &FnCall) -> String {
    let mut s = call.name.clone();
    for arg in &call.args {
        s.push('\u{1e}');
        match arg {
            FnArg::Literal(t) => {
                s.push('L');
                s.push_str(t);
            }
            FnArg::MacroRef(m) => {
                s.push('M');
                s.push_str(m);
            }
            FnArg::DictRef { concat, dict, key } => {
                s.push(if *concat { 'C' } else { 'D' });
                s.push_str(dict);
                s.push('\u{1f}');
                s.push_str(key);
            }
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Pass 3: ordering (shadowing, partial shadowing, contradictions)
// ---------------------------------------------------------------------------

/// A set of IPv4 addresses, represented as CIDR prefixes or their complement.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AddrSet {
    /// Every address.
    Any,
    /// The union of the prefixes.
    Set(Vec<(u32, u8)>),
    /// Everything *outside* the union of the prefixes.
    Complement(Vec<(u32, u8)>),
}

/// Whether prefix `a` contains prefix `b`.
fn prefix_contains(a: (u32, u8), b: (u32, u8)) -> bool {
    let (an, al) = a;
    let (bn, bl) = b;
    if al > bl {
        return false;
    }
    if al == 0 {
        return true;
    }
    let shift = 32 - al as u32;
    (an >> shift) == (bn >> shift)
}

fn prefix_disjoint(a: (u32, u8), b: (u32, u8)) -> bool {
    !prefix_contains(a, b) && !prefix_contains(b, a)
}

/// `a ⊆ b` over prefix lists: every prefix of `a` inside some prefix of `b`.
/// Conservative — a prefix covered only by the *union* of several smaller
/// prefixes is not recognized — which keeps subsumption claims sound.
fn prefixes_subset(a: &[(u32, u8)], b: &[(u32, u8)]) -> bool {
    a.iter()
        .all(|&pa| b.iter().any(|&pb| prefix_contains(pb, pa)))
}

fn prefixes_disjoint(a: &[(u32, u8)], b: &[(u32, u8)]) -> bool {
    a.iter()
        .all(|&pa| b.iter().all(|&pb| prefix_disjoint(pa, pb)))
}

fn prefixes_cover_everything(a: &[(u32, u8)]) -> bool {
    a.iter().any(|&(_, len)| len == 0)
}

impl AddrSet {
    fn empty(&self) -> bool {
        match self {
            AddrSet::Any => false,
            AddrSet::Set(s) => s.is_empty(),
            AddrSet::Complement(s) => prefixes_cover_everything(s),
        }
    }

    /// Provable `self ⊆ other`.
    fn subset_of(&self, other: &AddrSet) -> bool {
        if self.empty() || matches!(other, AddrSet::Any) {
            return true;
        }
        match (self, other) {
            (AddrSet::Any, AddrSet::Set(b)) => prefixes_cover_everything(b),
            (AddrSet::Any, AddrSet::Complement(b)) => b.is_empty(),
            (AddrSet::Set(a), AddrSet::Set(b)) => prefixes_subset(a, b),
            (AddrSet::Set(a), AddrSet::Complement(b)) => prefixes_disjoint(a, b),
            (AddrSet::Complement(_), AddrSet::Set(b)) => prefixes_cover_everything(b),
            (AddrSet::Complement(a), AddrSet::Complement(b)) => prefixes_subset(b, a),
            (_, AddrSet::Any) => true,
        }
    }

    /// Provable `self ∩ other = ∅`.
    fn disjoint_from(&self, other: &AddrSet) -> bool {
        if self.empty() || other.empty() {
            return true;
        }
        match (self, other) {
            (AddrSet::Any, _) | (_, AddrSet::Any) => false,
            (AddrSet::Set(a), AddrSet::Set(b)) => prefixes_disjoint(a, b),
            (AddrSet::Set(a), AddrSet::Complement(b)) => prefixes_subset(a, b),
            (AddrSet::Complement(a), AddrSet::Set(b)) => prefixes_subset(b, a),
            // Two complements are disjoint only if the prefixes jointly cover
            // the whole space; not worth proving, so say "may overlap".
            (AddrSet::Complement(_), AddrSet::Complement(_)) => false,
        }
    }
}

/// A set of ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortSet {
    /// Every port.
    Any,
    /// An inclusive range.
    Range(u16, u16),
    /// No port (an unresolvable service name).
    Never,
}

impl PortSet {
    fn subset_of(&self, other: &PortSet) -> bool {
        match (self, other) {
            (PortSet::Never, _) | (_, PortSet::Any) => true,
            (_, PortSet::Never) => false,
            (PortSet::Any, PortSet::Range(lo, hi)) => *lo == 0 && *hi == u16::MAX,
            (PortSet::Range(alo, ahi), PortSet::Range(blo, bhi)) => blo <= alo && ahi <= bhi,
        }
    }

    fn disjoint_from(&self, other: &PortSet) -> bool {
        match (self, other) {
            (PortSet::Never, _) | (_, PortSet::Never) => true,
            (PortSet::Any, _) | (_, PortSet::Any) => false,
            (PortSet::Range(alo, ahi), PortSet::Range(blo, bhi)) => ahi < blo || bhi < alo,
        }
    }
}

/// The statically analyzable match space of one rule.
struct Matcher {
    proto: Option<IpProtocol>,
    from_addr: AddrSet,
    from_port: PortSet,
    to_addr: AddrSet,
    to_port: PortSet,
}

fn addr_set(endpoint: &Option<Endpoint>, ruleset: &RuleSet) -> AddrSet {
    let Some(endpoint) = endpoint else {
        return AddrSet::Any;
    };
    let prefixes: Vec<(u32, u8)> = match &endpoint.addr {
        AddrSpec::Any => {
            // `!any` never matches (the interpreter negates the always-true
            // address match).
            return if endpoint.negate {
                AddrSet::Set(Vec::new())
            } else {
                AddrSet::Any
            };
        }
        AddrSpec::Host(h) => vec![(h.to_u32(), 32)],
        AddrSpec::Cidr {
            network,
            prefix_len,
        } => vec![(network.to_u32(), *prefix_len)],
        AddrSpec::Table(name) => {
            let mut prefixes = Vec::new();
            // An undefined table is the empty set — so its *negation*
            // matches every address, exactly as the interpreter behaves.
            if let Some(table) = ruleset.tables.get(name) {
                table.visit_flattened(&ruleset.tables, |entry| match entry {
                    crate::table::TableEntry::Host(h) => prefixes.push((h.to_u32(), 32)),
                    crate::table::TableEntry::Cidr {
                        network,
                        prefix_len,
                    } => prefixes.push((network.to_u32(), *prefix_len)),
                    crate::table::TableEntry::TableRef(_) => {}
                });
            }
            prefixes
        }
    };
    if endpoint.negate {
        AddrSet::Complement(prefixes)
    } else {
        AddrSet::Set(prefixes)
    }
}

fn port_set(endpoint: &Option<Endpoint>) -> PortSet {
    match endpoint.as_ref().and_then(|e| e.port.as_ref()) {
        None => PortSet::Any,
        Some(PortSpec::Number(n)) => PortSet::Range(*n, *n),
        Some(PortSpec::Range(lo, hi)) => {
            if lo <= hi {
                PortSet::Range(*lo, *hi)
            } else {
                PortSet::Never
            }
        }
        Some(PortSpec::Named(name)) => match services::resolve_port(name) {
            Some(p) => PortSet::Range(p, p),
            None => PortSet::Never,
        },
    }
}

impl Matcher {
    fn of(rule: &Rule, ruleset: &RuleSet) -> Matcher {
        Matcher {
            proto: rule.proto,
            from_addr: addr_set(&rule.from, ruleset),
            from_port: port_set(&rule.from),
            to_addr: addr_set(&rule.to, ruleset),
            to_port: port_set(&rule.to),
        }
    }

    /// Provable: every flow this matcher accepts, `other` accepts too
    /// (packet dimensions only; predicates are compared separately).
    fn packet_subset_of(&self, other: &Matcher) -> bool {
        (other.proto.is_none() || other.proto == self.proto)
            && self.from_addr.subset_of(&other.from_addr)
            && self.from_port.subset_of(&other.from_port)
            && self.to_addr.subset_of(&other.to_addr)
            && self.to_port.subset_of(&other.to_port)
    }

    /// Provable: no flow matches both (packet dimensions only).
    fn packet_disjoint_from(&self, other: &Matcher) -> bool {
        (self.proto.is_some() && other.proto.is_some() && self.proto != other.proto)
            || self.from_addr.disjoint_from(&other.from_addr)
            || self.from_port.disjoint_from(&other.from_port)
            || self.to_addr.disjoint_from(&other.to_addr)
            || self.to_port.disjoint_from(&other.to_port)
    }
}

/// Provable: rule `sup` matches every flow/response that rule `sub` matches.
fn subsumes(sup: (&Matcher, &RuleSat), sub: (&Matcher, &RuleSat)) -> bool {
    sub.0.packet_subset_of(sup.0) && sup.1.preds.is_subset(&sub.1.preds)
}

/// Whether two rules can both match some flow/response (i.e. not provably
/// disjoint).
fn may_overlap(a: (&Matcher, &RuleSat), b: (&Matcher, &RuleSat)) -> bool {
    if a.0.packet_disjoint_from(b.0) {
        return false;
    }
    // Merge both rules' value constraints; a conflict proves disjointness.
    let mut merged = a.1.constraints.clone();
    for (target, c) in &b.1.constraints.map {
        if let Some(v) = &c.eq {
            if merged.add(target, ConstraintKind::Eq(v.clone())).is_err() {
                return false;
            }
        }
        for v in &c.ne {
            if merged.add(target, ConstraintKind::Ne(v.clone())).is_err() {
                return false;
            }
        }
        if (c.lo.is_some() || c.hi.is_some())
            && merged
                .add(target, ConstraintKind::Bound { lo: c.lo, hi: c.hi })
                .is_err()
        {
            return false;
        }
    }
    true
}

fn ordering_pass(
    ruleset: &RuleSet,
    _options: &AnalysisOptions,
    sat: &[RuleSat],
    diags: &mut Vec<Diagnostic>,
) {
    // Re-report the compiler's own dead-rule elimination, with reasons.
    let compiled = PolicyCompiler::new().compile(ruleset);
    let mut compiler_dead: BTreeSet<usize> = BTreeSet::new();
    for dead in compiled.dead_rules() {
        compiler_dead.insert(dead.index);
        // Unmatchable rules blame themselves (blamed_index is None): no
        // related location to point at.
        let blamed_index = dead.reason.blamed_index();
        let blamed = blamed_index.and_then(|i| ruleset.rules.get(i));
        diags.push(Diagnostic {
            severity: Severity::Warning,
            category: Category::ShadowedRule,
            span: ruleset
                .rules
                .get(dead.index)
                .map(rule_span)
                .unwrap_or_default(),
            rule_index: Some(dead.index),
            message: format!("rule never decides any flow: {}", dead.reason),
            related: blamed
                .map(|rule| Related {
                    span: rule_span(rule),
                    rule_index: blamed_index,
                    note: "this rule makes it unreachable".to_string(),
                })
                .into_iter()
                .collect(),
        });
    }

    let matchers: Vec<Matcher> = ruleset
        .rules
        .iter()
        .map(|r| Matcher::of(r, ruleset))
        .collect();
    // Rules already proven to never decide; skipped as *subjects* of further
    // pair diagnostics (but they still shadow others if they themselves
    // match).
    let mut shadowed: BTreeSet<usize> = compiler_dead.clone();

    let n = ruleset.rules.len();
    for later in 0..n {
        for earlier in 0..later {
            let er = &ruleset.rules[earlier];
            let lr = &ruleset.rules[later];
            let em = (&matchers[earlier], &sat[earlier]);
            let lm = (&matchers[later], &sat[later]);
            // Rules that can never match neither shadow nor get shadowed in
            // any way worth reporting beyond their Unsatisfiable diagnostic.
            if sat[earlier].never_matches || sat[later].never_matches {
                continue;
            }

            // Full shadow #1: a later rule subsumes an earlier non-quick
            // rule. Under last-match-wins the later rule (or something after
            // it) always outranks the earlier one.
            if !er.quick && !shadowed.contains(&earlier) && subsumes(lm, em) {
                shadowed.insert(earlier);
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    category: Category::ShadowedRule,
                    span: rule_span(er),
                    rule_index: Some(earlier),
                    message: format!(
                        "rule never decides any flow: every flow it matches also matches the \
                         `{}` rule at line {}, which comes later (last match wins)",
                        lr.action.keyword(),
                        rule_span(lr).line
                    ),
                    related: vec![Related {
                        span: rule_span(lr),
                        rule_index: Some(later),
                        note: "this later rule subsumes it".to_string(),
                    }],
                });
                continue;
            }

            // Full shadow #2: an earlier `quick` rule subsumes a later rule.
            // The quick rule stops evaluation before the later rule is ever
            // the deciding match.
            if er.quick && !shadowed.contains(&later) && subsumes(em, lm) {
                shadowed.insert(later);
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    category: Category::ShadowedRule,
                    span: rule_span(lr),
                    rule_index: Some(later),
                    message: format!(
                        "rule never decides any flow: the `quick` rule at line {} matches \
                         everything it matches and stops evaluation first",
                        rule_span(er).line
                    ),
                    related: vec![Related {
                        span: rule_span(er),
                        rule_index: Some(earlier),
                        note: "this earlier `quick` rule preempts it".to_string(),
                    }],
                });
                continue;
            }

            if shadowed.contains(&earlier) || shadowed.contains(&later) {
                continue;
            }
            if !may_overlap(em, lm) {
                continue;
            }
            let e_covers_l = subsumes(em, lm);
            let l_covers_e = subsumes(lm, em);
            if er.action != lr.action {
                // Opposite actions on an overlap. When one rule contains the
                // other, the ordering is the standard "general default,
                // specific exception" idiom; only flag *partial* overlaps,
                // where which rule wins on the intersection is decided by
                // nothing but rule order.
                if !e_covers_l && !l_covers_e {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        category: Category::Contradiction,
                        span: rule_span(lr),
                        rule_index: Some(later),
                        message: format!(
                            "`{}` rule overlaps the `{}` rule at line {} with the opposite \
                             action; neither contains the other, so only rule order decides \
                             flows matching both",
                            lr.action.keyword(),
                            er.action.keyword(),
                            rule_span(er).line
                        ),
                        related: vec![Related {
                            span: rule_span(er),
                            rule_index: Some(earlier),
                            note: format!("conflicting `{}` rule", er.action.keyword()),
                        }],
                    });
                }
            } else if er.quick && !e_covers_l && !l_covers_e {
                // Same action, but an earlier quick rule intercepts part of
                // the later rule's match space — flows in the intersection
                // take the quick rule's side effects (e.g. `keep state`), not
                // the later rule's.
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    category: Category::PartialShadow,
                    span: rule_span(lr),
                    rule_index: Some(later),
                    message: format!(
                        "the `quick` rule at line {} intercepts part of this rule's match \
                         space; flows matching both are decided by the quick rule",
                        rule_span(er).line
                    ),
                    related: vec![Related {
                        span: rule_span(er),
                        rule_index: Some(earlier),
                        note: "this earlier `quick` rule partially shadows it".to_string(),
                    }],
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ruleset;

    fn run(policy: &str) -> Vec<Diagnostic> {
        analyze(&parse_ruleset(policy).unwrap(), &AnalysisOptions::default())
    }

    fn run_with(policy: &str, options: &AnalysisOptions) -> Vec<Diagnostic> {
        analyze(&parse_ruleset(policy).unwrap(), options)
    }

    fn by_category(diags: &[Diagnostic], cat: Category) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.category == cat).collect()
    }

    #[test]
    fn later_subsuming_rule_shadows_earlier() {
        let diags = run("pass from 10.0.0.1 to any\npass from 10.0.0.0/24 to any\n");
        let shadows = by_category(&diags, Category::ShadowedRule);
        assert_eq!(shadows.len(), 1, "{diags:?}");
        assert_eq!(shadows[0].rule_index, Some(0));
        assert_eq!(shadows[0].span.line, 1);
        assert_eq!(shadows[0].related[0].rule_index, Some(1));
    }

    #[test]
    fn earlier_quick_rule_shadows_later() {
        let diags = run("block quick from 10.0.0.0/24 to any\npass from 10.0.0.1 to any\n");
        let shadows = by_category(&diags, Category::ShadowedRule);
        assert_eq!(shadows.len(), 1, "{diags:?}");
        assert_eq!(shadows[0].rule_index, Some(1));
        assert_eq!(shadows[0].related[0].rule_index, Some(0));
    }

    #[test]
    fn compiler_dead_rules_are_reported_with_reason() {
        // Rule 1 (`pass quick all`) truncates rule 2 and shadows rule 0.
        let diags = run("block all\npass quick all\nblock from 10.0.0.1 to any\n");
        let shadows = by_category(&diags, Category::ShadowedRule);
        let indices: BTreeSet<_> = shadows.iter().filter_map(|d| d.rule_index).collect();
        assert!(indices.contains(&2), "truncated rule reported: {diags:?}");
        assert!(indices.contains(&0), "superseded rule reported: {diags:?}");
        let truncated = shadows.iter().find(|d| d.rule_index == Some(2)).unwrap();
        assert!(truncated.message.contains("quick"), "{}", truncated.message);
    }

    #[test]
    fn quick_subsumption_does_not_flag_distinct_rules() {
        let diags = run("block quick from 10.0.0.0/24 to any\npass from 10.1.0.1 to any\n");
        assert!(
            by_category(&diags, Category::ShadowedRule).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn predicated_rule_is_not_shadowed_by_plain_subset() {
        // The later rule matches a superset of packets but carries an extra
        // predicate, so the earlier rule still decides flows failing it.
        let diags = run("pass from 10.0.0.1 to any\n\
             pass from 10.0.0.0/24 to any with eq(@src[name], ssh)\n");
        assert!(
            by_category(&diags, Category::ShadowedRule).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn contradiction_on_partial_overlap_with_opposite_actions() {
        let diags = run("pass from 10.0.0.0/24 to 20.0.0.1\n\
             block from 10.0.0.0/25 to 20.0.0.0/24 port 25\n");
        let contras = by_category(&diags, Category::Contradiction);
        assert_eq!(contras.len(), 1, "{diags:?}");
        assert_eq!(contras[0].rule_index, Some(1));
        assert_eq!(contras[0].related[0].rule_index, Some(0));
    }

    #[test]
    fn block_all_then_pass_specific_is_not_a_contradiction() {
        let diags = run("block all\npass from 10.0.0.0/24 to any port 80\n");
        assert!(
            by_category(&diags, Category::Contradiction).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn disjoint_value_constraints_suppress_contradiction() {
        // Opposite actions, overlapping packets — but the `eq` predicates pin
        // the same key to different values, so no flow matches both.
        let diags = run("pass from any to any with eq(@src[name], firefox)\n\
             block from any to 10.0.0.0/8 with eq(@src[name], skype)\n");
        assert!(
            by_category(&diags, Category::Contradiction).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn partial_shadow_by_earlier_quick_rule() {
        let diags = run("pass quick from 10.0.0.0/25 to 20.0.0.0/24\n\
             pass from 10.0.0.0/24 to 20.0.0.1 port 443 keep state\n");
        let partial = by_category(&diags, Category::PartialShadow);
        assert_eq!(partial.len(), 1, "{diags:?}");
        assert_eq!(partial[0].rule_index, Some(1));
    }

    #[test]
    fn undefined_references_are_errors() {
        let diags = run("pass from <nope> to any\n\
             pass from any to any with member(@src[name], $ghost)\n\
             pass from any to any with eq(@mykeys[research], x)\n\
             pass from any to any port frobnicate\n");
        let refs = by_category(&diags, Category::UndefinedReference);
        assert_eq!(refs.len(), 4, "{diags:?}");
        assert!(refs.iter().all(|d| d.severity == Severity::Error));
        assert!(refs.iter().any(|d| d.message.contains("<nope>")));
        assert!(refs.iter().any(|d| d.message.contains("$ghost")));
        assert!(refs.iter().any(|d| d.message.contains("@mykeys")));
        assert!(refs.iter().any(|d| d.message.contains("frobnicate")));
    }

    #[test]
    fn negated_undefined_table_warns_it_matches_everything() {
        let diags = run("block from !<typo> to any\n");
        let refs = by_category(&diags, Category::UndefinedReference);
        assert_eq!(refs.len(), 1);
        assert!(
            refs[0].message.contains("EVERY address"),
            "{}",
            refs[0].message
        );
    }

    #[test]
    fn unknown_function_and_bad_arity_are_errors() {
        let diags = run("pass from any to any with frob(@src[name])\n\
             pass from any to any with eq(@src[name])\n\
             pass from any to any with verify(@src[req-sig], k)\n");
        assert_eq!(
            by_category(&diags, Category::UnknownFunction).len(),
            1,
            "{diags:?}"
        );
        assert_eq!(
            by_category(&diags, Category::BadArity).len(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn registered_user_function_is_accepted() {
        let options = AnalysisOptions {
            user_functions: vec!["is-business-hours".to_string()],
            ..AnalysisOptions::default()
        };
        let diags = run_with(
            "pass from any to any with is-business-hours(@src[userID])\n",
            &options,
        );
        assert!(
            by_category(&diags, Category::UnknownFunction).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_response_key_is_a_warning() {
        let diags = run("pass from any to any with exists(@src[not-a-real-key])\n");
        let keys = by_category(&diags, Category::UnknownResponseKey);
        assert_eq!(keys.len(), 1, "{diags:?}");
        assert_eq!(keys[0].severity, Severity::Warning);

        let options = AnalysisOptions {
            extra_response_keys: vec!["not-a-real-key".to_string()],
            ..AnalysisOptions::default()
        };
        let diags = run_with(
            "pass from any to any with exists(@src[not-a-real-key])\n",
            &options,
        );
        assert!(by_category(&diags, Category::UnknownResponseKey).is_empty());
    }

    #[test]
    fn app_name_alt_is_a_known_key() {
        let diags = run("pass from any to any with eq(@src[app-name], skype)\n");
        assert!(
            by_category(&diags, Category::UnknownResponseKey).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn conflicting_eq_constraints_are_unsatisfiable() {
        let diags =
            run("pass from any to any with eq(@src[name], firefox) with eq(@src[name], chrome)\n");
        let unsat = by_category(&diags, Category::Unsatisfiable);
        assert_eq!(unsat.len(), 1, "{diags:?}");
        assert!(unsat[0].message.contains("firefox"), "{}", unsat[0].message);
    }

    #[test]
    fn empty_numeric_interval_is_unsatisfiable() {
        let diags =
            run("pass from any to any with gt(@src[version], 10) with lt(@src[version], 5)\n");
        assert_eq!(
            by_category(&diags, Category::Unsatisfiable).len(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn eq_against_numeric_bound_checks_the_value() {
        // version == skype (non-numeric) but also compared numerically.
        let diags =
            run("pass from any to any with eq(@src[version], skype) with gte(@src[version], 2)\n");
        assert_eq!(
            by_category(&diags, Category::Unsatisfiable).len(),
            1,
            "{diags:?}"
        );

        // Consistent: 100 within [2, ∞).
        let diags =
            run("pass from any to any with eq(@src[version], 100) with gte(@src[version], 2)\n");
        assert!(
            by_category(&diags, Category::Unsatisfiable).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn flipped_numeric_operands_constrain_correctly() {
        // gt(5, @src[version]) means version < 5; with version > 10 → empty.
        let diags =
            run("pass from any to any with gt(5, @src[version]) with gt(@src[version], 10)\n");
        assert_eq!(
            by_category(&diags, Category::Unsatisfiable).len(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn predicate_folding_to_false_is_unsatisfiable() {
        // member against an undefined macro: the list resolves empty.
        let diags = run("pass from any to any with member(@src[name], $missing)\n");
        assert_eq!(
            by_category(&diags, Category::Unsatisfiable).len(),
            1,
            "{diags:?}"
        );

        // Numeric comparison against a non-numeric literal can never hold.
        let diags = run("pass from any to any with lt(@src[version], latest)\n");
        assert_eq!(
            by_category(&diags, Category::Unsatisfiable).len(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn literal_tautology_is_flagged() {
        let diags = run("pass from any to any with eq(tcp, tcp)\n");
        assert_eq!(
            by_category(&diags, Category::Tautology).len(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn allowed_folds_over_unconditional_requirements() {
        let pass_all = "req = \"pass all\"\npass from any to any with allowed($req)\n";
        let diags = run(pass_all);
        assert_eq!(
            by_category(&diags, Category::Tautology).len(),
            1,
            "{diags:?}"
        );

        let block_all = "req = \"block all\"\npass from any to any with allowed($req)\n";
        let diags = run(block_all);
        assert_eq!(
            by_category(&diags, Category::Unsatisfiable).len(),
            1,
            "{diags:?}"
        );

        // Conditional requirements cannot be folded.
        let conditional =
            "req = \"block from 10.0.0.0/8 to any\"\npass from any to any with allowed($req)\n";
        let diags = run(conditional);
        assert!(
            by_category(&diags, Category::Tautology).is_empty(),
            "{diags:?}"
        );
        assert!(
            by_category(&diags, Category::Unsatisfiable).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn unsatisfiable_rules_do_not_produce_shadow_noise() {
        // Rule 0 can never match; it must not be reported as shadowed by
        // rule 1 on top of its Unsatisfiable diagnostic.
        let diags = run(
            "pass from 10.0.0.1 to any with member(@src[name], $missing)\n\
             pass from 10.0.0.0/24 to any\n",
        );
        assert_eq!(
            by_category(&diags, Category::Unsatisfiable).len(),
            1,
            "{diags:?}"
        );
        assert!(
            by_category(&diags, Category::ShadowedRule).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn granularity_checks_flag_erased_ports() {
        let ruleset = parse_ruleset(
            "pass from any port 1024:65535 to any port 80\n\
             pass from any to any port 443\n\
             pass from any to any\n",
        )
        .unwrap();

        let diags = granularity_diagnostics(&ruleset, CacheGranularity::ExactFiveTuple);
        assert!(diags.is_empty());

        // HostPairDstPort erases only the source port: rule 0 unsafe.
        let diags = granularity_diagnostics(&ruleset, CacheGranularity::HostPairDstPort);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_index, Some(0));
        assert_eq!(diags[0].category, Category::GranularityUnsafe);

        // HostPair erases both: rules 0 and 1 unsafe.
        let diags = granularity_diagnostics(&ruleset, CacheGranularity::HostPair);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].rule_index, Some(0));
        assert_eq!(diags[1].rule_index, Some(1));
    }

    #[test]
    fn compiled_granularity_checks_skip_dead_rules_and_blame_fields() {
        // Rule 1 is live with a source-port constraint; rule 2 is port-
        // constrained but unmatchable (undefined table => empty set), so the
        // compiler-aware pass must not flag it.
        let ruleset = parse_ruleset(
            "block all\n\
             pass from any port 1024:65535 to any port 80\n\
             pass from <nosuch> to any port 22\n",
        )
        .unwrap();
        let compiled = crate::CompiledPolicy::compile(&ruleset);

        let diags =
            granularity_diagnostics_with(&ruleset, CacheGranularity::ExactFiveTuple, &compiled);
        assert!(diags.is_empty());

        let diags = granularity_diagnostics_with(&ruleset, CacheGranularity::HostPair, &compiled);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_index, Some(1));
        assert!(
            diags[0].message.contains("src-port+dst-port"),
            "message should blame both erased ports: {}",
            diags[0].message
        );

        // HostPairDstPort keeps the destination port: only src-port blamed.
        let diags =
            granularity_diagnostics_with(&ruleset, CacheGranularity::HostPairDstPort, &compiled);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("rule inspects src-port,"),
            "message should blame only the source port: {}",
            diags[0].message
        );

        // The syntactic pass, by contrast, flags the dead rule too.
        let diags = granularity_diagnostics(&ruleset, CacheGranularity::HostPair);
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn analyze_includes_granularity_when_configured() {
        let options = AnalysisOptions {
            granularity: Some(CacheGranularity::HostPair),
            ..AnalysisOptions::default()
        };
        let diags = run_with("pass from any to any port 80\n", &options);
        assert_eq!(
            by_category(&diags, Category::GranularityUnsafe).len(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn figure2_style_policy_has_no_errors() {
        let policy = r#"
table <server> { 10.0.0.1 }
table <lan> { 10.0.0.0/16 }
table <int_hosts> { <lan> <server> }
allowed_apps = "{ firefox ssh }"
block all
pass from <int_hosts> to any keep state with member(@src[name], $allowed_apps)
pass from any to <server> port 80 keep state
"#;
        let diags = run(policy);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "clean policy must produce no errors: {diags:?}"
        );
    }

    #[test]
    fn diagnostics_render_with_spans() {
        let diags = run("pass from <nope> to any\n");
        let text = by_category(&diags, Category::UndefinedReference)[0].to_string();
        assert!(text.contains("error[undefined-reference]"), "{text}");
        assert!(text.contains("at 1:"), "{text}");
        // The compiler also proves the rule unmatchable (empty table, never
        // negated) and the ordering pass re-reports that as a shadow warning.
        let shadows = by_category(&diags, Category::ShadowedRule);
        assert_eq!(shadows.len(), 1, "{diags:?}");
        assert!(shadows[0].message.contains("unmatchable"), "{diags:?}");
    }

    #[test]
    fn severity_and_category_names() {
        assert_eq!(Severity::Error.as_str(), "error");
        assert_eq!(Severity::Warning.as_str(), "warning");
        assert_eq!(Category::ShadowedRule.as_str(), "shadowed-rule");
        assert_eq!(Category::GranularityUnsafe.as_str(), "granularity-unsafe");
        assert_eq!(Category::DanglingKey.as_str(), "dangling-key");
    }

    const VERIFY_TAIL: &str = "@src[exe-hash], @src[name], @src[requirements])";

    fn trusted(names: &[&str]) -> AnalysisOptions {
        AnalysisOptions {
            trusted_key_names: Some(names.iter().map(|n| n.to_string()).collect()),
            ..AnalysisOptions::default()
        }
    }

    #[test]
    fn verify_of_unregistered_key_name_is_a_dangling_key_error() {
        let policy =
            format!("block all\npass all with verify(@src[req-sig], Secur, {VERIFY_TAIL}\n");
        // Registry known and missing the name: error naming both sides.
        let diags = run_with(&policy, &trusted(&["Ops"]));
        let dangling = by_category(&diags, Category::DanglingKey);
        assert_eq!(dangling.len(), 1, "{diags:?}");
        assert_eq!(dangling[0].severity, Severity::Error);
        assert!(
            dangling[0].message.contains("`Secur`"),
            "{}",
            dangling[0].message
        );
        assert!(
            dangling[0].message.contains("Ops"),
            "{}",
            dangling[0].message
        );
        // Registered name: clean. Registry unknown (None): pass skipped.
        assert!(by_category(
            &run_with(&policy, &trusted(&["Secur"])),
            Category::DanglingKey
        )
        .is_empty());
        assert!(by_category(&run(&policy), Category::DanglingKey).is_empty());
    }

    #[test]
    fn raw_hex_key_is_not_dangling() {
        let hex = "ab".repeat(32);
        let policy =
            format!("block all\npass all with verify(@src[req-sig], {hex}, {VERIFY_TAIL}\n");
        let diags = run_with(&policy, &trusted(&[]));
        assert!(
            by_category(&diags, Category::DanglingKey).is_empty(),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_dict_entry_is_a_dangling_key_error() {
        let hex = "cd".repeat(32);
        let policy = format!(
            "dict <pubkeys> {{ research : {hex} }}\nblock all\n\
             pass all with verify(@src[req-sig], @pubkeys[research], {VERIFY_TAIL}\n\
             pass all with verify(@src[req-sig], @pubkeys[missing], {VERIFY_TAIL}\n"
        );
        let diags = run_with(&policy, &trusted(&[]));
        let dangling = by_category(&diags, Category::DanglingKey);
        assert_eq!(dangling.len(), 1, "{diags:?}");
        assert!(
            dangling[0].message.contains("no entry `missing`"),
            "{}",
            dangling[0].message
        );
    }

    #[test]
    fn dict_entry_that_is_neither_hex_nor_registry_name_is_dangling() {
        let policy = "dict <pubkeys> { research : not-a-key }\nblock all\n\
             pass all with verify(@src[req-sig], @pubkeys[research], @src[exe-hash])\n";
        let diags = run_with(policy, &trusted(&[]));
        assert_eq!(
            by_category(&diags, Category::DanglingKey).len(),
            1,
            "{diags:?}"
        );
        // An entry holding a registry *name* resolves at runtime: clean.
        let aliased = "dict <pubkeys> { research : Secur }\nblock all\n\
             pass all with verify(@src[req-sig], @pubkeys[research], @src[exe-hash])\n";
        let diags = run_with(aliased, &trusted(&["Secur"]));
        assert!(
            by_category(&diags, Category::DanglingKey).is_empty(),
            "{diags:?}"
        );
    }
}
