//! Abstract syntax tree for PF+=2.

use std::collections::BTreeMap;

use identxx_proto::Ipv4Addr;

use crate::dict::Dict;
use crate::table::Table;

/// A source position: 1-based line and column in the configuration text.
///
/// `Span::default()` (line 0) means "position unknown" — used by rules built
/// programmatically rather than parsed (e.g. [`Rule::simple`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based source line (0 = unknown).
    pub line: usize,
    /// 1-based source column (0 = unknown).
    pub col: usize,
}

impl Span {
    /// Creates a span at the given position.
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }

    /// Whether this span points at real source text.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "?:?")
        }
    }
}

/// Rule action. Only `pass` and `block` are defined by the paper ("Currently,
/// only two are defined: pass and block", §3.3); `log` is mentioned as unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Allow the flow.
    Pass,
    /// Deny the flow.
    Block,
}

impl Action {
    /// The PF keyword for this action.
    pub fn keyword(&self) -> &'static str {
        match self {
            Action::Pass => "pass",
            Action::Block => "block",
        }
    }
}

/// An address specification appearing in a rule endpoint or a table entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AddrSpec {
    /// `any` — matches every address.
    Any,
    /// A reference to a named table, e.g. `<mail-server>`.
    Table(String),
    /// A single host address.
    Host(Ipv4Addr),
    /// A CIDR network, e.g. `192.168.0.0/24`.
    Cidr {
        /// The network address.
        network: Ipv4Addr,
        /// The prefix length (0–32).
        prefix_len: u8,
    },
}

/// A port specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PortSpec {
    /// A single numeric port.
    Number(u16),
    /// An inclusive port range `lo:hi`.
    Range(u16, u16),
    /// A named service (`http`, `smtp`, …) resolved through
    /// [`crate::services`] at evaluation time.
    Named(String),
}

/// One side (`from` or `to`) of a rule's packet filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// Whether the address match is negated (`!<int_hosts>`).
    pub negate: bool,
    /// The address specification.
    pub addr: AddrSpec,
    /// Optional port constraint (`port 80`, `port http`).
    pub port: Option<PortSpec>,
}

impl Endpoint {
    /// The `any` endpoint (matches everything).
    pub fn any() -> Self {
        Endpoint {
            negate: false,
            addr: AddrSpec::Any,
            port: None,
        }
    }
}

/// An argument to a `with` function call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FnArg {
    /// `@dict[key]` or `*@dict[key]` — `dict` is `src`, `dst`, or the name of
    /// a `dict` definition. With `concat` set the values of every response
    /// section are concatenated (the `*` prefix).
    DictRef {
        /// Whether the `*` concatenation prefix was used.
        concat: bool,
        /// The dictionary name (`src`, `dst`, or a user-defined dict).
        dict: String,
        /// The key to look up.
        key: String,
    },
    /// `$name` — a macro reference.
    MacroRef(String),
    /// A bare word or quoted string literal.
    Literal(String),
}

/// A boolean function call introduced by `with`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnCall {
    /// The function name (`eq`, `member`, `verify`, …).
    pub name: String,
    /// The arguments.
    pub args: Vec<FnArg>,
    /// Source line of the call (for diagnostics).
    pub line: usize,
    /// Source position of the call (line and column).
    pub span: Span,
}

/// A single PF+=2 rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// `pass` or `block`.
    pub action: Action,
    /// Whether the `quick` keyword was present (stop at first match).
    pub quick: bool,
    /// Optional IP-protocol constraint (`proto tcp`).
    pub proto: Option<identxx_proto::IpProtocol>,
    /// The `from` endpoint (`None` means `any`, as in `pass all`).
    pub from: Option<Endpoint>,
    /// The `to` endpoint (`None` means `any`).
    pub to: Option<Endpoint>,
    /// All `with` predicates attached to the rule (conjunction).
    pub withs: Vec<FnCall>,
    /// Whether `keep state` was present.
    pub keep_state: bool,
    /// Source line the rule started on.
    pub line: usize,
    /// Source position the rule started at (line and column).
    pub span: Span,
}

impl Rule {
    /// Creates a bare `pass all` / `block all` rule.
    pub fn simple(action: Action) -> Self {
        Rule {
            action,
            quick: false,
            proto: None,
            from: None,
            to: None,
            withs: Vec::new(),
            keep_state: false,
            line: 0,
            span: Span::default(),
        }
    }
}

/// A parsed PF+=2 configuration: definitions plus an ordered rule list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    /// Named address tables.
    pub tables: BTreeMap<String, Table>,
    /// Named dictionaries.
    pub dicts: BTreeMap<String, Dict>,
    /// Macros (name → replacement text).
    pub macros: BTreeMap<String, String>,
    /// Rules in source order.
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Merges another rule set after this one, as the controller does when
    /// concatenating `.control` files: "The files are read in alphabetical
    /// order and their contents are concatenated" (§3.4).
    ///
    /// Later definitions override earlier ones with the same name; rules are
    /// appended (so later files' rules can override earlier files' rules under
    /// last-match semantics).
    pub fn merge(&mut self, other: RuleSet) {
        self.tables.extend(other.tables);
        self.dicts.extend(other.dicts);
        self.macros.extend(other.macros);
        self.rules.extend(other.rules);
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the rule set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_keywords() {
        assert_eq!(Action::Pass.keyword(), "pass");
        assert_eq!(Action::Block.keyword(), "block");
    }

    #[test]
    fn endpoint_any_matches_shape() {
        let e = Endpoint::any();
        assert!(!e.negate);
        assert_eq!(e.addr, AddrSpec::Any);
        assert!(e.port.is_none());
    }

    #[test]
    fn merge_appends_rules_and_overrides_definitions() {
        let mut a = RuleSet::new();
        a.macros.insert("allowed".into(), "{ http }".into());
        a.rules.push(Rule::simple(Action::Block));

        let mut b = RuleSet::new();
        b.macros.insert("allowed".into(), "{ http ssh }".into());
        b.rules.push(Rule::simple(Action::Pass));

        a.merge(b);
        assert_eq!(a.rules.len(), 2);
        assert_eq!(a.macros["allowed"], "{ http ssh }");
        assert_eq!(a.rules[0].action, Action::Block);
        assert_eq!(a.rules[1].action, Action::Pass);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 2);
    }
}
