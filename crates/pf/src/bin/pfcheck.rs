//! `pfcheck` — static analysis for PF+=2 configurations.
//!
//! ```text
//! pfcheck [OPTIONS] <PATH>...
//!
//! PATH            a .control file, or a directory of .control files that are
//!                 merged in alphabetical order (as the controller loads them)
//!
//! --json          emit diagnostics as a JSON array on stdout
//! --granularity G also check rules against a state-cache granularity:
//!                 exact | dst-port | host-pair (field-aware: the check
//!                 compiles the policy, skips rules the compiler proved dead,
//!                 and blames the exact erased field)
//! --fields        print each rule's field-inspection set (which flow fields
//!                 and response sides the compiled matcher reads for it) and
//!                 the per-subtree union — the work-list for choosing a
//!                 per-rule cache granularity
//! --allow-key K   accept @src[K]/@dst[K] as a known response key (repeatable)
//! --allow-fn F    accept F as a registered user function (repeatable)
//! --trusted-key K the deployment's trusted-key registry contains key name K
//!                 (repeatable; passing it at all turns on the dangling-key
//!                 check, so a `verify()` naming an unregistered key is an
//!                 error — feed it from `KeyRegistry::names()`)
//! -q, --quiet     print only the per-input summary lines
//! -h, --help      this text
//! ```
//!
//! Exit status: `0` when no errors were found (warnings are allowed), `1`
//! when any error-severity diagnostic (or a parse failure) was reported, `2`
//! on usage or I/O problems.

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

use identxx_pf::analyze::{
    analyze, granularity_diagnostics_with, AnalysisOptions, Related, Severity,
};
use identxx_pf::{parse_ruleset, CacheGranularity, CompiledPolicy, ConfigSet, RuleSet, Span};

const USAGE: &str = "usage: pfcheck [--json] [--granularity exact|dst-port|host-pair] [--fields] \
                     [--allow-key K]... [--allow-fn F]... [--trusted-key K]... [-q] <path>...";

fn main() -> ExitCode {
    let mut json = false;
    let mut quiet = false;
    let mut fields = false;
    let mut options = AnalysisOptions::default();
    let mut paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fields" => fields = true,
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--granularity" => {
                let Some(value) = args.next() else {
                    eprintln!("pfcheck: --granularity needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                options.granularity = Some(match value.as_str() {
                    "exact" | "five-tuple" => CacheGranularity::ExactFiveTuple,
                    "dst-port" | "host-pair-dst-port" => CacheGranularity::HostPairDstPort,
                    "host-pair" => CacheGranularity::HostPair,
                    other => {
                        eprintln!("pfcheck: unknown granularity {other:?}\n{USAGE}");
                        return ExitCode::from(2);
                    }
                });
            }
            "--allow-key" => match args.next() {
                Some(key) => options.extra_response_keys.push(key),
                None => {
                    eprintln!("pfcheck: --allow-key needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--allow-fn" => match args.next() {
                Some(name) => options.user_functions.push(name),
                None => {
                    eprintln!("pfcheck: --allow-fn needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--trusted-key" => match args.next() {
                Some(name) => options
                    .trusted_key_names
                    .get_or_insert_with(Vec::new)
                    .push(name),
                None => {
                    eprintln!("pfcheck: --trusted-key needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                eprintln!("pfcheck: unknown option {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut any_error = false;
    let mut json_entries: Vec<String> = Vec::new();

    for path in &paths {
        match check_input(Path::new(path), &options, fields) {
            Err(err) => {
                eprintln!("pfcheck: {path}: {err}");
                return ExitCode::from(2);
            }
            Ok(report) => {
                any_error |= report.errors > 0;
                if json {
                    json_entries.extend(report.json_entries);
                } else {
                    print!("{}", report.render_text(quiet));
                }
            }
        }
    }

    if json {
        let mut out = String::from("[");
        for (i, entry) in json_entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(entry);
        }
        out.push_str(if json_entries.is_empty() { "]" } else { "\n]" });
        println!("{out}");
    }

    if any_error {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Everything `pfcheck` found about one command-line path.
struct Report {
    label: String,
    errors: usize,
    warnings: usize,
    /// Rendered `severity[category] at file:line:col: message` lines with
    /// indented notes.
    lines: Vec<String>,
    /// Pre-rendered JSON objects, one per diagnostic.
    json_entries: Vec<String>,
}

impl Report {
    fn render_text(&self, quiet: bool) -> String {
        let mut out = String::new();
        if !quiet {
            for line in &self.lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s)",
            self.label, self.errors, self.warnings
        );
        out
    }
}

/// Maps a rule index in the merged rule set back to the `.control` file it
/// came from (directory inputs only).
struct FileMap {
    /// `(file name, number of rules contributed)` in merge order.
    files: Vec<(String, usize)>,
}

impl FileMap {
    fn locate(&self, rule_index: usize) -> Option<&str> {
        let mut base = 0usize;
        for (name, count) in &self.files {
            if rule_index < base + count {
                return Some(name);
            }
            base += count;
        }
        None
    }
}

fn check_input(path: &Path, options: &AnalysisOptions, fields: bool) -> std::io::Result<Report> {
    let label = path.display().to_string();
    let (ruleset, map) = if path.is_dir() {
        let set = ConfigSet::load_dir(path)?;
        let mut merged = RuleSet::new();
        let mut files = Vec::new();
        for (name, contents) in set.control_files() {
            match parse_ruleset(contents) {
                Ok(parsed) => {
                    files.push((name.to_string(), parsed.rules.len()));
                    merged.merge(parsed);
                }
                Err(err) => return Ok(parse_failure(label, Some(name), &err.to_string())),
            }
        }
        (merged, Some(FileMap { files }))
    } else {
        let contents = std::fs::read_to_string(path)?;
        match parse_ruleset(&contents) {
            Ok(parsed) => (parsed, None),
            Err(err) => return Ok(parse_failure(label, None, &err.to_string())),
        }
    };

    // When a compiled view is needed (field listing, or the sharper
    // compiler-aware granularity pass), compile once and share it.
    let compiled =
        (options.granularity.is_some() || fields).then(|| CompiledPolicy::compile(&ruleset));
    let diags = match (options.granularity, compiled.as_ref()) {
        (Some(granularity), Some(compiled)) => {
            // Run the generic passes without the syntactic granularity check,
            // then substitute the field-aware one and restore sort order.
            let mut opts = options.clone();
            opts.granularity = None;
            let mut diags = analyze(&ruleset, &opts);
            diags.extend(granularity_diagnostics_with(
                &ruleset,
                granularity,
                compiled,
            ));
            diags.sort_by_key(|d| (d.span.line, d.span.col, d.category.as_str()));
            diags
        }
        _ => analyze(&ruleset, options),
    };
    let mut report = Report {
        label: label.clone(),
        errors: 0,
        warnings: 0,
        lines: Vec::new(),
        json_entries: Vec::new(),
    };
    for diag in &diags {
        match diag.severity {
            Severity::Error => report.errors += 1,
            Severity::Warning => report.warnings += 1,
        }
        let file = diag
            .rule_index
            .and_then(|i| map.as_ref().and_then(|m| m.locate(i)));
        let mut line = format!(
            "{}[{}] at {}: {}",
            diag.severity,
            diag.category,
            position(&label, file, diag.span),
            diag.message
        );
        for rel in &diag.related {
            let rel_file = rel
                .rule_index
                .and_then(|i| map.as_ref().and_then(|m| m.locate(i)));
            let _ = write!(
                line,
                "\n  note at {}: {}",
                position(&label, rel_file, rel.span),
                rel.note
            );
        }
        report.lines.push(line);
        report
            .json_entries
            .push(diag_json(&label, file, diag, map.as_ref()));
    }
    if fields {
        if let Some(compiled) = compiled.as_ref() {
            for (index, rule) in ruleset.rules.iter().enumerate() {
                let file = map.as_ref().and_then(|m| m.locate(index));
                let place = position(&label, file, Span::new(rule.line, 1));
                match compiled.fields_inspected(index) {
                    Some(set) => report
                        .lines
                        .push(format!("fields at {place}: rule #{index} inspects {set}")),
                    None => report.lines.push(format!(
                        "fields at {place}: rule #{index} eliminated before matching \
                         (dead prefix)"
                    )),
                }
            }
            for (subtree, set) in compiled.subtree_fields() {
                report
                    .lines
                    .push(format!("fields: {label}: {subtree} subtree inspects {set}"));
            }
        }
    }
    Ok(report)
}

fn parse_failure(label: String, file: Option<&str>, message: &str) -> Report {
    let mut entry = String::from("{");
    json_str(&mut entry, "input", &label);
    if let Some(file) = file {
        entry.push(',');
        json_str(&mut entry, "file", file);
    }
    entry.push(',');
    json_str(&mut entry, "severity", "error");
    entry.push(',');
    json_str(&mut entry, "category", "parse-error");
    entry.push(',');
    json_str(&mut entry, "message", message);
    entry.push('}');
    let position = match file {
        Some(f) => format!("{label}/{f}"),
        None => label.clone(),
    };
    Report {
        label,
        errors: 1,
        warnings: 0,
        lines: vec![format!("error[parse-error] at {position}: {message}")],
        json_entries: vec![entry],
    }
}

fn position(label: &str, file: Option<&str>, span: Span) -> String {
    match file {
        Some(file) => format!("{label}/{file}:{span}"),
        None => format!("{label}:{span}"),
    }
}

// --- tiny JSON encoder (keeps the workspace serde-free) --------------------

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_str(out: &mut String, key: &str, value: &str) {
    json_escape(key, out);
    out.push(':');
    json_escape(value, out);
}

fn json_num(out: &mut String, key: &str, value: usize) {
    json_escape(key, out);
    out.push(':');
    let _ = write!(out, "{value}");
}

fn related_json(rel: &Related, map: Option<&FileMap>) -> String {
    let mut out = String::from("{");
    if let Some(file) = rel.rule_index.and_then(|i| map.and_then(|m| m.locate(i))) {
        json_str(&mut out, "file", file);
        out.push(',');
    }
    json_num(&mut out, "line", rel.span.line);
    out.push(',');
    json_num(&mut out, "col", rel.span.col);
    out.push(',');
    if let Some(i) = rel.rule_index {
        json_num(&mut out, "rule", i);
        out.push(',');
    }
    json_str(&mut out, "note", &rel.note);
    out.push('}');
    out
}

fn diag_json(
    label: &str,
    file: Option<&str>,
    diag: &identxx_pf::Diagnostic,
    map: Option<&FileMap>,
) -> String {
    let mut out = String::from("{");
    json_str(&mut out, "input", label);
    out.push(',');
    if let Some(file) = file {
        json_str(&mut out, "file", file);
        out.push(',');
    }
    json_str(&mut out, "severity", diag.severity.as_str());
    out.push(',');
    json_str(&mut out, "category", diag.category.as_str());
    out.push(',');
    json_num(&mut out, "line", diag.span.line);
    out.push(',');
    json_num(&mut out, "col", diag.span.col);
    out.push(',');
    if let Some(i) = diag.rule_index {
        json_num(&mut out, "rule", i);
        out.push(',');
    }
    json_str(&mut out, "message", &diag.message);
    if !diag.related.is_empty() {
        out.push(',');
        json_escape("related", &mut out);
        out.push_str(":[");
        for (i, rel) in diag.related.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&related_json(rel, map));
        }
        out.push(']');
    }
    out.push('}');
    out
}
